"""Cost models and platform presets."""

import pytest

from repro.cluster import (
    CostModel,
    Platform,
    ZERO_OVERHEAD,
    bluegene_p,
    laptop1,
    server32,
)


class TestCostModel:
    def test_papers_measured_rates(self):
        cm = CostModel()
        assert cm.mips_base == pytest.approx(2.6e6)
        assert cm.mips_dep == pytest.approx(2.3e6)
        # The paper's ~13% dependency-tracking overhead.
        overhead = cm.exec_seconds(1000) / cm.exec_seconds(
            1000, dep_tracking=False) - 1.0
        assert overhead == pytest.approx(0.13, abs=0.01)

    def test_rollout_linear_in_rank(self):
        cm = CostModel()
        one = cm.rollout_seconds(1, 300)
        assert cm.rollout_seconds(10, 300) == pytest.approx(10 * one)

    def test_rollout_grows_with_bits(self):
        cm = CostModel()
        assert cm.rollout_seconds(1, 30_000) > cm.rollout_seconds(1, 300)

    def test_query_grows_with_cores_and_bits(self):
        cm = CostModel()
        assert cm.query_seconds(1024, 640) > cm.query_seconds(2, 640)
        assert cm.query_seconds(32, 64_000) > cm.query_seconds(32, 640)

    def test_scaled_preserves_instruction_rates(self):
        cm = CostModel().scaled(1e-4)
        assert cm.mips_dep == pytest.approx(2.3e6)
        assert cm.query_base_seconds == pytest.approx(2.0e-4 * 1e-4)
        assert cm.rollout_seconds(5, 100) == pytest.approx(
            CostModel().rollout_seconds(5, 100) * 1e-4)

    def test_zero_overhead_keeps_only_instruction_time(self):
        assert ZERO_OVERHEAD.query_seconds(4096, 1e6) == 0.0
        assert ZERO_OVERHEAD.rollout_seconds(100, 1e5) == 0.0
        assert ZERO_OVERHEAD.exec_seconds(2.3e6) == pytest.approx(1.0)


class TestPlatforms:
    def test_server32(self):
        platform = server32()
        assert platform.n_cores == 32
        assert platform.cache_capacity_bytes is None

    def test_bluegene_memory_and_reduce(self):
        platform = bluegene_p(1024)
        assert platform.cache_capacity_bytes == 1024 * 512 * 1024 * 1024
        assert platform.cost_model.reduce_hop_seconds \
            < server32().cost_model.reduce_hop_seconds

    def test_laptop_single_core(self):
        assert laptop1().n_cores == 1

    def test_with_cores(self):
        platform = bluegene_p(64).with_cores(128)
        assert platform.n_cores == 128
        assert platform.memory_bytes_per_core == 512 * 1024 * 1024

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            Platform("x", 0)
