"""Trend predictor extension: constant-second-difference sequences."""

import numpy as np

from repro.core.config import EngineConfig
from repro.core.excitation import ObservationView
from repro.core.predictors import PredictorEnsemble, TrendPredictor
from repro.core.predictors import default_ensemble
from repro.core.predictors.linreg import LinearRegressionPredictor


def view_of(value):
    words = np.array([value & 0xFFFFFFFF], dtype=np.uint32)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return ObservationView(words, bits, version=1, index=-1)


def train(predictor, values):
    views = [view_of(v) for v in values]
    for prev, nxt in zip(views, views[1:]):
        predictor.update(prev, nxt)
    return views


def predicted_word(predictor, view):
    bits, __ = predictor.predict(view)
    return int(np.packbits(bits, bitorder="little").view("<u4")[0])


def triangular(n):
    return n * (n + 1) // 2


class TestTrendPredictor:
    def test_learns_quadratic_sequence(self):
        values = [triangular(n) for n in range(12)]
        predictor = TrendPredictor()
        views = train(predictor, values)
        assert predicted_word(predictor, views[-1]) == triangular(12)

    def test_linreg_cannot_do_this(self):
        """The motivating gap: value-to-value affine maps cannot
        represent a growing increment."""
        values = [triangular(n) for n in range(12)]
        linreg = LinearRegressionPredictor()
        views = train(linreg, values)
        assert predicted_word(linreg, views[-1]) != triangular(12)

    def test_constant_stride_also_works(self):
        values = [100 + 7 * n for n in range(10)]
        predictor = TrendPredictor()
        views = train(predictor, values)
        assert predicted_word(predictor, views[-1]) == 100 + 7 * 10

    def test_chaotic_sequence_falls_back_to_persistence(self):
        values = [37, 112, 56, 28, 14, 7, 22, 11]
        predictor = TrendPredictor()
        views = train(predictor, values)
        assert predicted_word(predictor, views[-1]) == values[-1]

    def test_confidence_tracks_hits(self):
        predictor = TrendPredictor()
        views = train(predictor, [triangular(n) for n in range(12)])
        __, conf = predictor.predict(views[-1])
        assert conf[0] > 0.6

    def test_reset(self):
        predictor = TrendPredictor()
        views = train(predictor, [triangular(n) for n in range(12)])
        predictor.reset()
        assert predicted_word(predictor, views[-1]) == triangular(11)


class TestEnsembleIntegration:
    def test_off_by_default(self):
        assert len(default_ensemble(EngineConfig()).predictors) == 5

    def test_config_flag_adds_expert(self):
        config = EngineConfig(enable_trend_predictor=True)
        ensemble = default_ensemble(config)
        assert len(ensemble.predictors) == 6
        assert "trend" in ensemble.expert_names

    def test_rwma_routes_quadratic_bits_to_trend(self):
        config = EngineConfig(enable_trend_predictor=True, rwma_beta=0.3)
        ensemble = default_ensemble(config)
        correct = []
        for n in range(40):
            outcome = ensemble.observe(view_of(triangular(n)))
            if outcome.scored:
                correct.append(not (outcome.ensemble_bits
                                    != outcome.actual_bits).any())
        # Steady state: the ensemble follows the trend expert.
        assert sum(correct[-10:]) >= 8
        weights = dict(zip(ensemble.expert_names,
                           ensemble.weight_matrix().mean(axis=1)))
        assert weights["trend"] == max(weights.values())

    def test_trend_does_not_disturb_affine_sequences(self):
        config = EngineConfig(enable_trend_predictor=True)
        with_trend = default_ensemble(config)
        for n in range(30):
            with_trend.observe(view_of(1000 + 68 * n))
        bits, __ = with_trend.predict_from(view_of(1000 + 68 * 30))
        value = int(np.packbits(bits, bitorder="little").view("<u4")[0])
        assert value == 1000 + 68 * 31
