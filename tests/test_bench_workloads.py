"""Benchmark programs compute the right answers (no ASC involved)."""

import pytest

from repro.bench import build_collatz, build_ising, build_mm2


def run_program(program, limit=20_000_000):
    machine = program.make_machine()
    machine.run(max_instructions=limit)
    assert machine.halted
    return machine


class TestIsing:
    @pytest.mark.parametrize("nodes,spins", [(16, 4), (48, 6), (64, 8)])
    def test_finds_minimum_energy(self, nodes, spins):
        workload = build_ising(nodes=nodes, spins=spins)
        machine = run_program(workload.program)
        best = machine.state.read_i32(workload.program.symbol(
            "g_result_energy"))
        index = machine.state.read_i32(workload.program.symbol(
            "g_result_index"))
        assert best == workload.expected["best_energy"]
        assert index == workload.expected["best_index"]

    def test_deterministic_under_seed(self):
        a = build_ising(nodes=16, spins=4, seed=7)
        b = build_ising(nodes=16, spins=4, seed=7)
        assert a.program.code == b.program.code
        assert a.program.data == b.program.data

    def test_different_seeds_differ(self):
        a = build_ising(nodes=16, spins=4, seed=7)
        b = build_ising(nodes=16, spins=4, seed=8)
        assert a.program.data != b.program.data


class TestMM2:
    @pytest.mark.parametrize("n", [4, 8, 12])
    def test_checksum(self, n):
        workload = build_mm2(n=n)
        machine = run_program(workload.program)
        checksum = machine.state.read_i32(
            workload.program.symbol("g_checksum"))
        assert checksum == workload.expected["checksum"]

    def test_d_matrix_contents(self):
        workload = build_mm2(n=5)
        machine = run_program(workload.program)
        base = workload.program.symbol("g_D")
        n = workload.params["n"]
        expected = workload.expected["d_matrix"]
        for i in range(n):
            for j in range(n):
                assert machine.state.read_i32(base + 4 * (i * n + j)) \
                    == expected[i][j]


class TestCollatz:
    @pytest.mark.parametrize("count", [50, 300])
    def test_verified_count(self, count):
        workload = build_collatz(count=count)
        machine = run_program(workload.program)
        verified = machine.state.read_i32(
            workload.program.symbol("g_verified"))
        assert verified == count == workload.expected["verified"]

    def test_memoize_variant_same_program_logic(self):
        plain = build_collatz(count=40)
        memo = build_collatz(count=40, memoize=True)
        assert plain.program.code == memo.program.code
        assert memo.config.min_superstep_instructions \
            < plain.config.min_superstep_instructions


class TestWorkloadMetadata:
    def test_source_lines_counted(self):
        workload = build_collatz(count=10)
        # The paper reports 15 lines for Collatz; ours is the same scale.
        assert 10 <= workload.program.source_line_count <= 25

    def test_descriptions(self):
        assert "linked-list" in build_ising(16, 4).description
        assert "2mm" in build_mm2(4).description
