"""Trajectory records and oracle prediction."""

import pytest

from repro.bench import build_ising
from repro.core.oracle import OracleAllocator, TrajectoryRecord
from repro.core.recognizer import Recognizer
from repro.core.excitation import ExcitationTracker


@pytest.fixture(scope="module")
def setup():
    workload = build_ising(nodes=64, spins=6)
    config = workload.config
    recognized = Recognizer(config).find(workload.program)
    record = TrajectoryRecord(workload.program, recognized, config)
    return workload, config, recognized, record


def test_record_totals(setup):
    workload, config, recognized, record = setup
    assert record.halted
    assert record.total_instructions > 0
    assert record.n_boundaries >= 3
    assert record.mean_superstep_instructions == pytest.approx(
        recognized.superstep_instructions, rel=0.5)


def test_boundary_positions_strictly_increasing(setup):
    record = setup[3]
    positions = record.boundary_positions
    assert all(a < b for a, b in zip(positions, positions[1:]))


def test_views_lookup_by_digest(setup):
    record = setup[3]
    __, words, digest, __phase = record.views[0]
    assert record.position_of(digest) == 0
    assert record.position_of(b"nope") is None


def test_oracle_chain_matches_future(setup):
    workload, config, recognized, record = setup
    # Reconstruct the tracker state at a known boundary and ask the
    # oracle for the future: it must return the recorded projections.
    tracker = ExcitationTracker(workload.program.layout, config)
    oracle = OracleAllocator(record, max_rollout=4)

    position = 2
    __, words, digest, __phase = record.views[position]
    view = None
    # Rebuild a live view by replaying boundary states is heavy; use the
    # recorded words directly through the record's own digests instead.
    class FakeView:
        def __init__(self, digest):
            self._digest = digest

        def digest(self):
            return self._digest

    oracle.advance(FakeView(digest))
    assert len(oracle.chain) == 4
    for offset, step in enumerate(oracle.chain, start=1):
        __, expected, expected_digest, __p = record.views[position + offset]
        assert step.digest == expected_digest
        assert (step.word_values == expected).all()
    assert oracle.probabilities() == [1.0] * 4
    assert oracle.dispatch_order(100, 0.5) == [0, 1, 2, 3]
    del view, words, tracker


def test_oracle_unknown_state_gives_empty_chain(setup):
    record = setup[3]
    oracle = OracleAllocator(record, max_rollout=4)

    class FakeView:
        @staticmethod
        def digest():
            return b"unknown-digest"

    oracle.advance(FakeView())
    assert oracle.chain == []
    assert oracle.unknown_states == 1


def test_chain_truncated_at_record_end(setup):
    record = setup[3]
    oracle = OracleAllocator(record, max_rollout=1000)

    class FakeView:
        def __init__(self, digest):
            self._digest = digest

        def digest(self):
            return self._digest

    last_pos = len(record.views) - 3
    oracle.advance(FakeView(record.views[last_pos][2]))
    assert len(oracle.chain) == 2
