"""ServeClient fault-hardening: tokens, retries, reconnects, timeouts."""

import base64
import os
import socket
import threading
import time

import pytest

from repro.bench import build_collatz
from repro.core.config import EngineConfig
from repro.serve import (
    ServeClient,
    ServeClientError,
    ServeConfig,
    SpeculationDaemon,
)


def engine_overrides(config):
    defaults = EngineConfig().__dict__
    return {key: (list(value) if isinstance(value, tuple) else value)
            for key, value in config.__dict__.items()
            if defaults.get(key) != value}


def submit_options(workload):
    return {"engine": engine_overrides(workload.config),
            "inflight_wait_bias": 1e9}


@pytest.fixture(scope="module")
def collatz():
    return build_collatz(count=120)


@pytest.fixture
def daemon(tmp_path):
    config = ServeConfig(socket_path=str(tmp_path / "serve.sock"),
                         cache_dir=str(tmp_path / "cache"),
                         worker_budget=4, workers_per_job=2,
                         max_concurrent_jobs=2)
    instance = SpeculationDaemon(config).start()
    yield instance
    instance.close()


class TestTokens:
    def test_submit_generates_a_token(self, daemon, collatz):
        with ServeClient(daemon.config.socket_path, client="A") as client:
            submitted = client.submit(collatz.program,
                                      **submit_options(collatz))
            assert submitted["token"]
            assert submitted["deduped"] is False
            assert client.last_token == submitted["token"]

    def test_same_token_dedups_onto_the_original_job(self, daemon,
                                                     collatz):
        with ServeClient(daemon.config.socket_path, client="A") as client:
            first = client.submit(collatz.program, token="tok-42",
                                  **submit_options(collatz))
            again = client.submit(collatz.program, token="tok-42",
                                  **submit_options(collatz))
            assert again["job_id"] == first["job_id"]
            assert again["deduped"] is True
            client.wait(first["job_id"])

    def test_poll_and_result_by_token_alone(self, daemon, collatz):
        with ServeClient(daemon.config.socket_path, client="A") as client:
            client.submit(collatz.program, token="tok-7",
                          **submit_options(collatz))
            job = client.wait(token="tok-7")
            assert job["state"] == "done"
            assert job["token"] == "tok-7"
            result = client.result(token="tok-7")
            assert result["halted"]

    def test_unknown_token_is_not_found(self, daemon):
        with ServeClient(daemon.config.socket_path, client="A") as client:
            with pytest.raises(ServeClientError) as info:
                client.poll(token="never-submitted")
            assert info.value.code == "not-found"


class TestRetries:
    def test_fatal_codes_are_not_retried(self, daemon):
        with ServeClient(daemon.config.socket_path, client="A",
                         retries=5) as client:
            with pytest.raises(ServeClientError) as info:
                client.poll("j999")
            assert info.value.code == "not-found"
            assert client.retried_requests == 0

    def test_backoff_is_bounded_and_jittered(self, daemon):
        with ServeClient(daemon.config.socket_path, client="A",
                         backoff_base=0.1, backoff_max=1.0) as client:
            for attempt in range(12):
                nominal = min(1.0, 0.1 * (2 ** attempt))
                for __ in range(8):
                    delay = client._backoff(attempt)
                    assert nominal * 0.5 <= delay <= nominal

    def test_no_daemon_fails_fast_with_code(self, tmp_path):
        with pytest.raises(ServeClientError) as info:
            ServeClient(str(tmp_path / "nothing.sock"))
        assert info.value.code == "no-daemon"

    def test_timeout_poisons_the_connection(self, tmp_path):
        # A listener that accepts and never answers: the client must
        # time out, drop the socket (a late reply would desync the
        # stream), and surface code="timeout" once retries run out.
        path = str(tmp_path / "mute.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(4)
        accepted = []

        def accept_loop():
            try:
                while True:
                    conn, __ = listener.accept()
                    accepted.append(conn)
            except OSError:
                pass

        thread = threading.Thread(target=accept_loop, daemon=True)
        thread.start()
        try:
            client = ServeClient(path, timeout=0.2, retries=1,
                                 backoff_base=0.01)
            with pytest.raises(ServeClientError) as info:
                client.ping()
            assert info.value.code == "timeout"
            assert client._sock is None  # poisoned, not reused
            assert client.retried_requests == 1
            client.close()
        finally:
            listener.close()
            for conn in accepted:
                conn.close()
            thread.join(timeout=5)


class TestReconnect:
    def test_client_survives_a_daemon_restart(self, tmp_path, collatz):
        socket_path = str(tmp_path / "serve.sock")
        cache_dir = str(tmp_path / "cache")

        config = ServeConfig(socket_path=socket_path, cache_dir=cache_dir)
        first = SpeculationDaemon(config).start()
        client = ServeClient(socket_path, client="A", retries=8,
                             backoff_base=0.05)
        assert client.ping()["ok"]
        first.close()

        # Restart on the same path; the next request reconnects
        # transparently instead of surfacing the dead socket.
        second = SpeculationDaemon(
            ServeConfig(socket_path=socket_path,
                        cache_dir=cache_dir)).start()
        try:
            assert client.ping()["ok"]
            assert client.reconnects >= 1
            result = client.run(collatz.program, **submit_options(collatz))
            assert result["halted"]
        finally:
            client.close()
            second.close()


class TestStatusVerb:
    def test_status_reports_health(self, daemon, collatz):
        with ServeClient(daemon.config.socket_path, client="A") as client:
            client.run(collatz.program, **submit_options(collatz))
            status = client.status()
            # The job reads done to the client slightly before its
            # worker thread's finally block unwatches it.
            deadline = time.monotonic() + 10.0
            while (status["watchdog"]["watching"]
                   and time.monotonic() < deadline):
                time.sleep(0.02)
                status = client.status()
        assert status["ok"] is True
        assert status["pid"] == os.getpid()
        assert status["degraded"] is False
        assert status["jobs"]["done"] == 1
        assert status["journal"]["records_appended"] >= 3
        assert status["watchdog"]["watching"] == 0
        assert "shm_headroom_bytes" in status["selfcheck"]

    def test_ping_reports_journaled_and_degraded(self, daemon):
        with ServeClient(daemon.config.socket_path, client="A") as client:
            pong = client.ping()
        assert pong["journaled"] is True
        assert pong["degraded"] is False
