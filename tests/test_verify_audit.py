"""Verify subsystem units: replay, comparison, quarantine, config."""

import numpy as np
import pytest

from repro.core.checkpoint import restore_state, snapshot_state
from repro.core.speculation import SpeculationResult, run_speculation
from repro.core.trajectory_cache import CacheEntry, TrajectoryCache
from repro.minic import compile_source
from repro.runtime.faults import FaultPlan
from repro.verify import (
    SpliceAuditor,
    VerifyConfig,
    compare_audit,
    resolve_verify,
    run_audit,
)
from repro.verify.config import VerifyConfigError
from repro.verify.incidents import format_incident, make_incident

_LOOP = """
int sink;
int main() {
    int i;
    int x = 1;
    for (i = 0; i < 600; i++) { x = x * 3 + i; x = x ^ (x >> 2); }
    sink = x;
    return x;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(_LOOP, name="verify-loop")


@pytest.fixture(scope="module")
def segment(program):
    """(context, pre_state, genuine entry) for a real code segment."""
    machine = program.make_machine()
    machine.run(max_instructions=500)
    pre_state = bytes(machine.state.buf)
    context = program.make_context()
    rip = machine.state.eip
    spec = run_speculation(context, pre_state, rip, 3, 5000)
    assert spec.entry is not None
    return context, pre_state, spec.entry


# -- run_audit -----------------------------------------------------------------

def test_run_audit_reproduces_genuine_entry(segment):
    context, pre_state, entry = segment
    result = run_audit(context, pre_state, entry.rip, entry.length)
    assert result.fault is None
    assert result.instructions == entry.length
    assert compare_audit(entry, result, pre_state) == []


def test_run_audit_counts_instructions_not_occurrences(segment):
    context, pre_state, entry = segment
    result = run_audit(context, pre_state, entry.rip, 7, occurrences=99)
    assert result.instructions == 7
    assert result.entry.length == 7


def test_run_audit_stops_at_halt(program):
    context = program.make_context()
    machine = program.make_machine()
    machine.run(max_instructions=10_000_000)
    assert machine.halted
    halted_state = bytes(machine.state.buf)
    result = run_audit(context, halted_state, 0, 500)
    assert result.instructions == 0
    assert result.halted


# -- compare_audit mismatch kinds ----------------------------------------------

def _mutated(entry, **overrides):
    fields = dict(
        rip=entry.rip,
        start_indices=np.array(entry.start_indices),
        start_values=np.array(entry.start_values),
        end_indices=np.array(entry.end_indices),
        end_values=np.array(entry.end_values),
        length=entry.length,
    )
    fields.update(overrides)
    return CacheEntry(fields["rip"], fields["start_indices"],
                      fields["start_values"], fields["end_indices"],
                      fields["end_values"], fields["length"],
                      occurrences=entry.occurrences, halted=entry.halted)


def test_compare_clean(segment):
    context, pre_state, entry = segment
    truth = run_audit(context, pre_state, entry.rip, entry.length)
    assert compare_audit(entry, truth, pre_state) == []


def test_compare_length_mismatch(segment):
    context, pre_state, entry = segment
    truth = run_audit(context, pre_state, entry.rip, entry.length)
    bad = _mutated(entry, length=entry.length + 1)
    assert "length" in compare_audit(bad, truth, pre_state)


def test_compare_read_set_mismatch(segment):
    context, pre_state, entry = segment
    truth = run_audit(context, pre_state, entry.rip, entry.length)
    mask = np.arange(len(entry.start_indices)) != 0
    bad = _mutated(entry,
                   start_indices=np.array(entry.start_indices)[mask],
                   start_values=np.array(entry.start_values)[mask])
    assert "read-set" in compare_audit(bad, truth, pre_state)


def test_compare_read_values_mismatch(segment):
    context, pre_state, entry = segment
    truth = run_audit(context, pre_state, entry.rip, entry.length)
    values = np.array(entry.start_values)
    values[0] ^= 0xFF
    bad = _mutated(entry, start_values=values)
    assert "read-values" in compare_audit(bad, truth, pre_state)


def test_compare_end_state_mismatch(segment):
    context, pre_state, entry = segment
    truth = run_audit(context, pre_state, entry.rip, entry.length)
    values = np.array(entry.end_values)
    values[len(values) // 2] ^= 0x5A
    bad = _mutated(entry, end_values=values)
    assert "end-state" in compare_audit(bad, truth, pre_state)


def test_compare_replay_fault(segment):
    __, pre_state, entry = segment
    faulted = SpeculationResult(None, 3, False, "div by zero")
    assert compare_audit(entry, faulted, pre_state) == ["replay-fault"]


def test_taint_entry_modes_are_all_detected(segment):
    """Every shape FaultPlan.taint_entry produces must be refutable."""
    context, pre_state, entry = segment
    truth = run_audit(context, pre_state, entry.rip, entry.length)
    for seed in range(12):
        plan = FaultPlan(seed=seed, taints=1)
        tainted = plan.taint_entry(entry)
        mismatches = compare_audit(tainted, truth, pre_state)
        assert mismatches, "taint seed %d escaped the audit" % seed


# -- snapshot/restore ----------------------------------------------------------

def test_snapshot_state_roundtrip(segment):
    __, pre_state, __entry = segment
    blob = snapshot_state(pre_state, 12345)
    restored = restore_state(blob)
    assert bytes(restored.state) == pre_state
    assert restored.instruction_count == 12345


# -- quarantine ----------------------------------------------------------------

def test_quarantine_hides_group_from_lookup(segment):
    __, pre_state, entry = segment
    cache = TrajectoryCache()
    cache.insert(entry)
    hit, __ = cache.lookup_classified(entry.rip, bytearray(pre_state))
    assert hit is not None
    rip, key = cache.group_key(entry)
    cache.quarantine_group(rip, key)
    assert cache.is_quarantined(rip, key)
    miss, __ = cache.lookup_classified(entry.rip, bytearray(pre_state))
    assert miss is None


def test_quarantine_decays_after_clean_audits(segment):
    __, __pre, entry = segment
    cache = TrajectoryCache()
    rip, key = cache.group_key(entry)
    cache.quarantine_group(rip, key, readmit_after=3)
    assert cache.note_clean_audit() == 0
    assert cache.note_clean_audit() == 0
    assert cache.note_clean_audit() == 1  # third clean audit readmits
    assert not cache.is_quarantined(rip, key)
    assert cache.n_groups_readmitted == 1


def test_strict_quarantine_never_decays(segment):
    __, __pre, entry = segment
    cache = TrajectoryCache()
    rip, key = cache.group_key(entry)
    cache.quarantine_group(rip, key, readmit_after=None)
    for __i in range(50):
        assert cache.note_clean_audit() == 0
    assert cache.is_quarantined(rip, key)


def test_cache_stats_dict_keys(segment):
    cache = TrajectoryCache()
    stats = cache.stats_dict()
    for key in ("n_entries", "n_inserted", "n_evicted", "n_quarantined",
                "n_groups_quarantined", "n_groups_readmitted",
                "quarantined_groups", "total_bytes"):
        assert key in stats


# -- VerifyConfig --------------------------------------------------------------

def test_config_parse_values():
    assert VerifyConfig.parse("0.25").rate == 0.25
    assert VerifyConfig.parse("1").rate == 1.0
    assert VerifyConfig.parse("off") is None
    assert VerifyConfig.parse("0") is None
    strict = VerifyConfig.parse("strict")
    assert strict.strict and strict.rate == 1.0
    assert strict.readmit_after is None
    with pytest.raises(VerifyConfigError):
        VerifyConfig.parse("bogus")


def test_config_strict_forces_full_rate():
    config = VerifyConfig(rate=0.1, strict=True)
    assert config.rate == 1.0
    assert config.readmit_after is None


def test_config_rate_bounds():
    with pytest.raises(VerifyConfigError):
        VerifyConfig(rate=1.5)


def test_config_from_env():
    assert VerifyConfig.from_env({}) is None
    assert VerifyConfig.from_env({"REPRO_VERIFY": "0.5"}).rate == 0.5
    assert VerifyConfig.from_env({"REPRO_VERIFY": "strict"}).strict


def test_resolve_verify():
    assert resolve_verify("0.5").rate == 0.5
    disabled = VerifyConfig(rate=0.0)
    assert resolve_verify(disabled) is None
    enabled = VerifyConfig(rate=1.0)
    assert resolve_verify(enabled) is enabled


def test_sampling_rate_roughly_honored():
    config = VerifyConfig(rate=0.3, seed=7)
    picks = sum(config.should_sample() for __ in range(2000))
    assert 400 < picks < 800


# -- SpliceAuditor sync path ---------------------------------------------------

class _Stats:
    def __init__(self):
        self.hits = 1
        self.misses = 0
        self.misses_nomatch = 0
        self.supersteps = 4
        self.instructions_executed = 0
        self.instructions_fast_forwarded = 0


def test_auditor_sync_clean(segment):
    context, pre_state, entry = segment
    cache = TrajectoryCache()
    auditor = SpliceAuditor(VerifyConfig(rate=1.0), cache, context=context)
    buf = bytearray(pre_state)
    entry.apply(buf)
    stats = _Stats()
    stats.instructions_fast_forwarded = entry.length
    assert auditor.verify_splice(entry, buf, pre_state, stats) is False
    assert auditor.sampled == 1 and auditor.clean == 1
    assert auditor.report()["incidents"] == []


def test_auditor_sync_divergence_rolls_back(segment):
    context, pre_state, entry = segment
    plan = FaultPlan(seed=3, taints=1)
    tainted = plan.taint_entry(entry)
    cache = TrajectoryCache()
    auditor = SpliceAuditor(VerifyConfig(rate=1.0), cache, context=context)
    buf = bytearray(pre_state)
    tainted.apply(buf)
    stats = _Stats()
    stats.instructions_fast_forwarded = tainted.length
    assert auditor.verify_splice(tainted, buf, pre_state, stats) is True
    # Rolled back: the splice is undone and accounted as a miss.
    assert bytes(buf) == pre_state
    assert stats.hits == 0 and stats.misses == 1
    assert stats.instructions_fast_forwarded == 0
    assert auditor.divergent == 1 and auditor.rollbacks == 1
    rip, key = cache.group_key(tainted)
    assert cache.is_quarantined(rip, key)
    report = auditor.report()
    assert len(report["incidents"]) == 1
    incident = report["incidents"][0]
    assert incident["action"] == "rollback"
    assert incident["mismatches"]
    assert "refuted" in format_incident(incident)


def test_incident_shape(segment):
    __, __pre, entry = segment
    incident = make_incident(entry, ["end-state"], 9, "async", "rollback")
    for key in ("superstep", "rip", "dep_bytes", "write_bytes", "length",
                "occurrences", "mismatches", "mode", "action"):
        assert key in incident
    assert incident["superstep"] == 9
    assert incident["mismatches"] == ["end-state"]
