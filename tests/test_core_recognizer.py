"""Recognizer: IP selection on programs with known structure."""

import pytest

from repro.asm import assemble
from repro.core.config import EngineConfig
from repro.core.recognizer import Recognizer
from repro.errors import EngineError
from repro.minic import compile_source


def make_config(**kwargs):
    defaults = dict(recognizer_window=20_000,
                    min_superstep_instructions=50,
                    recognizer_validate_states=16)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


@pytest.fixture(scope="module")
def outer_inner_program():
    """Outer loop of 200 iterations, inner busywork of ~20 instructions."""
    return compile_source("""
        int acc;
        int main() {
            int i; int j;
            for (i = 0; i < 200; i++) {
                for (j = 0; j < 8; j++) {
                    acc += i ^ j;
                }
            }
            return acc;
        }
    """, name="outer_inner")


def test_finds_a_loop_ip(outer_inner_program):
    recognized = Recognizer(make_config()).find(outer_inner_program)
    # The recognized superstep must meet the minimum spacing and recur.
    assert recognized.superstep_instructions >= 50
    assert recognized.mean_gap > 0
    assert recognized.training_states


def test_stride_groups_frequent_ips():
    """A single tight loop forces the recognizer to stride occurrences —
    the paper's Collatz adaptation."""
    program = assemble("""
        .entry start
        start:
            mov eax, 0
        top:
            inc eax
            add ebx, eax
            xor ebx, eax
            cmp eax, 3000
            jl top
            hlt
    """, name="tight")
    recognized = Recognizer(make_config(
        min_superstep_instructions=100)).find(program)
    assert recognized.stride > 1
    assert recognized.stride * recognized.mean_gap >= 100


def test_too_short_program_raises():
    program = assemble(".entry start\nstart:\n nop\n hlt\n")
    config = make_config(recognizer_window=100,
                         recognizer_max_window_doublings=1)
    with pytest.raises(EngineError):
        Recognizer(config).find(program)


def test_adaptive_window_growth():
    """A long setup phase starves the steady loop in the initial window;
    the recognizer must widen and still find the steady loop."""
    program = compile_source("""
        int data[64];
        int out;
        int main() {
            int i; int k;
            for (i = 0; i < 64; i++) {      // setup: dies early
                data[i] = i * 3;
            }
            for (k = 0; k < 300; k++) {     // steady state
                int j;
                int e = 0;
                for (j = 0; j < 16; j++) e += data[j % 16] * k;
                out += e;
            }
            return out;
        }
    """, name="setup_then_loop")
    config = make_config(recognizer_window=2_000,
                         recognizer_max_window_doublings=4)
    recognized = Recognizer(config).find(program)
    # The chosen IP must belong to the live steady phase, not the
    # finished setup loop.
    chosen = [c for c in recognized.candidates if c.ip == recognized.ip]
    assert chosen and chosen[0].alive


def test_candidate_reports_populated(outer_inner_program):
    recognized = Recognizer(make_config()).find(outer_inner_program)
    assert recognized.candidates
    validated = [c for c in recognized.candidates if c.validated]
    assert validated
    for c in validated:
        assert 0.0 <= c.accuracy <= 1.0


def test_speculation_budget_covers_heavy_tail():
    recognized = Recognizer(make_config()).find(
        compile_source("""
            int out;
            int main() {
                int n;
                for (n = 1; n < 300; n++) {
                    int x = n;
                    while (x != 1) {
                        if (x % 2 == 0) x = x / 2; else x = 3 * x + 1;
                    }
                    out++;
                }
                return out;
            }
        """, name="mini_collatz"))
    budget = recognized.speculation_budget(4.0)
    assert budget >= recognized.max_gap * recognized.stride


def test_memoization_variant_prefers_recurring_states():
    """For Collatz-like code the memo recognizer must pick an inner-loop
    IP (whose x values recur across outer iterations), not the outer
    counter (which never repeats)."""
    program = compile_source("""
        int out;
        int main() {
            int n;
            for (n = 1; n < 400; n++) {
                int x = n;
                while (x != 1) {
                    if (x % 2 == 0) x = x / 2; else x = 3 * x + 1;
                }
                out++;
            }
            return out;
        }
    """, name="memo_collatz")
    config = make_config(min_superstep_instructions=40,
                         recognizer_validate_states=96)
    recognized = Recognizer(config).find_for_memoization(program)
    # Inner-loop supersteps are much shorter than an outer iteration.
    assert recognized.superstep_instructions < 400
