"""Exhaustive opcode coverage: every opcode executes and is assemblable.

A table-driven sweep proving no opcode is dead weight: each one has an
assembler spelling, decodes back to itself, and executes under the
transition function with a verifiable effect.
"""

import pytest

from repro.asm import assemble
from repro.isa import MNEMONIC_TO_OP, Op
from repro.isa.registers import Reg
from repro.machine import Machine

# For each opcode: an assembly snippet exercising it and a check
# (register, expected unsigned value) evaluated after running to halt.
_CASES = {
    Op.NOP: ("nop\n mov eax, 1", (Reg.EAX, 1)),
    Op.HLT: ("mov eax, 2", (Reg.EAX, 2)),
    Op.MOV_RR: ("mov ebx, 7\n mov eax, ebx", (Reg.EAX, 7)),
    Op.MOV_RI: ("mov eax, 9", (Reg.EAX, 9)),
    Op.LOAD: ("load eax, [w]", (Reg.EAX, 1234)),
    Op.STORE: ("mov ecx, 55\n store [w], ecx\n load eax, [w]",
               (Reg.EAX, 55)),
    Op.LOAD8U: ("load8u eax, [b]", (Reg.EAX, 0xFE)),
    Op.LOAD8S: ("load8s eax, [b]", (Reg.EAX, 0xFFFFFFFE)),
    Op.STORE8: ("mov ecx, 0x1FF\n store8 [b], ecx\n load8u eax, [b]",
                (Reg.EAX, 0xFF)),
    Op.LEA: ("mov ebx, 64\n mov esi, 4\n lea eax, [ebx+esi*2+1]",
             (Reg.EAX, 73)),
    Op.PUSH_R: ("mov ecx, 3\n push ecx\n pop eax", (Reg.EAX, 3)),
    Op.PUSH_I: ("push 11\n pop eax", (Reg.EAX, 11)),
    Op.POP_R: ("push 12\n pop eax", (Reg.EAX, 12)),
    Op.XCHG: ("mov eax, 1\n mov ebx, 2\n xchg eax, ebx", (Reg.EAX, 2)),
    Op.ADD_RR: ("mov eax, 1\n mov ebx, 2\n add eax, ebx", (Reg.EAX, 3)),
    Op.ADD_RI: ("mov eax, 1\n add eax, 5", (Reg.EAX, 6)),
    Op.SUB_RR: ("mov eax, 9\n mov ebx, 2\n sub eax, ebx", (Reg.EAX, 7)),
    Op.SUB_RI: ("mov eax, 9\n sub eax, 4", (Reg.EAX, 5)),
    Op.ADC_RR: ("mov eax, -1\n add eax, 2\n mov eax, 0\n mov ebx, 0\n"
                " adc eax, ebx", (Reg.EAX, 1)),
    Op.SBB_RR: ("mov eax, 0\n sub eax, 1\n mov eax, 5\n mov ebx, 1\n"
                " sbb eax, ebx", (Reg.EAX, 3)),
    Op.IMUL_RR: ("mov eax, 6\n mov ebx, 7\n imul eax, ebx",
                 (Reg.EAX, 42)),
    Op.IMUL_RI: ("mov eax, -4\n imul eax, 3", (Reg.EAX, (-12) & 0xFFFFFFFF)),
    Op.IDIV_R: ("mov eax, 17\n mov ecx, 5\n idiv ecx", (Reg.EAX, 3)),
    Op.UDIV_R: ("mov eax, 17\n mov ecx, 5\n udiv ecx", (Reg.EDX, 2)),
    Op.INC_R: ("mov eax, 4\n inc eax", (Reg.EAX, 5)),
    Op.DEC_R: ("mov eax, 4\n dec eax", (Reg.EAX, 3)),
    Op.NEG_R: ("mov eax, 4\n neg eax", (Reg.EAX, (-4) & 0xFFFFFFFF)),
    Op.NOT_R: ("mov eax, 0\n not eax", (Reg.EAX, 0xFFFFFFFF)),
    Op.AND_RR: ("mov eax, 0xC\n mov ebx, 0xA\n and eax, ebx",
                (Reg.EAX, 8)),
    Op.AND_RI: ("mov eax, 0xC\n and eax, 0xA", (Reg.EAX, 8)),
    Op.OR_RR: ("mov eax, 0xC\n mov ebx, 0xA\n or eax, ebx",
               (Reg.EAX, 0xE)),
    Op.OR_RI: ("mov eax, 0xC\n or eax, 0xA", (Reg.EAX, 0xE)),
    Op.XOR_RR: ("mov eax, 0xC\n mov ebx, 0xA\n xor eax, ebx",
                (Reg.EAX, 6)),
    Op.XOR_RI: ("mov eax, 0xC\n xor eax, 0xA", (Reg.EAX, 6)),
    Op.SHL_RI: ("mov eax, 1\n shl eax, 3", (Reg.EAX, 8)),
    Op.SHL_RR: ("mov eax, 1\n mov ecx, 3\n shl eax, ecx", (Reg.EAX, 8)),
    Op.SHR_RI: ("mov eax, 8\n shr eax, 3", (Reg.EAX, 1)),
    Op.SHR_RR: ("mov eax, 8\n mov ecx, 3\n shr eax, ecx", (Reg.EAX, 1)),
    Op.SAR_RI: ("mov eax, -8\n sar eax, 1", (Reg.EAX, (-4) & 0xFFFFFFFF)),
    Op.SAR_RR: ("mov eax, -8\n mov ecx, 1\n sar eax, ecx",
                (Reg.EAX, (-4) & 0xFFFFFFFF)),
    Op.CMP_RR: ("mov eax, 1\n mov ebx, 1\n cmp eax, ebx\n setz eax",
                (Reg.EAX, 1)),
    Op.CMP_RI: ("mov eax, 1\n cmp eax, 2\n setl eax", (Reg.EAX, 1)),
    Op.TEST_RR: ("mov eax, 3\n mov ebx, 4\n test eax, ebx\n setz eax",
                 (Reg.EAX, 1)),
    Op.TEST_RI: ("mov eax, 3\n test eax, 1\n setnz eax", (Reg.EAX, 1)),
    Op.JMP: ("mov eax, 1\n jmp over\n mov eax, 2\nover:", (Reg.EAX, 1)),
    Op.JMP_R: ("mov eax, 1\n mov ebx, over\n jmpr ebx\n mov eax, 2\n"
               "over:", (Reg.EAX, 1)),
    Op.CALL: ("call f\n jmp over\nf:\n mov eax, 5\n ret\nover:",
              (Reg.EAX, 5)),
    Op.CALL_R: ("mov ebx, f\n callr ebx\n jmp over\nf:\n mov eax, 5\n"
                " ret\nover:", (Reg.EAX, 5)),
    Op.RET: ("call f\n jmp over\nf:\n mov eax, 6\n ret\nover:",
             (Reg.EAX, 6)),
}

# Conditional jumps and setcc: (mnemonic, a, b, taken).
_CONDITIONALS = {
    Op.JZ: (1, 1, True), Op.JNZ: (1, 2, True),
    Op.JL: (-1, 0, True), Op.JLE: (0, 0, True),
    Op.JG: (1, 0, True), Op.JGE: (0, 0, True),
    Op.JB: (1, 2, True), Op.JBE: (2, 2, True),
    Op.JA: (3, 2, True), Op.JAE: (2, 2, True),
    Op.JS: (-1, 0, True), Op.JNS: (1, 0, True),
    Op.JO: (0x7FFFFFFF, -1, True),  # MAX - (-1) overflows signed: OF set
    Op.JNO: (1, 0, True),
}

_SETCC = {
    Op.SETZ: (1, 1, 1), Op.SETNZ: (1, 2, 1),
    Op.SETL: (-1, 0, 1), Op.SETLE: (0, 0, 1),
    Op.SETG: (1, 0, 1), Op.SETGE: (0, 0, 1),
    Op.SETB: (1, 2, 1), Op.SETA: (3, 2, 1),
}


def run_snippet(body, data=""):
    source = ".entry start\nstart:\n%s\n hlt\n" % body
    if data:
        source += ".data\n%s\n" % data
    program = assemble(source)
    machine = program.make_machine()
    machine.run(max_instructions=10_000)
    assert machine.halted
    return machine


@pytest.mark.parametrize("op", sorted(_CASES), ids=lambda op: op.name)
def test_opcode_executes(op):
    body, (reg, expected) = _CASES[op]
    data = "w: .word 1234\nb: .byte 0xFE" \
        if op in (Op.LOAD, Op.STORE, Op.LOAD8U, Op.LOAD8S, Op.STORE8) \
        else ""
    machine = run_snippet(body, data=data)
    assert machine.state.get_reg(reg) == expected, op.name


@pytest.mark.parametrize("op", sorted(_CONDITIONALS), ids=lambda o: o.name)
def test_conditional_jump_executes(op):
    mnemonic = op.name.lower()
    a, b, taken = _CONDITIONALS[op]
    machine = run_snippet(
        "mov eax, %d\n mov ebx, %d\n cmp eax, ebx\n %s yes\n"
        " mov ecx, 0\n jmp done\nyes:\n mov ecx, 1\ndone:"
        % (a, b, mnemonic))
    assert machine.state.get_reg(Reg.ECX) == (1 if taken else 0), op.name


@pytest.mark.parametrize("op", sorted(_SETCC), ids=lambda o: o.name)
def test_setcc_executes(op):
    mnemonic = op.name.lower()
    a, b, expected = _SETCC[op]
    machine = run_snippet(
        "mov eax, %d\n mov ebx, %d\n cmp eax, ebx\n %s edx"
        % (a, b, mnemonic))
    assert machine.state.get_reg(Reg.EDX) == expected, op.name


def test_every_opcode_is_covered():
    covered = set(_CASES) | set(_CONDITIONALS) | set(_SETCC)
    assert covered == set(Op), sorted(
        op.name for op in set(Op) - covered)


def test_every_mnemonic_resolves():
    for mnemonic, ops in MNEMONIC_TO_OP.items():
        assert ops, mnemonic
