"""Multi-phase recognition: programs whose hot loop changes mid-run."""

import pytest

from repro.bench import build_mm2
from repro.cluster import CostModel, server32
from repro.core.engine import ParallelEngine
from repro.core.oracle import TrajectoryRecord
from repro.core.recognizer import Recognizer
from repro.minic import compile_source


@pytest.fixture(scope="module")
def two_phase_setup():
    """A program with two distinct, sequential hot loops."""
    program = compile_source("""
        int arr_a[150];
        int arr_b[150];
        int main() {
            int i;
            for (i = 0; i < 150; i++) {      // phase A
                int j; int acc = 0;
                for (j = 0; j < 12; j++) acc += j * (j + 1);
                arr_a[i] = acc + i;
            }
            for (i = 0; i < 150; i++) {      // phase B: different loop
                int k; int acc = 1;
                for (k = 0; k < 12; k++) acc ^= acc << (k & 3);
                arr_b[i] = acc + i * 5;
            }
            return arr_a[10] + arr_b[10];
        }
    """, name="two_phase")
    config = None
    from repro.core.config import EngineConfig
    config = EngineConfig(recognizer_window=25_000,
                          min_superstep_instructions=80,
                          converge_supersteps_charge=2.0)
    recognized = Recognizer(config).find(program)
    record = TrajectoryRecord(program, recognized, config)
    return program, config, recognized, record


def test_record_discovers_second_phase(two_phase_setup):
    __, __, __, record = two_phase_setup
    assert len(record.phases) >= 2
    assert record.phases[0].ip != record.phases[1].ip


def test_views_tagged_by_phase(two_phase_setup):
    record = two_phase_setup[3]
    phases = {v[3] for v in record.views}
    assert len(phases) >= 2
    # Phase indices appear in order.
    sequence = [v[3] for v in record.views]
    assert sequence == sorted(sequence)


def test_engine_follows_phase_plan(two_phase_setup):
    program, config, recognized, record = two_phase_setup
    factor = recognized.superstep_instructions / 2.3e6 / 5.217
    engine = ParallelEngine(program, server32(16, CostModel().scaled(factor)),
                            config=config, recognized=recognized,
                            record=record)
    result = engine.run()
    assert result.stats.phase_transitions >= 1
    # Both phases contributed fast-forwards: more hits than one phase
    # alone could provide.
    assert result.stats.hits > 150 / recognized.stride * 0.6
    assert (result.stats.instructions_executed
            + result.stats.instructions_fast_forwarded) \
        == result.total_instructions


def test_oracle_respects_phase_boundaries(two_phase_setup):
    program, config, recognized, record = two_phase_setup
    factor = recognized.superstep_instructions / 2.3e6 / 5.217
    engine = ParallelEngine(program, server32(16, CostModel().scaled(factor)),
                            config=config, recognized=recognized,
                            record=record, oracle=True)
    result = engine.run()
    assert result.stats.hits > 0
    assert (result.stats.instructions_executed
            + result.stats.instructions_fast_forwarded) \
        == result.total_instructions


def test_mm2_phase_coverage():
    """2mm must end up with superstep coverage of BOTH loop nests —
    either via the shared dot-product RIP (small sizes, where the search
    window sees both nests) or via a two-phase plan (larger sizes)."""
    workload = build_mm2(n=12)
    config = workload.config.replace(converge_supersteps_charge=2.0)
    recognized = Recognizer(config).find(workload.program)
    record = TrajectoryRecord(workload.program, recognized, config)
    # Boundaries must tile well beyond one nest's share of the run.
    assert record.n_boundaries * record.mean_superstep_instructions \
        > 0.7 * record.total_instructions
