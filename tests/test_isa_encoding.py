"""Encoding/decoding of SVM32 instructions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa import (
    AddrMode,
    INSTRUCTION_SIZE,
    Instruction,
    MemOperand,
    Op,
    OperandShape,
    OPCODE_INFO,
    decode,
    encode,
)


def test_instruction_size_is_eight_bytes():
    assert INSTRUCTION_SIZE == 8
    assert len(encode(Op.NOP)) == 8


def test_simple_roundtrip():
    raw = encode(Op.ADD_RI, ra=3, imm=-42)
    op, mode, ra, rb, imm = decode(raw)
    assert op == Op.ADD_RI
    assert ra == 3
    assert imm == -42


def test_unsigned_immediate_roundtrips_as_signed():
    raw = encode(Op.MOV_RI, ra=0, imm=0xFFFFFFFF)
    __, __, __, __, imm = decode(raw)
    assert imm == -1


def test_immediate_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Op.MOV_RI, imm=1 << 32)
    with pytest.raises(EncodingError):
        encode(Op.MOV_RI, imm=-(1 << 31) - 1)


def test_unknown_opcode_byte_rejected():
    raw = bytes([0xEE]) + bytes(7)
    with pytest.raises(EncodingError):
        decode(raw)


def test_truncated_instruction_rejected():
    with pytest.raises(EncodingError):
        decode(b"\x00\x00\x00")


@given(
    op=st.sampled_from(sorted(Op)),
    mode=st.integers(0, 4),
    ra=st.integers(0, 7),
    rb=st.integers(0, 255),
    imm=st.integers(-(1 << 31), (1 << 31) - 1),
)
def test_roundtrip_property(op, mode, ra, rb, imm):
    raw = encode(op, mode=mode, ra=ra, rb=rb, imm=imm)
    assert len(raw) == INSTRUCTION_SIZE
    assert decode(raw) == (op, mode, ra, rb, imm)


@given(
    op=st.sampled_from(sorted(Op)),
    mode=st.integers(0, 4),
    ra=st.integers(0, 7),
    rb=st.integers(0, 255),
    imm=st.integers(-(1 << 31), (1 << 31) - 1),
)
def test_instruction_object_roundtrip(op, mode, ra, rb, imm):
    instr = Instruction(op, mode=mode, ra=ra, rb=rb, imm=imm)
    assert Instruction.decode(instr.encode()) == instr


def test_every_opcode_has_metadata():
    for op in Op:
        info = OPCODE_INFO[op]
        assert info.mnemonic
        assert isinstance(info.shape, OperandShape)


def test_opcode_count_in_papers_ballpark():
    # The paper's simulator implements 79 opcodes; SVM32 implements a
    # comparable set.
    assert 60 <= len(Op) <= 90


class TestMemOperand:
    def test_mode_selection(self):
        assert MemOperand(disp=4).mode() == AddrMode.ABS
        assert MemOperand(base=1).mode() == AddrMode.BASE
        assert MemOperand(base=1, index=2).mode() == AddrMode.BASE_INDEX
        assert MemOperand(base=1, index=2, scale=2).mode() \
            == AddrMode.BASE_INDEX2
        assert MemOperand(base=1, index=2, scale=4).mode() \
            == AddrMode.BASE_INDEX4

    def test_bad_scale_rejected(self):
        with pytest.raises(EncodingError):
            MemOperand(base=1, index=2, scale=3)

    def test_index_without_base_rejected(self):
        with pytest.raises(EncodingError):
            MemOperand(index=2)

    @given(base=st.integers(0, 7), index=st.integers(0, 7),
           scale=st.sampled_from([1, 2, 4]),
           disp=st.integers(-(1 << 20), (1 << 20)))
    def test_field_roundtrip(self, base, index, scale, disp):
        mem = MemOperand(base=base, index=index, scale=scale, disp=disp)
        instr = Instruction.with_mem(Op.LOAD, 0, mem)
        assert Instruction.decode(instr.encode()).mem == mem

    def test_str_rendering(self):
        mem = MemOperand(base=3, index=6, scale=4, disp=8)
        assert str(mem) == "[ebx+esi*4+8]"
        assert str(MemOperand(disp=16)) == "[16]"
        assert str(MemOperand(base=5, disp=-4)) == "[ebp-4]"
