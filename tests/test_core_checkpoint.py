"""Durable checkpoint/restore: format, atomicity, and the resume
property — a killed-and-resumed run is byte-identical to an
uninterrupted one."""

import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import build_collatz, build_ising
from repro.core import checkpoint as ck
from repro.core.trajectory_cache import TrajectoryCache
from repro.errors import EngineError
from repro.runtime import RealParallelEngine, RuntimeConfig

DETERMINISTIC = RuntimeConfig(n_workers=2, inflight_wait_bias=1e9)


def sequential_state(program, limit=50_000_000):
    machine = program.make_machine()
    machine.run(max_instructions=limit)
    assert machine.halted
    return bytes(machine.state.buf)


class TestEncoding:
    @settings(max_examples=50, deadline=None)
    @given(state=st.binary(min_size=0, max_size=2048),
           instructions=st.integers(min_value=0, max_value=2**62),
           program=st.none() | st.text(max_size=40))
    def test_round_trip(self, state, instructions, program):
        blob = ck.encode_checkpoint(state, instructions,
                                    meta={"program": program})
        loaded = ck.decode_checkpoint(blob)
        assert loaded.state == state
        assert loaded.instruction_count == instructions
        assert loaded.program_name == program
        assert loaded.cache_blob is None
        assert loaded.load_cache() is None

    def test_round_trip_with_cache(self):
        from test_core_cache_io import make_entry
        cache = TrajectoryCache()
        for seed in range(5):
            cache.insert(make_entry(seed=seed, length=10 + seed))
        blob = ck.encode_checkpoint(b"\x01" * 64, 123, cache=cache)
        loaded = ck.decode_checkpoint(blob)
        restored = loaded.load_cache()
        assert len(restored) == 5
        assert {e.length for e in restored.entries()} \
            == {e.length for e in cache.entries()}

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_bit_flip_rejected(self, data):
        blob = bytearray(ck.encode_checkpoint(b"\xaa" * 256, 42,
                                              meta={"program": "p"}))
        pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        blob[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
        with pytest.raises(EngineError):
            ck.decode_checkpoint(bytes(blob))

    def test_truncation_rejected(self):
        blob = ck.encode_checkpoint(b"\xbb" * 128, 7)
        for cut in range(len(blob)):
            with pytest.raises(EngineError):
                ck.decode_checkpoint(blob[:cut])

    def test_trailing_bytes_rejected(self):
        blob = ck.encode_checkpoint(b"\xcc" * 16, 1)
        with pytest.raises(EngineError):
            ck.decode_checkpoint(blob + b"\x00")


class TestFiles:
    def test_write_read(self, tmp_path):
        path = tmp_path / "ckpt-00000001.ascp"
        ck.write_checkpoint(path, b"\x01\x02", 99, meta={"program": "x"})
        loaded = ck.read_checkpoint(path)
        assert loaded.state == b"\x01\x02"
        assert loaded.instruction_count == 99
        assert not os.path.exists(str(path) + ".tmp")

    def test_crash_mid_write_previous_survives(self, tmp_path):
        """A torn write leaves only a .tmp file; readers never see it
        and the previous checkpoint stays the latest valid one."""
        good = tmp_path / "ckpt-00000001.ascp"
        ck.write_checkpoint(good, b"GOOD", 10)
        # Simulate a crash mid-write of the next checkpoint.
        (tmp_path / "ckpt-00000002.ascp.tmp").write_bytes(b"torn garbage")
        assert ck.checkpoint_paths(tmp_path) == [str(good)]
        loaded = ck.load_latest(tmp_path)
        assert loaded.state == b"GOOD"

    def test_load_latest_walks_past_corrupt(self, tmp_path):
        ck.write_checkpoint(tmp_path / "ckpt-00000001.ascp", b"OLD", 1)
        ck.write_checkpoint(tmp_path / "ckpt-00000002.ascp", b"NEW", 2)
        # The newest got bit-rotted on disk.
        path = tmp_path / "ckpt-00000002.ascp"
        rotted = bytearray(path.read_bytes())
        rotted[-1] ^= 0xFF
        path.write_bytes(bytes(rotted))
        loaded = ck.load_latest(tmp_path)
        assert loaded.state == b"OLD"

    def test_load_latest_empty_or_missing_dir(self, tmp_path):
        assert ck.load_latest(tmp_path) is None
        assert ck.load_latest(tmp_path / "nope") is None
        assert ck.latest_checkpoint(tmp_path) is None

    def test_non_checkpoint_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "ckpt-abc.ascp").write_text("bad seq")
        ck.write_checkpoint(tmp_path / "ckpt-00000003.ascp", b"S", 3)
        assert len(ck.checkpoint_paths(tmp_path)) == 1


class TestCheckpointer:
    def test_cadence(self, tmp_path):
        cp = ck.Checkpointer(tmp_path, every_instructions=100)
        assert not cp.due(99)
        assert cp.maybe_save(99, b"s") is None
        assert cp.maybe_save(100, b"s") is not None
        assert cp.saves == 1
        # Cadence is relative to the last save.
        assert not cp.due(150)
        assert cp.due(200)

    def test_note_resumed_anchors_cadence(self, tmp_path):
        cp = ck.Checkpointer(tmp_path, every_instructions=100)
        cp.note_resumed(500)
        assert not cp.due(550)
        assert cp.due(600)

    def test_prune_keeps_newest(self, tmp_path):
        cp = ck.Checkpointer(tmp_path, every_instructions=1, keep=2)
        for i in range(1, 6):
            cp.save(i, b"s%d" % i)
        paths = ck.checkpoint_paths(tmp_path)
        assert len(paths) == 2
        assert ck.load_latest(tmp_path).instruction_count == 5

    def test_sequence_continues_across_instances(self, tmp_path):
        first = ck.Checkpointer(tmp_path, every_instructions=1)
        first.save(1, b"a")
        second = ck.Checkpointer(tmp_path, every_instructions=1)
        second.save(2, b"b")
        names = [os.path.basename(p)
                 for p in ck.checkpoint_paths(tmp_path)]
        assert names == ["ckpt-00000001.ascp", "ckpt-00000002.ascp"]

    def test_bad_cadence_rejected(self, tmp_path):
        with pytest.raises(EngineError):
            ck.Checkpointer(tmp_path, every_instructions=0)


@pytest.fixture(scope="module", params=["collatz", "ising"])
def workload(request):
    if request.param == "collatz":
        return build_collatz(count=300)
    return build_ising(nodes=48, spins=6)


class TestResumeDifferential:
    def test_killed_at_checkpoint_and_resumed_matches_uninterrupted(
            self, workload, tmp_path):
        """The acceptance property: run with checkpointing, pretend the
        process died, resume from the newest snapshot — the final state
        is byte-identical to the uninterrupted sequential run."""
        expected = sequential_state(workload.program)
        cp = ck.Checkpointer(tmp_path, every_instructions=20_000,
                             program=workload.program.name)
        first = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, checkpointer=cp).run()
        assert first.halted
        assert first.final_state == expected
        assert first.runtime.checkpoints_written >= 1

        snapshot = ck.load_latest(tmp_path)
        assert snapshot is not None
        assert snapshot.program_name == workload.program.name
        assert 0 < snapshot.instruction_count < first.total_instructions

        engine = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, resume_from=snapshot)
        resumed = engine.run()
        assert resumed.halted
        assert resumed.final_state == expected
        assert engine.resumed_instructions == snapshot.instruction_count
        assert resumed.runtime.checkpoints_restored == 1
        # The resumed run only replayed the tail.
        assert resumed.total_instructions < first.total_instructions

    def test_resume_restores_cache_entries(self, tmp_path):
        workload = build_collatz(count=300)
        expected = sequential_state(workload.program)
        cp = ck.Checkpointer(tmp_path, every_instructions=20_000,
                             keep=None, program=workload.program.name)
        first = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, checkpointer=cp).run()
        assert first.runtime.entries_shipped > 0
        # Resume from the *earliest* checkpoint: where the newest one
        # lands depends on load (it can fall within one superstep of
        # the end, leaving no tail to serve hits from), but the first
        # always lands one cadence in, leaving most of the run ahead.
        paths = ck.checkpoint_paths(tmp_path)
        assert paths
        snapshot = ck.read_checkpoint(paths[0])
        restored = snapshot.load_cache()
        assert restored is not None and len(restored) > 0
        resumed = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, resume_from=snapshot).run()
        assert resumed.final_state == expected
        # Restored entries serve hits without re-earning them.
        assert resumed.stats.hits > 0

    def test_wrong_program_rejected(self, tmp_path):
        collatz = build_collatz(count=300)
        ising = build_ising(nodes=48, spins=6)
        cp = ck.Checkpointer(tmp_path, every_instructions=20_000)
        RealParallelEngine(collatz.program, config=collatz.config,
                           runtime_config=DETERMINISTIC,
                           checkpointer=cp).run()
        snapshot = ck.load_latest(tmp_path)
        with pytest.raises(EngineError, match="state"):
            RealParallelEngine(ising.program, config=ising.config,
                               runtime_config=DETERMINISTIC,
                               resume_from=snapshot).run()


class TestSigkillResumeCLI:
    def test_sigkilled_run_resumes_to_identical_state(self, tmp_path):
        """End to end through the CLI: SIGKILL a real-backend run
        mid-flight, then ``repro run --resume`` must finish with the
        exact state an uninterrupted run produces."""
        workload = build_collatz(count=600)
        image = tmp_path / "collatz.json"
        workload.program.save(str(image))
        ckdir = tmp_path / "ck"
        env = dict(os.environ, PYTHONPATH="src",
                   REPRO_FAST_PATH="0")  # slow tier: killable mid-run
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", str(image),
             "--backend", "real", "--workers", "2",
             "--checkpoint-dir", str(ckdir), "--checkpoint-every", "5000"],
            cwd="/root/repo", env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if ck.checkpoint_paths(ckdir) and child.poll() is None:
                    break
                if child.poll() is not None:
                    break
                time.sleep(0.1)
            assert ck.checkpoint_paths(ckdir), \
                "no checkpoint appeared before the child exited"
            if child.poll() is None:
                os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        resumed_state = tmp_path / "resumed.bin"
        done = subprocess.run(
            [sys.executable, "-m", "repro", "run", str(image),
             "--backend", "real", "--workers", "2",
             "--checkpoint-dir", str(ckdir), "--resume",
             "--state-out", str(resumed_state)],
            cwd="/root/repo", env=dict(os.environ, PYTHONPATH="src"),
            capture_output=True, text=True, timeout=300)
        assert done.returncode == 0, done.stderr
        assert resumed_state.read_bytes() == sequential_state(
            workload.program)
