"""Dependency tracking through real instruction sequences."""

from repro.asm import assemble
from repro.machine import DEP_READ, DEP_WAR, DEP_WRITTEN, DepVector
from repro.machine.layout import EFLAGS_OFF, EIP_OFF, MEM_OFF


def run_with_deps(body, data=""):
    source = ".entry start\nstart:\n%s\n    hlt\n" % body
    if data:
        source += ".data\n%s\n" % data
    program = assemble(source, name="deps")
    machine = program.make_machine()
    dep = DepVector(program.layout.size)
    machine.run(max_instructions=100_000, dep=dep)
    assert machine.halted
    return program, machine, dep


def test_eip_is_always_war():
    __, __, dep = run_with_deps("nop")
    assert all(dep.buf[EIP_OFF + i] == DEP_WAR for i in range(4))


def test_pure_write_is_not_a_dependency():
    program, __, dep = run_with_deps("mov eax, 1\n store [slot], eax",
                                     data="slot: .word 0")
    slot = MEM_OFF + program.symbol("slot")
    assert dep.buf[slot] == DEP_WRITTEN
    # EAX was written (mov) before being read (store): not a dependency.
    assert 0 not in dep.read_indices()


def test_read_before_write_is_dependency():
    program, __, dep = run_with_deps(
        "load eax, [slot]\n inc eax\n store [slot], eax",
        data="slot: .word 5")
    slot = MEM_OFF + program.symbol("slot")
    assert dep.buf[slot] == DEP_WAR
    assert slot in dep.read_indices()
    assert slot in dep.written_indices()


def test_untouched_memory_stays_null():
    program, __, dep = run_with_deps("mov eax, 1",
                                     data="a: .word 1\nb: .word 2")
    a = MEM_OFF + program.symbol("a")
    assert dep.buf[a] == 0


def test_code_reads_untracked_by_default():
    program, __, dep = run_with_deps("mov eax, 1")
    code_start = MEM_OFF + program.code_base
    assert dep.buf[code_start] == 0


def test_code_reads_tracked_in_faithful_mode():
    source = ".entry start\nstart:\n mov eax, 1\n hlt\n"
    program = assemble(source)
    machine = program.make_machine(track_code_reads=True)
    dep = DepVector(program.layout.size)
    machine.run(max_instructions=10, dep=dep)
    code_start = MEM_OFF + program.code_base
    assert dep.buf[code_start] == DEP_READ


def test_flags_tracked():
    __, __, dep = run_with_deps("mov eax, 1\n cmp eax, 1\n jz over\nover:")
    # cmp writes flags, jz reads them: written-after-... written first.
    assert dep.buf[EFLAGS_OFF] == DEP_WRITTEN


def test_flag_read_first_is_dependency():
    # jz reads flags before anything writes them.
    __, __, dep = run_with_deps("jz over\nover:")
    assert dep.buf[EFLAGS_OFF] == DEP_READ


def test_stack_bytes_tracked():
    program, machine, dep = run_with_deps("mov eax, 7\n push eax\n pop ebx")
    top = MEM_OFF + program.layout.mem_size - 4
    assert dep.buf[top] == DEP_WRITTEN  # pushed before read
