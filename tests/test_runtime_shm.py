"""Shared-memory transport: rings, epoch protocol, hygiene, parity.

Three layers of guarantees:

* :class:`~repro.runtime.shm.ShmRing` unit behavior — push/read/release
  discipline, wrap-around, backpressure, desync detection;
* the shm transport end to end through a real :class:`WorkerPool` —
  results identical to the pipe transport, delta accounting, stale
  (epoch-mismatch) recovery, oversized-blob crash semantics;
* hygiene — no ``/dev/shm`` segment survives pool shutdown, worker
  SIGKILL + respawn, or (via the registry the atexit sweep walks) an
  unclean engine exit.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.asm import assemble
from repro.runtime import shm, wire
from repro.runtime.config import RuntimeConfig
from repro.runtime.pool import (
    TASK_CRASHED,
    TASK_OK,
    TASK_STALE,
    WorkerPool,
)

pytestmark = pytest.mark.skipif(not shm.shm_available(),
                                reason="no multiprocessing.shared_memory")


@pytest.fixture(scope="module")
def loop_program():
    return assemble("""
        .entry start
        start:
            mov eax, 0
        top:
            load ecx, [counter]
            add ecx, 3
            store [counter], ecx
            inc eax
            cmp eax, 50
            jl top
            hlt
        .data
        counter: .word 0
    """, name="shm-loop")


def boundary_state(program):
    machine = program.make_machine()
    top = program.symbol("top")
    machine.run(max_instructions=100_000, break_ips=frozenset((top,)))
    return top, bytes(machine.state.buf)


def poll_until(pool, n, budget_seconds=20.0):
    outcomes = []
    deadline = time.monotonic() + budget_seconds
    while len(outcomes) < n and time.monotonic() < deadline:
        outcomes.extend(pool.poll(timeout=0.2))
    return outcomes


# -- ring unit tests ---------------------------------------------------------

class TestShmRing:
    def test_push_read_release_round_trip(self):
        ring = shm.create_ring(256)
        try:
            seq = ring.try_push(b"hello")
            assert seq == 0
            peer = shm.attach_ring(ring.name)
            try:
                assert peer.read(seq, 5) == b"hello"
                peer.release(seq + 5)
                assert peer.used_bytes() == 0
            finally:
                peer.close()
        finally:
            ring.unlink()

    def test_wrap_around(self):
        ring = shm.create_ring(64)
        try:
            for i in range(10):  # 10 * 24 bytes through a 64-byte ring
                blob = bytes([i]) * 24
                seq = ring.try_push(blob)
                assert seq is not None
                assert ring.read(seq, 24) == blob
                ring.release(seq + 24)
        finally:
            ring.unlink()

    def test_full_ring_backpressure_then_recovers(self):
        ring = shm.create_ring(64)
        try:
            seq = ring.try_push(b"\xaa" * 40)
            assert seq is not None
            assert ring.try_push(b"\xbb" * 40) is None  # only 24 free
            ring.release(seq + 40)
            assert ring.try_push(b"\xbb" * 40) is not None
        finally:
            ring.unlink()

    def test_blob_larger_than_ring_never_fits(self):
        ring = shm.create_ring(64)
        try:
            assert ring.try_push(b"\x00" * 65) is None
            assert ring.try_push(b"") is None
        finally:
            ring.unlink()

    def test_cumulative_release_reclaims_skipped_blob(self):
        """A dropped control frame strands its blob; releasing through a
        later blob reclaims the skipped region too."""
        ring = shm.create_ring(64)
        try:
            ring.try_push(b"\x01" * 30)  # never read (dropped frame)
            seq_b = ring.try_push(b"\x02" * 30)
            assert ring.free_bytes() == 4
            assert ring.read(seq_b, 30) == b"\x02" * 30
            ring.release(seq_b + 30)
            assert ring.free_bytes() == 64
        finally:
            ring.unlink()

    def test_read_beyond_head_is_desync(self):
        ring = shm.create_ring(64)
        try:
            with pytest.raises(shm.ShmError, match="desync"):
                ring.read(0, 8)
            ring.try_push(b"\x00" * 8)
            with pytest.raises(shm.ShmError):
                ring.read(0, 16)
            with pytest.raises(shm.ShmError, match="capacity"):
                ring.read(0, 65)
        finally:
            ring.unlink()

    def test_attach_validates_header(self):
        ring = shm.create_ring(64)
        try:
            ring.shm.buf[:4] = b"JUNK"
            with pytest.raises(shm.ShmError, match="not a runtime ring"):
                shm.attach_ring(ring.name)
        finally:
            ring.shm.buf[:4] = shm.RING_MAGIC
            ring.unlink()

    def test_attach_missing_segment(self):
        with pytest.raises(shm.ShmError, match="cannot attach"):
            shm.attach_ring("psm_repro_definitely_missing")

    def test_registry_tracks_created_segments(self):
        """The atexit sweep walks exactly the segments created and not
        yet unlinked — create/unlink must keep it balanced."""
        before = set(shm.live_segment_names())
        ring = shm.create_ring(64)
        assert ring.name in set(shm.live_segment_names()) - before
        ring.unlink()
        assert ring.name not in shm.live_segment_names()


# -- transport end-to-end ----------------------------------------------------

class TestShmTransport:
    def test_shm_and_pipe_results_identical(self, loop_program):
        rip, start = boundary_state(loop_program)
        results = {}
        for transport in ("pipe", "shm"):
            config = RuntimeConfig(n_workers=1, transport=transport)
            with WorkerPool(loop_program, config) as pool:
                assert pool.submit(rip, 1, 10_000, start) is not None
                outcomes = poll_until(pool, 1)
            assert len(outcomes) == 1
            assert outcomes[0].status == TASK_OK
            entry = outcomes[0].entry
            results[transport] = (
                outcomes[0].instructions, entry.length,
                list(entry.start_indices), list(entry.start_values),
                list(entry.end_indices), list(entry.end_values))
        assert results["shm"] == results["pipe"]

    def test_delta_shipping_and_accounting(self, loop_program):
        """Back-to-back tasks on one worker: first ships a full
        snapshot, subsequent states go as sparse deltas; physical pipe
        bytes stay far below the logical payload."""
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=1, queue_depth=8, transport="shm")
        with WorkerPool(loop_program, config) as pool:
            states = [start]
            machine = loop_program.make_machine()
            machine.state.buf[:] = start
            for __ in range(5):
                machine.run(max_instructions=100_000,
                            break_ips=frozenset((rip,)))
                states.append(bytes(machine.state.buf))
            for i, state in enumerate(states[:6]):
                assert pool.submit(rip, 1, 10_000, state, meta=i) is not None
            outcomes = poll_until(pool, 6)
            stats = pool.stats
        assert len(outcomes) == 6
        assert all(o.status == TASK_OK for o in outcomes)
        assert stats.states_full == 1
        assert stats.states_delta == 5
        assert stats.state_bytes_shipped < stats.state_bytes_raw
        assert stats.shm_bytes_written > 0
        assert stats.shm_bytes_read > 0
        # Control frames only on the pipes: physical << logical.
        assert stats.bytes_sent * 4 < stats.logical_bytes_sent
        assert stats.bytes_received * 2 < stats.logical_bytes_received

    def test_epoch_mismatch_reports_stale_and_recovers(self, loop_program):
        """Force the engine's epoch bookkeeping out of sync: the worker
        must answer stale (never guess), and the next dispatch must
        ship a full snapshot that succeeds."""
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=1, queue_depth=4, transport="shm")
        with WorkerPool(loop_program, config) as pool:
            assert pool.submit(rip, 1, 10_000, start, meta="warm") is not None
            assert poll_until(pool, 1)[0].status == TASK_OK
            worker = pool._workers[0]
            worker.epoch += 7  # desync: pretend sends the worker never saw
            mutated = bytearray(start)
            mutated[0] ^= 1
            assert pool.submit(rip, 1, 10_000, bytes(mutated),
                               meta="stale") is not None
            outcome = poll_until(pool, 1)[0]
            assert outcome.status == TASK_STALE
            assert outcome.task.meta == "stale"
            assert pool.stats.stale_results == 1
            # The pool cleared its base: the retry ships full and runs.
            assert worker.base_state is None
            assert pool.submit(rip, 1, 10_000, start,
                               meta="retry") is not None
            retry = poll_until(pool, 1)[0]
            assert retry.status == TASK_OK
            assert pool.stats.states_full >= 2

    def test_oversized_shm_blob_is_a_worker_crash(self, loop_program):
        """The control frame fits the 64-byte cap but names a blob far
        beyond it — the worker must refuse to materialize it and die,
        exactly like an oversized pipe frame."""
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=1, max_frame_bytes=64,
                               task_timeout_seconds=None, transport="shm")
        with WorkerPool(loop_program, config) as pool:
            task = pool.submit(rip, 1, 10_000, start, meta="big")
            assert task is not None  # control frame itself fits
            outcomes = poll_until(pool, 1)
            assert len(outcomes) == 1
            assert outcomes[0].status == TASK_CRASHED
            assert pool.stats.tasks_crashed == 1

    def test_ring_too_small_falls_back_to_inline(self, loop_program):
        """A blob that can never fit the ring travels inline on the
        pipe; the task still completes."""
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=1, shm_ring_bytes=64,
                               transport="shm")
        with WorkerPool(loop_program, config) as pool:
            assert pool.submit(rip, 1, 10_000, start) is not None
            outcomes = poll_until(pool, 1)
        assert len(outcomes) == 1
        assert outcomes[0].status == TASK_OK
        assert pool.stats.shm_bytes_written == 0  # everything went inline


# -- hygiene -----------------------------------------------------------------

def _psm_segments():
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: fall back to the registry
        return set(shm.live_segment_names())


class TestShmHygiene:
    def test_no_leaked_segments_after_sigkilled_run(self, loop_program):
        """SIGKILL a worker mid-task (its rings are unlinked on respawn)
        and then shut the pool down: no psm_* segment may survive."""
        before = _psm_segments()
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=2, transport="shm",
                               task_timeout_seconds=None)
        with WorkerPool(loop_program, config) as pool:
            pool.submit(rip, 1, 10_000, start)
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while pool.stats.workers_respawned == 0 \
                    and time.monotonic() < deadline:
                pool.poll(timeout=0.05)
            assert pool.stats.workers_respawned == 1
            # Live pool: exactly the current workers' rings exist.
            assert pool.submit(rip, 1, 10_000, start) is not None
            poll_until(pool, 1)
        assert _psm_segments() - before == set()
        assert shm.live_segment_names() == []

    def test_quarantined_slot_releases_its_rings(self, loop_program):
        before = _psm_segments()
        config = RuntimeConfig(n_workers=1, respawn_limit=0,
                               transport="shm")
        with WorkerPool(loop_program, config) as pool:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while pool.active_workers and time.monotonic() < deadline:
                pool.poll(timeout=0.05)
            assert pool.active_workers == 0
            # The dead slot's rings are gone even before shutdown.
            assert len(_psm_segments() - before) == 0
        assert _psm_segments() - before == set()

    def test_sigkilled_engine_rings_reaped_by_workers(self, tmp_path):
        """SIGKILL the *engine* process mid-run: its atexit sweep never
        fires, so the orphaned workers must notice the re-parenting,
        force-unlink their own rings, and exit — no psm_* leak."""
        source = tmp_path / "spin.c"
        source.write_text(
            "int total;\n"
            "int main() {\n"
            "    int i;\n"
            "    for (i = 1; i <= 2000000000; i++) total += i;\n"
            "    return total;\n"
            "}\n")
        before = _psm_segments()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", str(source),
             "--backend", "real", "--workers", "2", "--transport", "shm"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        def children():
            try:
                path = "/proc/%d/task/%d/children" % (proc.pid, proc.pid)
                with open(path) as fh:
                    return fh.read().split()
            except OSError:
                return []

        try:
            # Wait for the rings AND for both worker processes to be
            # alive (children: resource tracker + 2 workers) — killing
            # in the window between create_ring and Process.start
            # would strand segments no process can ever reap.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and (
                    len(_psm_segments() - before) < 4 or len(children()) < 3):
                time.sleep(0.05)
            assert len(_psm_segments() - before) == 4  # 2 workers x 2 rings
            assert len(children()) >= 3
            proc.kill()
            proc.wait(timeout=10)
            # Workers poll for re-parenting every second; give them a
            # generous window to reap on a loaded box.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and _psm_segments() - before:
                time.sleep(0.1)
            assert _psm_segments() - before == set()
        finally:
            proc.kill()
            proc.wait(timeout=10)

    def test_atexit_sweep_reaps_unclosed_segments(self):
        """Simulate an unclean exit: segments never unlinked by a pool
        are reaped by the registered atexit sweep."""
        ring = shm.create_ring(64)
        name = ring.name
        assert name in shm.live_segment_names()
        shm._cleanup_created_segments()
        assert shm.live_segment_names() == []
        with pytest.raises(shm.ShmError):
            shm.attach_ring(name)  # really gone from the kernel
