"""Prediction statistics: the Table 2 computations."""

import numpy as np
import pytest

from repro.core.predictors.ensemble import ObserveOutcome
from repro.core.stats import PredictionStats, RunStats


def outcome(actual, ensemble, equal, experts):
    actual = np.array(actual, dtype=np.uint8)
    return ObserveOutcome(
        True,
        [np.array(e, dtype=np.uint8) != actual for e in experts],
        np.array(ensemble, dtype=np.uint8),
        np.array(equal, dtype=np.uint8),
        actual)


def test_unscored_outcomes_ignored():
    stats = PredictionStats(["a", "b"])
    stats.record(ObserveOutcome(False, None, None, None,
                                np.zeros(4, dtype=np.uint8)))
    assert stats.total_predictions() == 0
    assert stats.actual_error_rate() == 0.0


def test_actual_and_equal_rates():
    stats = PredictionStats(["a", "b"])
    # Observation 1: ensemble right, equal-weight wrong.
    stats.record(outcome([1, 0], ensemble=[1, 0], equal=[0, 0],
                         experts=[[1, 0], [0, 0]]))
    # Observation 2: both wrong.
    stats.record(outcome([1, 1], ensemble=[1, 0], equal=[0, 0],
                         experts=[[1, 1], [0, 0]]))
    assert stats.actual_error_rate() == pytest.approx(0.5)
    assert stats.equal_weight_error_rate() == pytest.approx(1.0)
    assert stats.total_predictions() == 2
    assert stats.incorrect_predictions() == 1


def test_hindsight_picks_best_expert_per_bit():
    stats = PredictionStats(["bit0_expert", "bit1_expert"])
    # Expert 0 always right on bit 0, wrong on bit 1; expert 1 inverse.
    for actual in ([1, 0], [0, 1], [1, 1], [0, 0]):
        experts = [[actual[0], 1 - actual[1]],
                   [1 - actual[0], actual[1]]]
        stats.record(outcome(actual, ensemble=experts[0],
                             equal=experts[0], experts=experts))
    # Hindsight: expert0 for bit0, expert1 for bit1 -> zero error.
    assert stats.hindsight_error_rate() == 0.0
    assert stats.actual_error_rate() == 1.0  # ensemble followed expert 0


def test_relevant_bits_mask():
    stats = PredictionStats(["only"])
    # Wrong only on bit 1, which is irrelevant.
    stats.record(outcome([1, 0], ensemble=[1, 1], equal=[1, 1],
                         experts=[[1, 1]]))
    assert stats.actual_error_rate() == 1.0
    assert stats.actual_error_rate(relevant_bits={0}) == 0.0
    assert stats.incorrect_predictions(relevant_bits={0}) == 0


def test_growing_bit_count_padded():
    stats = PredictionStats(["a"])
    stats.record(outcome([1], ensemble=[0], equal=[0], experts=[[0]]))
    stats.record(outcome([1, 1], ensemble=[1, 1], equal=[1, 1],
                         experts=[[1, 1]]))
    assert stats.total_predictions() == 2
    assert stats.actual_error_rate() == pytest.approx(0.5)
    totals = stats.per_expert_bit_error_totals()
    assert totals.shape == (1, 2)
    assert totals[0, 0] == 1


def test_run_stats_rates():
    stats = RunStats()
    stats.hits = 3
    stats.misses = 1
    assert stats.hit_rate == pytest.approx(0.75)
    assert stats.miss_rate == pytest.approx(0.25)
    stats.queries = 2
    stats.query_bits_total = 600
    assert stats.mean_query_bits == 300
    as_dict = stats.as_dict()
    assert as_dict["hits"] == 3
    assert as_dict["hit_rate"] == pytest.approx(0.75)


def test_run_stats_empty_division():
    stats = RunStats()
    assert stats.hit_rate == 0.0
    assert stats.mean_query_bits == 0.0
