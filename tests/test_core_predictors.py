"""Individual predictors: each learns the pattern it is built for."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.excitation import ObservationView
from repro.core.predictors import (
    LinearRegressionPredictor,
    LogisticPredictor,
    MeanPredictor,
    WeathermanPredictor,
)


def make_views(word_sequences):
    """Build ObservationViews directly from per-step word-value tuples."""
    views = []
    for idx, step in enumerate(word_sequences):
        words = np.array([v & 0xFFFFFFFF for v in step], dtype=np.uint32)
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        views.append(ObservationView(words, bits, version=1, index=idx))
    return views, None


def train(predictor, views):
    for prev, nxt in zip(views, views[1:]):
        predictor.update(prev, nxt)


def predicted_words(predictor, view):
    bits, conf = predictor.predict(view)
    return np.packbits(bits, bitorder="little").view("<u4").tolist(), conf


class TestMean:
    def test_learns_majority(self):
        views, __ = make_views([(1,), (1,), (1,), (0,), (1,)])
        predictor = MeanPredictor()
        train(predictor, views)
        words, conf = predicted_words(predictor, views[-1])
        assert words == [1]

    def test_confidence_grows_with_agreement(self):
        views, __ = make_views([(1,)] * 10)
        predictor = MeanPredictor()
        train(predictor, views)
        __, conf = predictor.predict(views[-1])
        # Bit 0 is always 1: high confidence.
        assert conf[0] > 0.85


class TestWeatherman:
    def test_predicts_current(self):
        views, __ = make_views([(5,), (9,)])
        predictor = WeathermanPredictor()
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [9]


class TestLinearRegression:
    def test_learns_increment(self):
        views, __ = make_views([(i,) for i in range(10)])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [10]

    def test_learns_stride(self):
        views, __ = make_views([(1000 + 68 * i,) for i in range(8)])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [1000 + 68 * 8]

    def test_learns_affine_map(self):
        # x' = 3x + 7 (e.g. an LCG-like update).
        seq = [11]
        for __ in range(9):
            seq.append(3 * seq[-1] + 7)
        views, __ = make_views([(v,) for v in seq])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [(3 * seq[-1] + 7) & 0xFFFFFFFF]

    def test_robust_to_wraparound_outlier(self):
        # A mod-8 loop counter: mostly +1 with a wrap discontinuity.
        seq = [i % 8 for i in range(20)]
        views, __ = make_views([(v,) for v in seq])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        # From a mid-range value the consensus affine (+1) must win
        # despite the wrap outliers that poison a least-squares fit.
        assert views[-2].word_values[0] == 18 % 8
        words, __ = predicted_words(predictor, views[-2])
        assert words == [18 % 8 + 1]

    def test_constant_word(self):
        views, __ = make_views([(42,)] * 8)
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [42]

    def test_wraps_mod_2_32(self):
        start = 0xFFFFFFFE
        views, __ = make_views([((start + i) & 0xFFFFFFFF,)
                                for i in range(8)])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [(start + 8) & 0xFFFFFFFF]

    @settings(max_examples=25, deadline=None)
    @given(slope=st.integers(-5, 5), intercept=st.integers(-100, 100),
           start=st.integers(0, 1000))
    def test_exact_affine_property(self, slope, intercept, start):
        seq = [start]
        for __ in range(8):
            seq.append((slope * seq[-1] + intercept) & 0xFFFFFFFF)
        views, __ = make_views([(v,) for v in seq])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [(slope * seq[-1] + intercept) & 0xFFFFFFFF]

    def test_multiple_independent_words(self):
        views, __ = make_views([(i, 1000 - 2 * i, 5) for i in range(10)])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [10, 1000 - 20, 5]


class TestLogistic:
    def test_learns_constant_bits(self):
        views, __ = make_views([(0xF0,)] * 12)
        predictor = LogisticPredictor(learning_rate=0.5)
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [0xF0]

    def test_learns_alternating_bit(self):
        # Bit 0 alternates; logistic learns next = !current from the
        # word's own bits.
        views, __ = make_views([(i % 2,) for i in range(24)])
        predictor = LogisticPredictor(learning_rate=0.5)
        train(predictor, views)
        words, __ = predicted_words(predictor, views[-1])
        assert words == [(len(views)) % 2]

    def test_instance_name_includes_rate(self):
        assert "0.5" in LogisticPredictor(0.5).instance_name


class TestInterface:
    def test_paper_per_bit_adapters(self):
        views, __ = make_views([(i,) for i in range(8)])
        predictor = LinearRegressionPredictor()
        for prev, nxt in zip(views, views[1:]):
            predictor.update_bit(prev, nxt, j=0)
        assert predictor.predict_bit(views[-1], j=0) == (8 & 1)

    def test_reset_discards_model(self):
        views, __ = make_views([(i,) for i in range(8)])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        predictor.reset()
        words, __ = predicted_words(predictor, views[-1])
        assert words == [7]  # back to persistence fallback

    @pytest.mark.parametrize("cls", [MeanPredictor, WeathermanPredictor,
                                     LinearRegressionPredictor])
    def test_confidence_in_range(self, cls):
        views, __ = make_views([(i,) for i in range(8)])
        predictor = cls()
        train(predictor, views)
        __, conf = predictor.predict(views[-1])
        assert ((conf >= 0.5) & (conf <= 1.0)).all()

    def test_capacity_growth_preserves_predictions(self):
        views, __ = make_views([(i,) for i in range(8)])
        predictor = LinearRegressionPredictor()
        train(predictor, views)
        predictor.ensure_capacity(64)  # grow to 2 words
        bits, conf = predictor.predict(views[-1])
        assert len(bits) == 32  # prediction sized to the view
