"""Watchdog state machine and the degraded-mode self-check probes.

Everything here drives :meth:`Watchdog.step` with an explicit clock —
no sleeps — against fake jobs and pools, so the full escalation ladder
(condemn → kill workers → abandon pool) is covered in milliseconds.
"""

import threading

from repro.serve.watchdog import (
    STAGE_ABANDONED,
    STAGE_CANCELLING,
    STAGE_KILLING,
    STAGE_WATCHING,
    SelfCheck,
    Watchdog,
)


class FakeJob:
    def __init__(self, job_id="j1"):
        self.job_id = job_id
        self.cancel_event = threading.Event()


class FakePool:
    def __init__(self):
        self.kills = 0
        self.shutdowns = 0

    def kill_workers(self):
        self.kills += 1
        return 2

    def shutdown(self):
        self.shutdowns += 1


class FakeLease:
    def __init__(self, pool):
        self.pool = pool


class TestDeadline:
    def test_healthy_job_never_condemned(self):
        dog = Watchdog(deadline_seconds=10.0, no_progress_seconds=5.0)
        job = FakeJob()
        dog.watch(job, None, now=0.0)
        for now in (1.0, 4.0, 8.0):
            dog.heartbeat("j1", now=now)
            assert dog.step(now=now) == []
        assert not job.cancel_event.is_set()

    def test_deadline_condemns_and_cancels(self):
        dog = Watchdog(deadline_seconds=10.0, no_progress_seconds=None)
        job = FakeJob()
        dog.watch(job, None, now=0.0)
        assert dog.step(now=9.0) == []
        incidents = dog.step(now=10.5)
        assert len(incidents) == 1
        assert incidents[0]["kind"] == "deadline"
        assert incidents[0]["job_id"] == "j1"
        assert incidents[0]["deadline_seconds"] == 10.0
        assert job.cancel_event.is_set()
        assert dog.timeout_reason("j1") == "deadline"
        assert dog.deadline_timeouts == 1

    def test_per_job_deadline_overrides_default(self):
        dog = Watchdog(deadline_seconds=100.0, no_progress_seconds=None)
        job = FakeJob()
        dog.watch(job, None, deadline_seconds=2.0, now=0.0)
        assert dog.step(now=2.5)[0]["kind"] == "deadline"


class TestNoProgress:
    def test_stall_condemns(self):
        dog = Watchdog(no_progress_seconds=5.0)
        job = FakeJob()
        dog.watch(job, None, now=0.0)
        dog.heartbeat("j1", now=3.0)
        assert dog.step(now=7.0) == []  # last beat only 4s ago
        incidents = dog.step(now=8.5)
        assert incidents[0]["kind"] == "no-progress"
        assert incidents[0]["heartbeats"] == 1
        assert dog.progress_timeouts == 1

    def test_heartbeats_keep_it_alive_indefinitely(self):
        dog = Watchdog(no_progress_seconds=5.0)
        dog.watch(FakeJob(), None, now=0.0)
        for now in range(1, 50, 4):
            dog.heartbeat("j1", now=float(now))
            assert dog.step(now=float(now)) == []

    def test_unwatch_stops_supervision(self):
        dog = Watchdog(no_progress_seconds=5.0)
        dog.watch(FakeJob(), None, now=0.0)
        dog.unwatch("j1")
        assert dog.step(now=100.0) == []
        assert dog.timeout_reason("j1") is None


class TestEscalation:
    def make_condemned(self):
        pool = FakePool()
        dog = Watchdog(deadline_seconds=1.0, no_progress_seconds=None,
                       kill_grace_seconds=5.0)
        job = FakeJob()
        dog.watch(job, FakeLease(pool), now=0.0)
        assert dog.step(now=2.0)[0]["kind"] == "deadline"
        return dog, job, pool

    def watch_stage(self, dog):
        return dog._watches["j1"].stage

    def test_ladder_walks_cancel_kill_abandon(self):
        dog, job, pool = self.make_condemned()
        assert self.watch_stage(dog) == STAGE_CANCELLING

        # Within the grace window nothing escalates.
        assert dog.step(now=6.0) == []
        assert pool.kills == 0

        incidents = dog.step(now=8.0)  # grace expired: kill workers
        assert incidents[0]["kind"] == "worker-kill"
        assert incidents[0]["workers_killed"] == 2
        assert pool.kills == 1
        assert self.watch_stage(dog) == STAGE_KILLING
        assert dog.worker_kills == 2

        assert dog.step(now=9.0) == []  # second grace window
        incidents = dog.step(now=14.0)  # expired: abandon the pool
        assert incidents[0]["kind"] == "pool-abandon"
        assert pool.shutdowns == 1
        assert self.watch_stage(dog) == STAGE_ABANDONED
        assert dog.pool_abandons == 1

        # Terminal: stepping forever more raises nothing new.
        assert dog.step(now=1000.0) == []

    def test_job_ending_during_grace_stops_the_ladder(self):
        dog, job, pool = self.make_condemned()
        dog.unwatch("j1")  # the cancel landed; job thread cleaned up
        assert dog.step(now=1000.0) == []
        assert pool.kills == 0

    def test_leaseless_job_still_walks_stages(self):
        # Degraded-mode jobs have no pool lease; escalation must not
        # crash on them.
        dog = Watchdog(deadline_seconds=1.0, no_progress_seconds=None,
                       kill_grace_seconds=1.0)
        dog.watch(FakeJob(), None, now=0.0)
        assert dog.step(now=2.0)[0]["kind"] == "deadline"
        assert dog.step(now=4.0)[0]["kind"] == "worker-kill"
        assert dog.step(now=6.0)[0]["kind"] == "pool-abandon"

    def test_incident_history_is_bounded(self):
        dog = Watchdog(deadline_seconds=1.0, no_progress_seconds=None,
                       kill_grace_seconds=0.1)
        for i in range(100):
            dog.watch(FakeJob("j%d" % i), None, now=0.0)
            dog.step(now=2.0 + i)
            dog.unwatch("j%d" % i)
        assert len(dog.incidents) <= 64

    def test_stats_dict_shape(self):
        dog, job, pool = self.make_condemned()
        stats = dog.stats_dict()
        assert stats["watching"] == 1
        assert stats["deadline_timeouts"] == 1
        assert stats["incidents"][-1]["kind"] == "deadline"


class TestSelfCheck:
    def test_healthy_by_default(self):
        check = SelfCheck(headroom_probe=lambda: 10 * 2 ** 30)
        assert check.verdict() == (True, None)

    def test_low_headroom_degrades(self):
        check = SelfCheck(min_shm_headroom_bytes=64 * 2 ** 20,
                          headroom_probe=lambda: 1024)
        healthy, reason = check.verdict()
        assert not healthy
        assert "headroom" in reason

    def test_no_shm_filesystem_is_not_degraded(self):
        check = SelfCheck(headroom_probe=lambda: None)
        assert check.verdict()[0]

    def test_flush_failure_degrades_until_a_flush_succeeds(self):
        check = SelfCheck(headroom_probe=lambda: 10 * 2 ** 30)
        check.note_flush_failure(OSError("disk full"))
        healthy, reason = check.verdict()
        assert not healthy
        assert "disk full" in reason
        check.note_flush_ok()
        assert check.verdict()[0]
        assert check.flush_failures == 1

    def test_stats_dict_shape(self):
        check = SelfCheck(headroom_probe=lambda: 123)
        check.verdict()
        stats = check.stats_dict()
        assert stats["checks_run"] == 1
        assert stats["shm_headroom_bytes"] == 123
