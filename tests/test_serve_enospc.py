"""Disk exhaustion across the durability tier, end to end.

The degradation ladder under test (DESIGN.md §15): an ``ENOSPC`` on a
cache-shard or journal write is a *pressure event*, not an error —
atomic writes leave no torn files or ``.tmp`` litter, the store prunes
oldest-first and retries, and if the disk is still full it suspends
write-through (answers stay correct, durability degrades) until the
first successful write lifts the suspension. The daemon retries
suspended durability on its self-check cadence, so recovery needs only
freed space — never a lucky client. All of it is driven here through
the same deterministic ``inject_enospc`` seams ``repro chaos
--disk-fulls`` uses.
"""

import base64
import os
import time

import numpy as np
import pytest

from repro.bench import build_collatz
from repro.core.cache_store import SHARD_SUFFIX, SharedCacheStore
from repro.core.config import EngineConfig
from repro.core.trajectory_cache import CacheEntry
from repro.runtime import resources
from repro.serve import (
    JobJournal,
    SelfCheck,
    ServeClient,
    ServeClientError,
    ServeConfig,
    SpeculationDaemon,
)
from repro.serve import watchdog as serve_watchdog

NS_A = "a1" * 16
NS_B = "b2" * 16


def make_entry(rip=0x40, seed=0, length=100):
    rng = np.random.default_rng(seed)
    indices = np.sort(rng.choice(64, size=4, replace=False)).astype(np.int64)
    return CacheEntry(rip, indices,
                      rng.integers(0, 256, size=4, dtype=np.uint8),
                      indices.copy(),
                      rng.integers(0, 256, size=4, dtype=np.uint8),
                      length)


def no_tmp_litter(directory):
    leftovers = []
    for root, __, names in os.walk(directory):
        leftovers.extend(os.path.join(root, name) for name in names
                         if name.endswith(".tmp"))
    return leftovers


class TestCacheStoreEnospc:
    def test_suspends_when_nothing_can_be_pruned(self, tmp_path):
        store = SharedCacheStore(directory=str(tmp_path))
        store.merge(NS_A, [make_entry(seed=1)])
        store.inject_enospc(1)
        written = store.flush()
        assert written == 0
        assert store.write_through_suspended
        assert store.enospc_events == 1
        # The dirty namespace stays dirty — nothing was lost, only
        # not-yet-durable.
        assert NS_A in store.dirty_namespaces()
        assert no_tmp_litter(str(tmp_path)) == []

    def test_first_successful_write_lifts_suspension(self, tmp_path):
        store = SharedCacheStore(directory=str(tmp_path))
        store.merge(NS_A, [make_entry(seed=1)])
        store.inject_enospc(1)
        store.flush()
        assert store.write_through_suspended
        assert store.flush(force=True) == 1
        assert not store.write_through_suspended
        assert store.write_through_resumes == 1
        assert store.dirty_namespaces() == []
        # The shard is real: a fresh store loads it.
        assert SharedCacheStore(
            directory=str(tmp_path)).entry_count(NS_A) == 1

    def test_prune_frees_space_and_retry_succeeds(self, tmp_path):
        store = SharedCacheStore(directory=str(tmp_path))
        # NS_A's shard (two entries) is strictly bigger than NS_B's
        # blob, so pruning it frees enough for the retry.
        store.merge(NS_A, [make_entry(seed=1), make_entry(rip=0x48,
                                                          seed=2)])
        assert store.flush() == 1
        store.merge(NS_B, [make_entry(seed=3)])
        store.inject_enospc(1)
        written = store.flush()
        assert store.shards_pruned >= 1
        assert store.enospc_events == 1
        assert not store.write_through_suspended
        # NS_B landed this pass; the pruned NS_A was re-marked dirty
        # (nothing lost) and catches up on the next flush.
        assert written == 1
        assert store.dirty_namespaces() == [NS_A]
        assert store.flush() == 1
        assert store.dirty_namespaces() == []
        files = [name for name in os.listdir(str(tmp_path))
                 if name.endswith(SHARD_SUFFIX)]
        assert len(files) == 2
        assert no_tmp_litter(str(tmp_path)) == []

    def test_stats_expose_the_ladder(self, tmp_path):
        store = SharedCacheStore(directory=str(tmp_path))
        store.merge(NS_A, [make_entry(seed=1)])
        store.inject_enospc(1)
        store.flush()
        stats = store.stats_dict()
        assert stats["enospc_events"] == 1
        assert stats["write_through_suspended"] is True
        store.flush(force=True)
        stats = store.stats_dict()
        assert stats["write_through_suspended"] is False
        assert stats["write_through_resumes"] == 1


class TestJournalEnospc:
    def test_torn_append_is_rewound_and_suspended(self, tmp_path):
        with JobJournal(str(tmp_path), fsync=False) as journal:
            journal.record_mode("normal", "baseline")
            size_before = os.path.getsize(journal.path)
            journal.inject_enospc(1)
            journal.record_mode("degraded", "dropped on the floor")
            assert journal.journal_suspended
            assert journal.records_dropped == 1
            assert journal.enospc_events == 1
            # The torn tail was rewound: the file ends exactly where
            # the last good record ended.
            assert os.path.getsize(journal.path) == size_before
        # Replay sees a structurally clean log — no salvage needed.
        with JobJournal(str(tmp_path), fsync=False) as replayed:
            assert replayed.truncated_bytes == 0
            assert replayed.records_replayed == 1
            assert replayed.mode == "normal"

    def test_next_successful_append_resumes(self, tmp_path):
        with JobJournal(str(tmp_path), fsync=False) as journal:
            journal.inject_enospc(1)
            journal.record_mode("degraded", "lost")
            assert journal.journal_suspended
            journal.record_mode("normal", "space returned")
            assert not journal.journal_suspended
            assert journal.journal_resumes == 1
        with JobJournal(str(tmp_path), fsync=False) as replayed:
            assert replayed.truncated_bytes == 0
            assert replayed.mode == "normal"

    def test_result_enospc_drops_without_litter(self, tmp_path):
        with JobJournal(str(tmp_path), fsync=False) as journal:
            journal.inject_enospc(1)
            # Empty result store: nothing to prune, the write fails
            # for good and only the *disk* copy is lost.
            assert journal.store_result("job-1", {"x": 1}) is False
            assert journal.results_dropped == 1
            assert journal.load_result("job-1") is None
            assert no_tmp_litter(str(tmp_path)) == []

    def test_result_prune_makes_room_for_retry(self, tmp_path):
        with JobJournal(str(tmp_path), fsync=False) as journal:
            assert journal.store_result("old-1", {"pad": "y" * 4096})
            time.sleep(0.02)  # mtime order: old-1 is strictly oldest
            assert journal.store_result("old-2", {"pad": "z" * 4096})
            journal.inject_enospc(1)
            assert journal.store_result("new", {"pad": "w" * 64}) is True
            assert journal.results_pruned_for_space >= 1
            assert journal.load_result("new") == {"pad": "w" * 64}
            assert journal.load_result("old-1") is None  # oldest went
            stats = journal.stats_dict()
            assert stats["enospc_events"] == 1
            assert stats["results_pruned_for_space"] >= 1


def engine_overrides(config):
    defaults = EngineConfig().__dict__
    return {key: (list(value) if isinstance(value, tuple) else value)
            for key, value in config.__dict__.items()
            if defaults.get(key) != value}


@pytest.fixture(scope="module")
def collatz():
    return build_collatz(count=80)


@pytest.fixture(scope="module")
def expected_state(collatz):
    machine = collatz.program.make_machine()
    machine.run(max_instructions=50_000_000)
    assert machine.halted
    return bytes(machine.state.buf)


def submit_options(workload):
    return {"engine": engine_overrides(workload.config),
            "inflight_wait_bias": 1e9}


@pytest.fixture
def daemon(tmp_path):
    config = ServeConfig(socket_path=str(tmp_path / "serve.sock"),
                         cache_dir=str(tmp_path / "cache"),
                         worker_budget=2, workers_per_job=2,
                         max_concurrent_jobs=1,
                         selfcheck_interval_seconds=0.2)
    instance = SpeculationDaemon(config).start()
    yield instance
    instance.close()


def wait_until(probe, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if probe():
            return True
        time.sleep(interval)
    return False


class TestDaemonDurabilityDegradation:
    def test_journal_enospc_job_still_correct_then_recovers(
            self, daemon, collatz, expected_state):
        daemon.journal.inject_enospc(1)
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            result = client.run(collatz.program, **submit_options(collatz))
            assert base64.b64decode(result["final_state"]) == expected_state
            # The dropped record suspended the journal; the self-check
            # durability probe lifts it without any client traffic.
            assert wait_until(
                lambda: not client.stats()["journal"]["journal_suspended"])
            journal_stats = client.stats()["journal"]
            assert journal_stats["enospc_events"] >= 1
            assert journal_stats["journal_resumes"] >= 1
        assert no_tmp_litter(daemon.config.journal_dir) == []

    def test_cache_enospc_write_through_resumes_via_selfcheck(
            self, daemon, collatz, expected_state):
        daemon.store.inject_enospc(1)
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            result = client.run(collatz.program, **submit_options(collatz))
            assert base64.b64decode(result["final_state"]) == expected_state
            assert wait_until(
                lambda: (not client.stats()["cache"]
                         ["write_through_suspended"]
                         and client.stats()["cache"]
                         ["write_through_resumes"] >= 1))
            cache_stats = client.stats()["cache"]
            assert cache_stats["enospc_events"] >= 1
        # The shard really reached disk once space "returned".
        persisted = SharedCacheStore(directory=daemon.config.cache_dir)
        assert persisted.entry_count(collatz.program.image_hash()) > 0

    def test_status_exposes_pressure_counters(self, daemon):
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            status = client.status()
        # Satellite: `repro serve --status` shows the prune/suspension
        # counters an operator needs during an incident.
        assert "enospc_events" in status["cache"]
        assert "shards_pruned" in status["cache"]
        assert "enospc_events" in status["journal"]
        assert "results_pruned_for_space" in status["journal"]
        assert "pressure_events" in status["governor"]
        assert status["jobs"]["shed"] == 0


class TestAdmissionShedding:
    def test_overloaded_is_surfaced_to_a_no_retry_client(
            self, daemon, collatz):
        daemon.governor.force_pressure("fd", 1)
        with ServeClient(daemon.config.socket_path, client="t1",
                         retries=0) as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.submit(collatz.program, **submit_options(collatz))
            assert excinfo.value.code == "overloaded"
        assert daemon.jobs_shed == 1
        assert daemon.governor.pressure_events["fd"] == 1

    def test_retrying_client_rides_out_the_shed(self, daemon, collatz,
                                                expected_state):
        daemon.governor.force_pressure("queue", 2)
        with ServeClient(daemon.config.socket_path, client="t1",
                         retries=6, backoff_base=0.02,
                         jitter_seed=7) as client:
            result = client.run(collatz.program, **submit_options(collatz))
            assert base64.b64decode(result["final_state"]) == expected_state
            assert client.retried_requests >= 2
            stats = client.stats()
            assert stats["governor"]["sheds"] >= 2
            assert stats["jobs"]["shed"] >= 2


class TestServeFaultPlan:
    def test_daemon_consumes_its_own_resource_schedule(
            self, tmp_path, collatz, expected_state):
        config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"),
            cache_dir=str(tmp_path / "cache"),
            worker_budget=2, workers_per_job=2, max_concurrent_jobs=1,
            selfcheck_interval_seconds=0.2,
            fault_plan="seed=1,disk_full=1,fd_exhaust=1,start=1,spacing=1")
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(config.socket_path, client="t1",
                             retries=6, backoff_base=0.02,
                             jitter_seed=3) as client:
                for __ in range(3):
                    result = client.run(collatz.program,
                                        **submit_options(collatz))
                    assert base64.b64decode(
                        result["final_state"]) == expected_state
                assert daemon.serve_faults_injected == 2
                assert daemon.serve_fault_plan.exhausted
                stats = client.stats()
                # The disk_full leg really hit both durability stores.
                assert stats["journal"]["enospc_events"] \
                    + stats["cache"]["enospc_events"] >= 1
                # ... and any suspension healed before we leave.
                assert wait_until(
                    lambda: (not client.stats()["journal"]
                             ["journal_suspended"]
                             and not client.stats()["cache"]
                             ["write_through_suspended"]))

    def test_env_var_serve_plan_applies(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SERVE_FAULT_PLAN",
                           "seed=9,disk_full=2,start=0,spacing=1")
        plan = ServeConfig(
            socket_path=str(tmp_path / "s.sock")).resolve_fault_plan()
        assert plan.disk_fulls == 2 and plan.seed == 9
        monkeypatch.delenv("REPRO_SERVE_FAULT_PLAN")
        assert ServeConfig(
            socket_path=str(tmp_path / "s.sock")).resolve_fault_plan() \
            is None


class TestWatchdogProbeFollowsBackingDir:
    def test_default_probe_path_is_the_real_backing_dir(self):
        # Satellite: the old probe hardcoded /dev/shm; the default must
        # now follow wherever shared_memory segments actually live.
        ours = serve_watchdog.shm_headroom_bytes()
        direct = resources.shm_headroom_bytes(resources.shm_backing_dir())
        if ours is None or direct is None:
            pytest.skip("tmpfs not probeable here")
        # Both probe the same filesystem; headroom drifts between two
        # statvfs calls, so compare loosely.
        assert abs(ours - direct) < 64 * 1024 * 1024

    def test_selfcheck_floor_follows_env(self, monkeypatch):
        monkeypatch.setenv(resources.ENV_SHM_HEADROOM, "12345")
        check = SelfCheck()
        assert check.min_shm_headroom_bytes == 12345
        monkeypatch.delenv(resources.ENV_SHM_HEADROOM)
        assert SelfCheck().min_shm_headroom_bytes == \
            resources.DEFAULT_SHM_HEADROOM_BYTES
