"""Differential tests: block-cache fast path vs. reference interpreter.

Every test here runs the same program through both interpreter tiers and
asserts bit-exact agreement: final state vectors, instruction counts,
dependency vectors, stop reasons, and fault messages — with and without
``track_code_reads``. This is the acceptance gate that makes the fast
path trustworthy enough to be on by default.
"""

import random

import pytest

from repro.core.speculation import run_speculation
from repro.errors import MachineError
from repro.isa.encoding import encode
from repro.isa.opcodes import Op
from repro.machine import DepVector, Machine, StateVector, TransitionContext
from repro.machine.layout import StateLayout
from repro.minic import compile_source

_HOT_LOOP = """
int sink;
int main() {
    int i;
    int x = 0;
    for (i = 0; i < 2000; i++) { x = x + i; x = x ^ (i << 1); }
    sink = x;
    return x;
}
"""


# -- helpers -------------------------------------------------------------------

def _outcome(machine, dep, run_result, exc):
    """Everything that must agree between the two tiers."""
    if exc is not None:
        result = ("fault", type(exc).__name__, str(exc))
    else:
        result = (run_result.instructions, run_result.reason, run_result.eip)
    return (result, bytes(machine.state.buf),
            None if dep is None else bytes(dep.buf),
            machine.instruction_count)


def _run_tier(program, fast, track, with_dep, max_instructions=100_000,
              break_ips=None):
    machine = program.make_machine(track_code_reads=track, fast_path=fast)
    dep = DepVector(program.layout.size) if with_dep else None
    result = exc = None
    try:
        result = machine.run(max_instructions=max_instructions,
                             break_ips=break_ips, dep=dep)
    except MachineError as caught:
        exc = caught
    return _outcome(machine, dep, result, exc)


def assert_tiers_agree(program, max_instructions=100_000, break_ips=None):
    for track in (False, True):
        for with_dep in (False, True):
            ref = _run_tier(program, False, track, with_dep,
                            max_instructions, break_ips)
            fast = _run_tier(program, True, track, with_dep,
                             max_instructions, break_ips)
            assert ref == fast, (
                "tier mismatch (track=%s dep=%s): ref=%r fast=%r"
                % (track, with_dep, ref[0], fast[0]))


# -- the hot kernel ------------------------------------------------------------

@pytest.fixture(scope="module")
def hot_program():
    return compile_source(_HOT_LOOP, name="hot")


def test_hot_loop_bit_exact(hot_program):
    assert_tiers_agree(hot_program)


def test_hot_loop_under_budgets(hot_program):
    # Budgets that land mid-block force the fast path's single-step
    # fallback; every cut must agree with the reference.
    for budget in (0, 1, 2, 3, 7, 9, 100, 101, 12345):
        assert_tiers_agree(hot_program, max_instructions=budget)


def test_hot_loop_breakpoints(hot_program):
    lo, hi = hot_program.code_range
    ips = list(range(lo, hi, 8))
    rng = random.Random(11)
    cases = [frozenset((ip,)) for ip in ips]
    cases += [frozenset(rng.sample(ips, 3)) for __ in range(10)]
    for break_ips in cases:
        for fast in (False, True):
            machine = hot_program.make_machine(fast_path=fast)
            dep = DepVector(hot_program.layout.size)
            trail = []
            for __ in range(40):  # resume repeatedly over one break set
                result = machine.run(max_instructions=997,
                                     break_ips=break_ips, dep=dep)
                trail.append((result.instructions, result.reason,
                              result.eip))
                if result.reason == "halted":
                    break
            if fast:
                assert trail == ref_trail
                assert bytes(machine.state.buf) == ref_state
                assert bytes(dep.buf) == ref_dep
            else:
                ref_trail = trail
                ref_state = bytes(machine.state.buf)
                ref_dep = bytes(dep.buf)


def test_hot_loop_ip_trace(hot_program):
    for budget in (0, 1, 5, 9, 1000, 54321):
        ref = hot_program.make_machine(fast_path=False)
        fast = hot_program.make_machine(fast_path=True)
        assert ref.ip_trace(budget) == fast.ip_trace(budget)
        assert bytes(ref.state.buf) == bytes(fast.state.buf)
        assert ref.instruction_count == fast.instruction_count


def test_hot_loop_speculation(hot_program):
    lo, hi = hot_program.code_range
    rng = random.Random(5)
    seed = hot_program.make_machine(fast_path=False)
    snapshots = []
    for __ in range(12):
        seed.run(max_instructions=131)
        snapshots.append(bytes(seed.state.buf))
    for rip in rng.sample(list(range(lo, hi, 8)), 6):
        for occurrences in (1, 3):
            for snap in snapshots[::4]:
                results = []
                for fast in (False, True):
                    context = hot_program.make_context(fast_path=fast)
                    spec = run_speculation(context, snap, rip, occurrences,
                                           3000)
                    entry = spec.entry
                    results.append(
                        (spec.instructions, spec.halted, spec.fault,
                         None if entry is None else
                         (entry.start_indices.tobytes(),
                          entry.end_indices.tobytes())))
                assert results[0] == results[1]


# -- randomized mini-C programs ------------------------------------------------

def _random_minic(rng):
    """A small random program: global array, loop, mixed arithmetic."""
    n = rng.randrange(4, 9)
    ops = ["+", "-", "*", "^", "|", "&", "%", "/", "<<", ">>"]
    body = []
    for k in range(rng.randrange(2, 5)):
        op = rng.choice(ops)
        if op in ("%", "/"):
            rhs = "(i + %d)" % rng.randrange(1, 7)  # nonzero divisor
        elif op in ("<<", ">>"):
            rhs = "%d" % rng.randrange(0, 5)
        else:
            rhs = rng.choice(["i", "arr[i %% %d]" % n,
                              "%d" % rng.randrange(-9, 9)])
        body.append("acc = acc %s %s;" % (op, rhs))
    body.append("arr[i %% %d] = acc;" % n)
    return """
int arr[%d] = {%s};
int out;
int main() {
    int i;
    int acc = %d;
    for (i = 0; i < %d; i++) {
        %s
    }
    out = acc;
    return acc;
}
""" % (n, ", ".join(str(rng.randrange(-20, 20)) for __ in range(n)),
       rng.randrange(-50, 50), rng.randrange(10, 60),
       "\n        ".join(body))


def test_random_minic_programs():
    rng = random.Random(0xA5C)
    for trial in range(10):
        source = _random_minic(rng)
        program = compile_source(source, name="fuzz%d" % trial)
        assert_tiers_agree(program)


# -- randomized raw instruction streams ----------------------------------------
# Mini-C exercises the compiler's favorite instructions; raw streams cover
# the whole ISA including faults, misaligned jumps, and encodings the
# translator must refuse (register fields >= 8, junk modes).

def _random_stream(rng, n):
    out = bytearray()
    for __ in range(n):
        op = rng.choice(list(Op))
        mode = rng.choice([0, 0, 1, 1, 2, 3, 4, 5])
        ra = rng.choice([0, 1, 2, 3, 4, 5, 6, 7, 7, 9])
        rb = rng.choice([0x01, 0x12, 0x23, 0x34, 0x45, 0x56, 0x67, 0x70,
                         0x9A])
        imm = rng.choice([0, 1, 4, 64, 100, 200, -4, 0x7FFFFFFF,
                          -0x80000000, rng.randrange(-300, 300)])
        out += encode(op, mode, ra, rb, imm)
    return bytes(out)


def _raw_machine(code, trial, fast, track, mem=1024):
    layout = StateLayout(mem)
    state = StateVector(layout)
    base = 0x40
    state.write_bytes(base, code)
    state.eip = base
    state.set_reg(4, mem)  # ESP at the top of memory
    rng = random.Random(trial)
    for reg in range(8):
        if reg != 4:
            state.set_reg(reg, rng.randrange(0, 1 << 32))
    context = TransitionContext(layout, code_range=(base, base + len(code)),
                                track_code_reads=track, fast_path=fast)
    return Machine(state, context)


def test_random_instruction_streams():
    rng = random.Random(1234)
    for trial in range(200):
        code = _random_stream(rng, rng.randrange(1, 30))
        for track in (False, True):
            results = []
            for fast in (False, True):
                machine = _raw_machine(code, trial, fast, track)
                dep = DepVector(machine.state.layout.size)
                result = exc = None
                try:
                    result = machine.run(max_instructions=200, dep=dep)
                except MachineError as caught:
                    exc = caught
                results.append(_outcome(machine, dep, result, exc))
            assert results[0] == results[1], (
                "stream mismatch trial=%d track=%s: ref=%r fast=%r"
                % (trial, track, results[0][0], results[1][0]))
