"""SpeculationDaemon integration: multi-tenant jobs over a real socket.

Everything here drives an in-process daemon through real unix-socket
round trips — the same path ``repro submit`` takes — with real worker
pools underneath. The flagship property is the ISSUE's: two clients
running different programs concurrently both get final states
byte-identical to a plain sequential run of their own program.
"""

import base64
import os
import threading
import time

import pytest

from repro.bench import build_collatz, build_ising
from repro.core.config import EngineConfig
from repro.runtime import shm
from repro.serve import (
    ServeClient,
    ServeClientError,
    ServeConfig,
    ServeError,
    SpeculationDaemon,
)
from repro.serve.daemon import _PoolLease


def engine_overrides(config):
    """The JSON-safe overrides dict ``repro submit`` derives for a
    workload's tuned EngineConfig."""
    defaults = EngineConfig().__dict__
    return {key: (list(value) if isinstance(value, tuple) else value)
            for key, value in config.__dict__.items()
            if defaults.get(key) != value}


def sequential_state(program, limit=50_000_000):
    machine = program.make_machine()
    machine.run(max_instructions=limit)
    assert machine.halted
    return bytes(machine.state.buf)


@pytest.fixture(scope="module")
def collatz():
    return build_collatz(count=120)


@pytest.fixture(scope="module")
def ising():
    return build_ising(nodes=32, spins=4)


@pytest.fixture
def daemon(tmp_path):
    config = ServeConfig(socket_path=str(tmp_path / "serve.sock"),
                         cache_dir=str(tmp_path / "cache"),
                         worker_budget=4, workers_per_job=2,
                         max_concurrent_jobs=2)
    instance = SpeculationDaemon(config).start()
    yield instance
    instance.close()


def submit_options(workload):
    return {"engine": engine_overrides(workload.config),
            "inflight_wait_bias": 1e9}


class TestSingleClient:
    def test_submit_runs_byte_identical(self, daemon, collatz):
        expected = sequential_state(collatz.program)
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            result = client.run(collatz.program, **submit_options(collatz))
        assert result["halted"]
        assert base64.b64decode(result["final_state"]) == expected
        assert result["namespace"] == collatz.program.image_hash()
        assert result["merged_entries"] > 0

    def test_warm_resubmission_reuses_cache(self, daemon, collatz):
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            cold = client.run(collatz.program, **submit_options(collatz))
            warm = client.run(collatz.program, **submit_options(collatz))
        assert cold["warm_entries"] == 0
        assert warm["warm_entries"] > 0
        assert warm["hits"] > 0
        # The warm run rediscovers segments the shard already holds;
        # dedup keeps the shard from growing a copy per run.
        assert warm["merged_entries"] < cold["merged_entries"]
        assert warm["final_state"] == cold["final_state"]

    def test_per_job_runtime_delta_not_cumulative(self, daemon, collatz):
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            first = client.run(collatz.program, **submit_options(collatz))
            second = client.run(collatz.program, **submit_options(collatz))
        # Shared pool, cumulative pool.stats — but each job reports its
        # own slice.
        assert first["runtime"]["tasks_dispatched"] > 0
        total = (first["runtime"]["tasks_dispatched"]
                 + second["runtime"]["tasks_dispatched"])
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            stats = client.stats()
        aggregate = stats["clients"]["t1"]["runtime"]["tasks_dispatched"]
        assert aggregate == total

    def test_poll_and_result_verbs(self, daemon, collatz):
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            job_id = client.submit(collatz.program,
                                   **submit_options(collatz))["job_id"]
            job = client.wait(job_id)
            assert job["state"] == "done"
            assert job["hits"] is not None
            slim = client.result(job_id, include_state=False)
            assert "final_state" not in slim
            assert slim["state_sha256"]
            full = client.result(job_id)
            assert "final_state" in full

    def test_state_roundtrip_via_final_state_helper(self, daemon, collatz):
        expected = sequential_state(collatz.program)
        with ServeClient(daemon.config.socket_path, client="t1") as client:
            job_id = client.submit(collatz.program,
                                   **submit_options(collatz))["job_id"]
            client.wait(job_id)
            assert client.final_state(job_id) == expected


class TestMultiTenant:
    def test_concurrent_clients_both_byte_identical(self, daemon, collatz,
                                                    ising):
        """Two tenants, two programs, one daemon — each final state must
        match its own sequential reference (the acceptance criterion)."""
        references = {
            "alice": (collatz, sequential_state(collatz.program)),
            "bob": (ising, sequential_state(ising.program)),
        }
        outcomes = {}

        def run_tenant(name):
            workload, expected = references[name]
            try:
                with ServeClient(daemon.config.socket_path,
                                 client=name) as client:
                    result = client.run(workload.program,
                                        **submit_options(workload))
                outcomes[name] = (
                    result["halted"],
                    base64.b64decode(result["final_state"]) == expected)
            except Exception as exc:  # surfaced by the assert below
                outcomes[name] = exc

        threads = [threading.Thread(target=run_tenant, args=(name,))
                   for name in references]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert outcomes == {"alice": (True, True), "bob": (True, True)}

    def test_namespaces_isolated_per_image(self, daemon, collatz, ising):
        with ServeClient(daemon.config.socket_path, client="a") as client:
            client.run(collatz.program, **submit_options(collatz))
            client.run(ising.program, **submit_options(ising))
            stats = client.stats()
        cache = stats["cache"]
        assert cache["namespaces"] == 2
        assert collatz.program.image_hash() in cache["shards"]
        assert ising.program.image_hash() in cache["shards"]
        # A different image never sees collatz's entries as warm.
        with ServeClient(daemon.config.socket_path, client="a") as client:
            warm = client.submit(ising.program,
                                 **submit_options(ising))["warm_entries"]
            assert warm == stats["cache"]["shards"][
                ising.program.image_hash()]["entries"]

    def test_per_client_stats_aggregation(self, daemon, collatz):
        for name in ("alice", "bob"):
            with ServeClient(daemon.config.socket_path,
                             client=name) as client:
                client.run(collatz.program, **submit_options(collatz))
        with ServeClient(daemon.config.socket_path, client="x") as client:
            stats = client.stats()
            rows = client.jobs()
        for name in ("alice", "bob"):
            aggregate = stats["clients"][name]
            assert aggregate["jobs_submitted"] == 1
            assert aggregate["jobs_done"] == 1
            assert aggregate["stats"]["hits"] >= 0
            assert aggregate["runtime"]["tasks_dispatched"] > 0
        assert {row["client"] for row in rows} == {"alice", "bob"}


class TestFailureContainment:
    def test_failed_job_does_not_poison_daemon(self, daemon, collatz,
                                               monkeypatch):
        def explode(job):
            raise RuntimeError("synthetic engine failure")

        monkeypatch.setattr(SpeculationDaemon, "_engine_config",
                            staticmethod(explode))
        with ServeClient(daemon.config.socket_path, client="victim") as c:
            job_id = c.submit(collatz.program)["job_id"]
            job = c.wait(job_id)
        assert job["state"] == "failed"
        assert "synthetic engine failure" in job["error"]
        monkeypatch.undo()
        # The failed job's pool was retired; a healthy client is served
        # by a fresh one and the namespace is intact.
        expected = sequential_state(collatz.program)
        with ServeClient(daemon.config.socket_path, client="healthy") as c:
            result = c.run(collatz.program, **submit_options(collatz))
            stats = c.stats()
        assert base64.b64decode(result["final_state"]) == expected
        assert stats["jobs"]["failed"] == 1
        assert stats["pools_retired"] >= 1

    def test_result_of_failed_job_reports_error_code(self, daemon, collatz,
                                                     monkeypatch):
        monkeypatch.setattr(
            SpeculationDaemon, "_engine_config",
            staticmethod(lambda job: (_ for _ in ()).throw(
                RuntimeError("nope"))))
        with ServeClient(daemon.config.socket_path, client="v") as client:
            job_id = client.submit(collatz.program)["job_id"]
            client.wait(job_id)
            with pytest.raises(ServeClientError) as info:
                client.result(job_id)
            assert info.value.code == "not-done"

    def test_bad_requests_are_rejected_not_fatal(self, daemon, collatz):
        with ServeClient(daemon.config.socket_path, client="t") as client:
            with pytest.raises(ServeClientError) as info:
                client.request("submit", client="t", program={"bogus": 1},
                               options={})
            assert info.value.code == "bad-program"
            with pytest.raises(ServeClientError) as info:
                client.submit(collatz.program, not_an_option=1)
            assert info.value.code == "bad-request"
            with pytest.raises(ServeClientError) as info:
                client.submit(collatz.program, engine={"bogus_knob": 1})
            assert info.value.code == "bad-request"
            with pytest.raises(ServeClientError) as info:
                client.request("frobnicate")
            assert info.value.code == "bad-verb"
            with pytest.raises(ServeClientError) as info:
                client.poll("no-such-job")
            assert info.value.code == "not-found"
            # The connection survives all of it.
            assert client.ping()["pong"]

    def test_backpressure_rejects_over_backlog(self, tmp_path, collatz):
        config = ServeConfig(socket_path=str(tmp_path / "bp.sock"),
                             max_queued_per_client=0)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(daemon.config.socket_path, client="t") as c:
                with pytest.raises(ServeClientError) as info:
                    c.submit(collatz.program)
                assert info.value.code == "busy"


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path, collatz):
        config = ServeConfig(socket_path=str(tmp_path / "c.sock"),
                             max_concurrent_jobs=1,
                             max_running_per_client=1)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(daemon.config.socket_path, client="t") as c:
                first = c.submit(collatz.program,
                                 **submit_options(collatz))["job_id"]
                # Same client, running bound 1: the second job queues.
                second = c.submit(collatz.program,
                                  **submit_options(collatz))["job_id"]
                response = c.cancel(second)
                assert response["cancelled"]
                assert c.wait(second)["state"] == "cancelled"
                assert c.wait(first)["state"] == "done"

    def test_cancel_running_job_stops_at_boundary(self, tmp_path):
        big = build_collatz(count=20_000)
        config = ServeConfig(socket_path=str(tmp_path / "c.sock"))
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(daemon.config.socket_path, client="t") as c:
                job_id = c.submit(big.program,
                                  **submit_options(big))["job_id"]
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if c.poll(job_id)["state"] == "running":
                        break
                    time.sleep(0.01)
                c.cancel(job_id)
                job = c.wait(job_id, timeout=60)
        # Ran long enough to be cancelled mid-flight, or finished first
        # on a fast machine — either way the daemon stays consistent.
        assert job["state"] in ("cancelled", "done")


class TestLifecycle:
    def test_close_is_idempotent_and_cleans_up(self, tmp_path, collatz):
        config = ServeConfig(socket_path=str(tmp_path / "l.sock"),
                             cache_dir=str(tmp_path / "cache"))
        daemon = SpeculationDaemon(config).start()
        with ServeClient(config.socket_path, client="t") as client:
            client.run(collatz.program, **submit_options(collatz))
        daemon.close()
        daemon.close()  # second close: no-op, no exception
        assert not os.path.exists(config.socket_path)
        assert shm.live_segment_names() == []
        # The shard hit disk even though no explicit flush was asked.
        shard = os.path.join(str(tmp_path / "cache"),
                             collatz.program.image_hash() + ".tcache")
        assert os.path.exists(shard)

    def test_double_request_stop_is_safe(self, tmp_path):
        config = ServeConfig(socket_path=str(tmp_path / "l.sock"))
        daemon = SpeculationDaemon(config).start()
        daemon.request_stop()
        daemon.request_stop()  # double-SIGTERM shape: escalates, no raise
        daemon.close()
        assert not os.path.exists(config.socket_path)

    def test_two_daemons_same_socket_refused(self, tmp_path):
        config = ServeConfig(socket_path=str(tmp_path / "l.sock"))
        daemon = SpeculationDaemon(config).start()
        try:
            with pytest.raises(ServeError):
                SpeculationDaemon(config).start()
        finally:
            daemon.close()

    def test_stale_socket_file_is_replaced(self, tmp_path):
        path = str(tmp_path / "l.sock")
        (tmp_path / "l.sock").write_bytes(b"")  # unclean previous exit
        config = ServeConfig(socket_path=path)
        daemon = SpeculationDaemon(config).start()
        try:
            with ServeClient(path, client="t") as client:
                assert client.ping()["pong"]
        finally:
            daemon.close()

    def test_shutdown_verb_stops_daemon(self, tmp_path):
        config = ServeConfig(socket_path=str(tmp_path / "l.sock"))
        daemon = SpeculationDaemon(config).start()
        with ServeClient(config.socket_path, client="t") as client:
            assert client.shutdown()["stopping"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not daemon._stop.is_set():
            time.sleep(0.02)
        assert daemon._stop.is_set()
        daemon.close()
        assert not os.path.exists(config.socket_path)


class TestResourceManager:
    def test_idle_pool_retired_lru_for_new_image(self, tmp_path, collatz,
                                                 ising):
        # Budget fits exactly one 2-worker pool: the second image must
        # evict the first (idle) pool instead of being refused.
        config = ServeConfig(socket_path=str(tmp_path / "r.sock"),
                             worker_budget=2, workers_per_job=2,
                             max_concurrent_jobs=1)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(config.socket_path, client="t") as client:
                client.run(collatz.program, **submit_options(collatz))
                client.run(ising.program, **submit_options(ising))
                stats = client.stats()
            assert stats["pools_created"] == 2
            assert stats["pools_retired"] >= 1
            assert stats["workers_committed"] <= config.worker_budget

    def test_runnable_veto_respects_budget(self, tmp_path, collatz):
        config = ServeConfig(socket_path=str(tmp_path / "r.sock"),
                             worker_budget=2, workers_per_job=2)
        daemon = SpeculationDaemon(config)
        try:
            busy = _PoolLease("f" * 16, "other", 2, None)
            daemon._pools[busy.namespace] = busy  # all budget committed
            job = type("J", (), {"namespace": "e" * 16,
                                 "options": {},
                                 "program": collatz.program})()
            assert not daemon._runnable(job)
            busy.busy = False  # idle pools are reclaimable
            assert daemon._runnable(job)
        finally:
            daemon.close()


class TestDegradedMode:
    def test_selfcheck_flips_to_degraded_and_jobs_still_run(self, tmp_path,
                                                            collatz):
        expected = sequential_state(collatz.program)
        # An impossible headroom floor forces the self-check verdict to
        # "degraded" on its first pass.
        config = ServeConfig(socket_path=str(tmp_path / "serve.sock"),
                             cache_dir=str(tmp_path / "cache"),
                             watchdog_interval_seconds=0.05,
                             selfcheck_interval_seconds=0.1,
                             min_shm_headroom_bytes=2 ** 62)
        with SpeculationDaemon(config).start() as daemon:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not daemon.degraded:
                time.sleep(0.02)
            assert daemon.degraded
            assert "headroom" in daemon.degraded_reason

            with ServeClient(config.socket_path, client="t") as client:
                pong = client.ping()
                assert pong["degraded"] is True
                # Degraded jobs run sequentially (no pool, no cache
                # write-through) but the answer is still byte-identical.
                result = client.run(collatz.program,
                                    **submit_options(collatz))
                status = client.status()
            assert result["degraded"] is True
            assert result["backend"] == "serve-degraded"
            assert base64.b64decode(result["final_state"]) == expected
            assert result["merged_entries"] == 0
            assert status["degraded"] is True
            assert status["journal"]["mode"] == "degraded"
            assert daemon.jobs_degraded == 1

    def test_degraded_mode_is_journaled_across_restart(self, tmp_path):
        socket_path = str(tmp_path / "serve.sock")
        cache_dir = str(tmp_path / "cache")
        config = ServeConfig(socket_path=socket_path, cache_dir=cache_dir,
                             watchdog_interval_seconds=0.05,
                             selfcheck_interval_seconds=0.1,
                             min_shm_headroom_bytes=2 ** 62)
        with SpeculationDaemon(config).start() as daemon:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not daemon.degraded:
                time.sleep(0.02)
            assert daemon.degraded
            daemon.close()

        # The healthy restart re-evaluates instead of trusting the old
        # verdict: with a sane floor the daemon comes back normal.
        config2 = ServeConfig(socket_path=socket_path, cache_dir=cache_dir,
                              min_shm_headroom_bytes=1)
        with SpeculationDaemon(config2).start() as daemon2:
            assert not daemon2.degraded
