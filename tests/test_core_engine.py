"""Engine integration: end-to-end runs with correctness invariants."""

import pytest

from repro.bench import build_collatz, build_ising
from repro.cluster import CostModel, laptop1, server32
from repro.core.engine import (
    MemoizingEngine,
    ParallelEngine,
    run_sequential,
)
from repro.core.oracle import TrajectoryRecord
from repro.core.recognizer import Recognizer
from repro.errors import EngineError


@pytest.fixture(scope="module")
def ising_setup():
    workload = build_ising(nodes=96, spins=6)
    config = workload.config.replace(converge_supersteps_charge=2.0)
    recognized = Recognizer(config).find(workload.program)
    record = TrajectoryRecord(workload.program, recognized, config)
    factor = recognized.superstep_instructions / 2.3e6 / (1.2e7 / 2.3e6)
    cost_model = CostModel().scaled(factor)
    return workload, config, recognized, record, cost_model, {}


def run_cores(setup, cores, oracle=False):
    workload, config, recognized, record, cost_model, memo = setup
    engine = ParallelEngine(workload.program, server32(cores, cost_model),
                            config=config, recognized=recognized,
                            record=record, spec_memo=memo, oracle=oracle)
    return engine.run()


def test_run_sequential(ising_setup):
    workload = ising_setup[0]
    result = run_sequential(workload.program)
    assert result.halted
    assert result.instructions == ising_setup[3].total_instructions
    assert result.seconds == pytest.approx(result.instructions / 2.6e6)


def test_progress_invariant(ising_setup):
    """Executed + fast-forwarded instructions equal the sequential total
    — the engine's fundamental correctness identity."""
    result = run_cores(ising_setup, 8)
    stats = result.stats
    assert (stats.instructions_executed
            + stats.instructions_fast_forwarded) == result.total_instructions


def test_final_state_matches_sequential(ising_setup):
    """The parallel engine must compute the same answer."""
    workload = ising_setup[0]
    result = run_cores(ising_setup, 16)
    assert result.stats.hits > 0  # actually exercised fast-forwarding
    # Re-derive the program result sequentially.
    machine = workload.program.make_machine()
    machine.run(max_instructions=10_000_000)
    expected = machine.state.read_i32(
        workload.program.symbol("g_result_energy"))
    assert expected == workload.expected["best_energy"]


def test_scaling_improves_with_cores(ising_setup):
    s4 = run_cores(ising_setup, 4).scaling
    s16 = run_cores(ising_setup, 16).scaling
    assert s16 > s4
    assert s16 > 1.5


def test_single_core_near_unity(ising_setup):
    result = run_cores(ising_setup, 1)
    assert result.stats.hits == 0
    assert 0.8 <= result.scaling <= 1.01


def test_oracle_at_least_as_good(ising_setup):
    actual = run_cores(ising_setup, 16).scaling
    oracle = run_cores(ising_setup, 16, oracle=True).scaling
    assert oracle >= actual * 0.95  # allow small scheduling noise


def test_cycle_count_scaling_upper_bounds_lasc(ising_setup):
    workload, config, recognized, record, cost_model, memo = ising_setup
    lasc = run_cores(ising_setup, 16)
    zero = ParallelEngine(workload.program,
                          server32(16, cost_model.zero_overhead()),
                          config=config, recognized=recognized,
                          record=record, spec_memo=memo).run()
    assert zero.scaling >= lasc.scaling * 0.98


def test_prediction_stats_collected(ising_setup):
    result = run_cores(ising_setup, 8)
    pstats = result.prediction_stats
    assert pstats.total_predictions() > 10
    assert 0.0 <= pstats.actual_error_rate() <= 1.0


def test_hit_rate_reported(ising_setup):
    result = run_cores(ising_setup, 16)
    stats = result.stats
    assert stats.hits + stats.misses == stats.queries
    assert stats.misses == stats.misses_late + stats.misses_nomatch


def test_engine_requires_platform(ising_setup):
    workload = ising_setup[0]
    with pytest.raises(EngineError):
        ParallelEngine(workload.program, platform="not-a-platform")


class TestMemoizingEngine:
    @pytest.fixture(scope="class")
    def memo_result(self):
        workload = build_collatz(count=220, memoize=True)
        recognized = Recognizer(workload.config).find_for_memoization(
            workload.program)
        factor = max(recognized.superstep_instructions / 2.3e6 / 5.22, 1e-7)
        engine = MemoizingEngine(
            workload.program,
            laptop1(CostModel().scaled(factor)),
            config=workload.config,
            recognized=recognized)
        return engine.run(), workload

    def test_memoization_pays(self, memo_result):
        result, __ = memo_result
        assert result.stats.hits > 0
        assert result.scaling > 1.0

    def test_progress_invariant(self, memo_result):
        result, workload = memo_result
        sequential = run_sequential(workload.program)
        progress = (result.stats.instructions_executed
                    + result.stats.instructions_fast_forwarded)
        assert progress == sequential.instructions

    def test_timeline_monotone_instructions(self, memo_result):
        result, __ = memo_result
        xs = [p.instructions for p in result.timeline]
        assert xs == sorted(xs)
        # The curve starts below 1 (dependency-tracking overhead) and
        # ends above it (memoization pays) — the paper's Figure 6 shape.
        assert result.timeline[0].scaling < 1.0
        assert result.timeline[-1].scaling > 1.0
