"""Allocator: rollout chains, relevance masking, dispatch ordering."""

import numpy as np

from repro.core.allocator import Allocator, RelevanceMask, RolloutStep
from repro.core.config import EngineConfig
from repro.core.excitation import ExcitationTracker
from repro.core.predictors import default_ensemble
from repro.core.trajectory_cache import CacheEntry


def build_tracker_and_views(sequence):
    """Tracker + views over a one-counter state (word at vector 16)."""
    config = EngineConfig(warmup_observations=2)
    tracker = ExcitationTracker(None, config)
    views = []
    for value in sequence:
        buf = bytearray(64)
        buf[16:20] = (value & 0xFFFFFFFF).to_bytes(4, "little")
        view = tracker.observe(bytes(buf))
        if view is not None:
            views.append(view)
    return tracker, views


def warmed_allocator(max_rollout=8, upto=40):
    # Train through 40 so every bit the rollout will touch has flipped
    # at least once: a never-flipped bit has no training signal and the
    # weighted majority rightly refuses to flip it (the same blind spot
    # the paper's per-bit ensemble has at power-of-two crossings).
    tracker, views = build_tracker_and_views(range(upto))
    ensemble = default_ensemble()
    allocator = Allocator(ensemble, tracker, max_rollout)
    for view in views:
        ensemble.observe(view)
        allocator.advance(view)
    return tracker, ensemble, allocator, views


class TestChain:
    def test_chain_extends_to_max_rollout(self):
        __, __, allocator, __ = warmed_allocator(max_rollout=8)
        assert len(allocator.chain) == 8

    def test_chain_predicts_arithmetic_sequence(self):
        tracker, __, allocator, views = warmed_allocator()
        values = [int(step.word_values[0]) for step in allocator.chain]
        last_observed = int(views[-1].word_values[0])
        assert values == list(range(last_observed + 1, last_observed + 9))

    def test_correct_observation_shifts(self):
        tracker, ensemble, allocator, views = warmed_allocator()
        shifts_before = allocator.shifts
        buf = bytearray(64)
        next_value = int(views[-1].word_values[0]) + 1
        buf[16:20] = next_value.to_bytes(4, "little")
        view = tracker.observe(bytes(buf))
        ensemble.observe(view)
        allocator.advance(view)
        assert allocator.shifts == shifts_before + 1

    def test_wrong_observation_rebuilds(self):
        tracker, ensemble, allocator, views = warmed_allocator()
        rebuilds_before = allocator.rebuilds
        buf = bytearray(64)
        buf[16:20] = (3).to_bytes(4, "little")  # surprise: jumped back
        view = tracker.observe(bytes(buf))
        ensemble.observe(view)
        allocator.advance(view)
        assert allocator.rebuilds == rebuilds_before + 1
        # And the new chain continues from the surprise value.
        assert int(allocator.chain[0].word_values[0]) == 4

    def test_probabilities_monotonically_decrease(self):
        __, __, allocator, __ = warmed_allocator()
        probs = allocator.probabilities()
        assert all(a >= b for a, b in zip(probs, probs[1:]))
        assert all(0 < p <= 1 for p in probs)

    def test_dispatch_order_prefers_near_ranks(self):
        __, __, allocator, __ = warmed_allocator()
        order = allocator.dispatch_order(mean_jump=100,
                                         min_probability=1e-12)
        assert order[0] == 0
        assert sorted(order) == order

    def test_dispatch_threshold_prunes(self):
        __, __, allocator, __ = warmed_allocator()
        everything = allocator.dispatch_order(100, 1e-12)
        pruned = allocator.dispatch_order(100, 0.9999)
        assert len(pruned) <= len(everything)


class TestRelevanceMask:
    def _mask_with_dep_word(self, tracker, word_index):
        mask = RelevanceMask(tracker)
        entry = CacheEntry(
            0x40,
            np.array([word_index, word_index + 1], dtype=np.int64),
            np.array([0, 0], dtype=np.uint8),
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.uint8),
            length=1)
        mask.update_from_entry(entry)
        return mask

    def test_unseeded_mask_is_exact_equality(self):
        tracker, __ = build_tracker_and_views(range(6))
        mask = RelevanceMask(tracker)
        a = np.array([1], dtype=np.uint32)
        b = np.array([2], dtype=np.uint32)
        assert mask.equivalent(a, a.copy())
        assert not mask.equivalent(a, b)

    def test_seeded_mask_ignores_irrelevant_words(self):
        # Two target words: 16 (relevant) and 20 (dead temporary).
        config = EngineConfig(warmup_observations=2)
        tracker = ExcitationTracker(None, config)
        for i in range(6):
            buf = bytearray(64)
            buf[16:20] = i.to_bytes(4, "little")
            buf[20:24] = (i * 977 % 256).to_bytes(4, "little")
            tracker.observe(bytes(buf))
        mask = self._mask_with_dep_word(tracker, 16)
        assert mask.seeded
        a = np.array([5, 111], dtype=np.uint32)
        b = np.array([5, 222], dtype=np.uint32)
        c = np.array([6, 111], dtype=np.uint32)
        assert mask.equivalent(a, b)  # differ only in the dead word
        assert not mask.equivalent(a, c)
        assert mask.key(a) == mask.key(b)
        assert mask.key(a) != mask.key(c)

    def test_key_for_caches_per_step(self):
        tracker, __ = build_tracker_and_views(range(6))
        mask = self._mask_with_dep_word(tracker, 16)
        step = RolloutStep(np.array([3], dtype=np.uint32), b"x", 0.9)
        k1 = mask.key_for(step)
        assert step.cover_cache is not None
        assert mask.key_for(step) == k1


class TestChainPadding:
    def test_chain_survives_target_growth(self):
        config = EngineConfig(warmup_observations=2,
                              growth_batch_observations=1)
        tracker = ExcitationTracker(None, config)
        ensemble = default_ensemble()
        allocator = Allocator(ensemble, tracker, max_rollout=4)
        views = []
        for i in range(8):
            buf = bytearray(64)
            buf[16:20] = i.to_bytes(4, "little")
            view = tracker.observe(bytes(buf))
            if view is not None:
                ensemble.observe(view)
                allocator.advance(view)
                views.append(view)
        # A second word starts changing: target set grows.
        for i in range(8, 12):
            buf = bytearray(64)
            buf[16:20] = i.to_bytes(4, "little")
            buf[24:28] = (7).to_bytes(4, "little")
            view = tracker.observe(bytes(buf))
            ensemble.observe(view)
            allocator.advance(view)
        assert len(allocator.chain[0].word_values) \
            == tracker.n_target_words
