"""SharedCacheStore: namespacing, dedup, persistence, quarantine."""

import os

import numpy as np
import pytest

from repro.core.cache_store import (
    QUARANTINE_SUFFIX,
    SHARD_SUFFIX,
    CacheSnapshot,
    SharedCacheStore,
    entry_signature,
    valid_namespace,
)
from repro.core.trajectory_cache import CacheEntry
from repro.errors import EngineError

NS_A = "a1" * 16
NS_B = "b2" * 16


def make_entry(rip=0x40, seed=0, length=100, halted=False):
    rng = np.random.default_rng(seed)
    indices = np.sort(rng.choice(64, size=4, replace=False)).astype(np.int64)
    return CacheEntry(
        rip,
        indices,
        rng.integers(0, 256, size=4, dtype=np.uint8),
        indices.copy(),
        rng.integers(0, 256, size=4, dtype=np.uint8),
        length,
        halted=halted,
    )


class TestNamespaces:
    def test_valid_namespace(self):
        assert valid_namespace(NS_A)
        assert valid_namespace("deadbeef")
        assert not valid_namespace("short")
        assert not valid_namespace("../../etc/passwd")
        assert not valid_namespace("ABCDEF0123456789")  # uppercase
        assert not valid_namespace("")
        assert not valid_namespace(None)

    def test_invalid_namespace_rejected(self):
        store = SharedCacheStore()
        with pytest.raises(EngineError):
            store.snapshot("../evil")
        with pytest.raises(EngineError):
            store.merge("../evil", [make_entry()])

    def test_namespaces_do_not_cross_pollinate(self):
        store = SharedCacheStore()
        store.merge(NS_A, [make_entry(seed=1)])
        store.merge(NS_B, [make_entry(seed=2)])
        assert len(store.snapshot(NS_A)) == 1
        assert len(store.snapshot(NS_B)) == 1
        assert store.entry_count(NS_A) == 1
        sig_a = {entry_signature(e) for e in store.snapshot(NS_A).entries()}
        sig_b = {entry_signature(e) for e in store.snapshot(NS_B).entries()}
        assert sig_a != sig_b


class TestMergeDedup:
    def test_merge_counts_new_entries(self):
        store = SharedCacheStore()
        added = store.merge(NS_A, [make_entry(seed=i) for i in range(3)])
        assert added == 3
        assert store.entry_count(NS_A) == 3

    def test_duplicate_content_is_deduped(self):
        store = SharedCacheStore()
        store.merge(NS_A, [make_entry(seed=1)])
        # A different object with identical content — exactly what the
        # engine produces when it copies entries via with_ready_time.
        copy = make_entry(seed=1).with_ready_time(123.0)
        assert store.merge(NS_A, [copy]) == 0
        assert store.entry_count(NS_A) == 1
        assert store.entries_deduped == 1

    def test_snapshot_is_immutable_view(self):
        store = SharedCacheStore()
        store.merge(NS_A, [make_entry(seed=1)])
        snapshot = store.snapshot(NS_A)
        assert isinstance(snapshot, CacheSnapshot)
        store.merge(NS_A, [make_entry(seed=2)])
        assert len(snapshot) == 1  # taken before the second merge
        assert len(store.snapshot(NS_A)) == 2


class TestPersistence:
    def test_flush_and_reload_round_trip(self, tmp_path):
        directory = str(tmp_path / "cache")
        store = SharedCacheStore(directory)
        entries = [make_entry(seed=i, halted=(i == 2)) for i in range(3)]
        store.merge(NS_A, entries)
        assert store.flush() == 1
        assert os.path.exists(os.path.join(directory, NS_A + SHARD_SUFFIX))

        reloaded = SharedCacheStore(directory)
        assert reloaded.shards_loaded == 1
        assert reloaded.entry_count(NS_A) == 3
        original = {entry_signature(e) for e in entries}
        loaded = {entry_signature(e)
                  for e in reloaded.snapshot(NS_A).entries()}
        assert loaded == original

    def test_flush_skips_clean_shards(self, tmp_path):
        store = SharedCacheStore(str(tmp_path))
        store.merge(NS_A, [make_entry()])
        assert store.flush() == 1
        assert store.flush() == 0  # nothing dirty
        assert store.flush(force=True) == 1

    def test_memory_only_store_never_writes(self):
        store = SharedCacheStore()
        store.merge(NS_A, [make_entry()])
        assert store.flush(force=True) == 0

    def test_structurally_damaged_shard_quarantined(self, tmp_path):
        directory = str(tmp_path / "cache")
        store = SharedCacheStore(directory)
        store.merge(NS_A, [make_entry(seed=1)])
        store.merge(NS_B, [make_entry(seed=2)])
        store.flush()
        path = os.path.join(directory, NS_A + SHARD_SUFFIX)
        with open(path, "r+b") as handle:  # destroy the magic/header
            handle.write(b"\x00" * 16)

        reloaded = SharedCacheStore(directory)
        # The tainted shard was renamed aside, never loaded...
        assert reloaded.shards_quarantined == 1
        assert reloaded.entry_count(NS_A) == 0
        assert not os.path.exists(path)
        assert os.path.exists(path + QUARANTINE_SUFFIX)
        # ...and the healthy shard loaded normally.
        assert reloaded.entry_count(NS_B) == 1

    def test_quarantined_namespace_starts_over(self, tmp_path):
        directory = str(tmp_path / "cache")
        store = SharedCacheStore(directory)
        store.merge(NS_A, [make_entry(seed=1)])
        store.flush()
        path = os.path.join(directory, NS_A + SHARD_SUFFIX)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        reloaded = SharedCacheStore(directory)
        assert reloaded.entry_count(NS_A) == 0
        # The namespace is usable again and re-persists cleanly.
        reloaded.merge(NS_A, [make_entry(seed=3)])
        assert reloaded.flush() == 1
        third = SharedCacheStore(directory)
        assert third.entry_count(NS_A) == 1

    def test_atomic_flush_leaves_no_tmp_files(self, tmp_path):
        directory = str(tmp_path / "cache")
        store = SharedCacheStore(directory)
        store.merge(NS_A, [make_entry()])
        store.flush()
        assert all(not name.endswith(".tmp")
                   for name in os.listdir(directory))

    def test_stats_dict(self, tmp_path):
        store = SharedCacheStore(str(tmp_path))
        store.merge(NS_A, [make_entry(seed=i) for i in range(2)])
        store.flush()
        stats = store.stats_dict()
        assert stats["namespaces"] == 1
        assert stats["total_entries"] == 2
        assert stats["entries_merged"] == 2
        assert stats["flushes"] == 1
        assert NS_A in stats["shards"]
