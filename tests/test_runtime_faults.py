"""Fault injection: seeded chaos schedules, and the ASC correctness
property under them — the final state stays byte-identical to a plain
sequential run no matter what happens to the speculative tier."""

import pytest

from repro.bench import build_collatz, build_ising
from repro.runtime import FaultPlan, FaultPlanError, RealParallelEngine, \
    RuntimeConfig, wire
from repro.runtime.pool import TASK_CRASHED, WorkerPool


class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7,kill=2,timeout=3,corrupt=1,slow=4,drop=5,"
            "slow_ms=10,start=0,spacing=3")
        assert plan.seed == 7
        assert (plan.kills, plan.timeouts, plan.corruptions,
                plan.slows, plan.drops) == (2, 3, 1, 4, 5)
        assert plan.slow_seconds == pytest.approx(0.01)
        assert plan.start_after == 0
        assert plan.spacing == 3

    @pytest.mark.parametrize("spec", ["kill", "bogus=1", "kill=x"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(spec)

    def test_negative_quota_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(kills=-1)

    def test_same_seed_same_schedule(self):
        def schedule(seed):
            plan = FaultPlan(seed=seed, kills=2, timeouts=2, corruptions=1,
                             slows=1, drops=1, start_after=0, spacing=1)
            return ([plan.next_dispatch_fault() for __ in range(8)],
                    [plan.next_receive_fault() for __ in range(8)])

        assert schedule(42) == schedule(42)

    def test_different_seeds_differ(self):
        # Across many seeds the shuffles cannot all coincide.
        schedules = set()
        for seed in range(20):
            plan = FaultPlan(seed=seed, kills=3, timeouts=3, start_after=0,
                             spacing=1)
            schedules.add(tuple(plan.next_dispatch_fault()
                                for __ in range(6)))
        assert len(schedules) > 1

    def test_start_after_and_spacing(self):
        plan = FaultPlan(seed=1, kills=10, start_after=2, spacing=3)
        fired = [plan.next_dispatch_fault() is not None for __ in range(11)]
        # Eligible events: indices 2, 5, 8 (then every 3rd).
        assert fired == [False, False, True, False, False, True,
                         False, False, True, False, False]

    def test_disallowed_kind_stays_queued(self):
        plan = FaultPlan(seed=3, timeouts=1, start_after=0, spacing=1)
        # Deadlines disabled: the timeout fault is skipped, not burned.
        assert plan.next_dispatch_fault(allowed=["kill"]) is None
        assert not plan.exhausted
        assert plan.next_dispatch_fault(allowed=["kill", "timeout"]) \
            == "timeout"
        assert plan.exhausted

    def test_injected_and_pending_accounting(self):
        plan = FaultPlan(seed=0, kills=1, drops=1, start_after=0, spacing=1)
        assert plan.pending == {"kill": 1, "drop": 1}
        plan.next_dispatch_fault()
        assert plan.injected == {"kill": 1}
        assert plan.pending == {"drop": 1}
        assert plan.as_dict()["injected"] == {"kill": 1}

    def test_corrupt_bytes_always_rejected_by_wire(self):
        """Every corruption shape the plan produces must fail wire
        decoding — otherwise it could silently poison the cache."""
        plan = FaultPlan(seed=11)
        frame = wire.encode_task(1, 0x40, 1, 1000, b"\xab" * 128)
        for __ in range(50):
            damaged = plan.corrupt_bytes(frame)
            assert damaged != frame
            with pytest.raises(wire.WireError):
                wire.decode_message(damaged)

    def test_config_resolution(self, monkeypatch):
        plan = FaultPlan(seed=5, kills=1)
        assert RuntimeConfig(fault_plan=plan).resolve_fault_plan() is plan
        resolved = RuntimeConfig(
            fault_plan="seed=5,kill=1").resolve_fault_plan()
        assert resolved.kills == 1
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=9,drop=2")
        from_env = RuntimeConfig().resolve_fault_plan()
        assert from_env.seed == 9 and from_env.drops == 2
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert RuntimeConfig().resolve_fault_plan() is None


@pytest.fixture(scope="module")
def loop_program():
    from repro.asm import assemble
    return assemble("""
        .entry start
        start:
            mov eax, 0
        top:
            load ecx, [counter]
            add ecx, 3
            store [counter], ecx
            inc eax
            cmp eax, 50
            jl top
            hlt
        .data
        counter: .word 0
    """, name="faults-loop")


def boundary_state(program):
    machine = program.make_machine()
    top = program.symbol("top")
    machine.run(max_instructions=100_000, break_ips=frozenset((top,)))
    return top, bytes(machine.state.buf)


class TestPoolInjection:
    def test_dispatch_kill_surfaces_as_crash(self, loop_program):
        rip, start = boundary_state(loop_program)
        plan = FaultPlan(seed=1, kills=1, start_after=0, spacing=1)
        config = RuntimeConfig(n_workers=1, fault_plan=plan)
        with WorkerPool(loop_program, config) as pool:
            task = pool.submit(rip, 1, 10_000, start, meta="victim")
            assert task is not None
            assert plan.injected == {"kill": 1}
            outcomes = []
            import time
            deadline = time.monotonic() + 20.0
            while not outcomes and time.monotonic() < deadline:
                outcomes.extend(pool.poll(timeout=0.2))
            assert outcomes[0].status == TASK_CRASHED
            assert outcomes[0].task.meta == "victim"
            assert pool.stats.faults_injected == 1
            assert pool.stats.workers_respawned == 1

    def test_drop_loses_result_but_not_worker(self, loop_program):
        rip, start = boundary_state(loop_program)
        plan = FaultPlan(seed=1, drops=1, start_after=0, spacing=1)
        config = RuntimeConfig(n_workers=1, fault_plan=plan)
        with WorkerPool(loop_program, config) as pool:
            pool.submit(rip, 1, 10_000, start, meta="dropped")
            import time
            outcomes = []
            deadline = time.monotonic() + 20.0
            while not outcomes and time.monotonic() < deadline:
                outcomes.extend(pool.poll(timeout=0.2))
            assert outcomes[0].status == TASK_CRASHED
            assert pool.stats.results_dropped == 1
            # The worker itself survives (it answered; we lost it) and
            # serves the next task normally.
            assert pool.active_workers == 1
            pool.submit(rip, 1, 10_000, start, meta="after")
            after = []
            deadline = time.monotonic() + 20.0
            while not after and time.monotonic() < deadline:
                after.extend(pool.poll(timeout=0.2))
            assert after[0].task.meta == "after"
            assert after[0].ok


#: The ISSUE's acceptance schedule: >=2 kills, >=2 timeouts, >=1
#: corruption, plus a slow and a drop, all during one run.
ACCEPTANCE_PLAN = dict(kills=2, timeouts=2, corruptions=1, slows=1,
                       drops=1, slow_seconds=0.01, start_after=2,
                       spacing=1)


@pytest.fixture(scope="module", params=["collatz", "ising"])
def workload(request):
    if request.param == "collatz":
        return build_collatz(count=300)
    return build_ising(nodes=48, spins=6)


class TestChaosDifferential:
    @pytest.mark.parametrize("seed", [11, 42, 1337])
    def test_byte_identical_under_full_fault_schedule(self, workload, seed):
        machine = workload.program.make_machine()
        machine.run(max_instructions=50_000_000)
        assert machine.halted
        expected = bytes(machine.state.buf)

        plan = FaultPlan(seed=seed, **ACCEPTANCE_PLAN)
        config = RuntimeConfig(n_workers=3, inflight_wait_bias=1e9,
                               fault_plan=plan)
        result = RealParallelEngine(workload.program,
                                    config=workload.config,
                                    runtime_config=config).run()
        runtime = result.runtime

        assert result.halted
        assert result.final_state == expected
        # The schedule actually fired: every quota was spent.
        assert plan.exhausted, "pending faults: %s" % dict(plan.pending)
        assert plan.injected["kill"] >= 2
        assert plan.injected["timeout"] >= 2
        assert plan.injected["corrupt"] >= 1
        assert runtime.faults_injected == sum(plan.injected.values())
        # Failures were recorded and respawns stayed within budget. The
        # two kills and two timeouts each doom at least one in-flight
        # task; a timeout-backdated task that is pre-empted by a later
        # kill on the same worker surfaces as a crash, so assert the
        # aggregate rather than the per-kind split.
        assert runtime.tasks_crashed + runtime.tasks_timed_out >= 4
        assert runtime.frames_rejected >= 1
        assert runtime.results_dropped >= 1
        assert runtime.workers_respawned <= config.respawn_limit
        # The run still used the speculative tier where it survived.
        assert runtime.tasks_dispatched > 0

    def test_env_var_plan_applies(self, monkeypatch):
        workload = build_collatz(count=200)
        machine = workload.program.make_machine()
        machine.run(max_instructions=50_000_000)
        expected = bytes(machine.state.buf)
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           "seed=5,kill=1,start=1,spacing=1")
        config = RuntimeConfig(n_workers=2, inflight_wait_bias=1e9)
        result = RealParallelEngine(workload.program,
                                    config=workload.config,
                                    runtime_config=config).run()
        assert result.final_state == expected
        assert result.runtime.faults_injected == 1
