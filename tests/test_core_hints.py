"""Compiler-hint-assisted recognition (§2.1's hybrid approach)."""

import pytest

from repro.core.config import EngineConfig
from repro.core.recognizer import Recognizer
from repro.loader.image import ProgramHints
from repro.minic import compile_source


@pytest.fixture(scope="module")
def hinted_program():
    return compile_source("""
        int out[300];
        int work(int seed) {
            int j; int v = seed;
            for (j = 0; j < 10; j++) v = v * 3 + j;
            return v;
        }
        int main() {
            int i;
            for (i = 0; i < 300; i++) out[i] = work(i);
            return out[299];
        }
    """, name="hinted")


def test_compiler_emits_hints(hinted_program):
    hints = hinted_program.hints
    assert hints
    assert len(hints.function_entries) == 2  # work, main
    assert len(hints.loop_headers) >= 2
    lo, hi = hinted_program.code_range
    for address in hints.all_addresses():
        assert lo <= address < hi


def test_hinted_recognition_picks_hinted_ip(hinted_program):
    config = EngineConfig(recognizer_window=30_000,
                          min_superstep_instructions=60,
                          use_compiler_hints=True)
    recognized = Recognizer(config).find(hinted_program)
    assert recognized.ip in hinted_program.hints.all_addresses()


def test_hinted_and_unhinted_agree_on_structure(hinted_program):
    base = EngineConfig(recognizer_window=30_000,
                        min_superstep_instructions=60)
    plain = Recognizer(base).find(hinted_program)
    hinted = Recognizer(base.replace(use_compiler_hints=True)).find(
        hinted_program)
    # Both must find a superstep of the same magnitude (one outer
    # iteration); the hinted search just considers far fewer candidates.
    assert hinted.superstep_instructions == pytest.approx(
        plain.superstep_instructions, rel=0.6)


def test_hints_shrink_candidate_set(hinted_program):
    config = EngineConfig(recognizer_window=30_000,
                          min_superstep_instructions=60)
    recognizer = Recognizer(config)
    trace, positions = recognizer._collect_positions(hinted_program)
    candidates = recognizer._candidate_stats(positions, len(trace))
    recognizer.config = config.replace(use_compiler_hints=True)
    filtered = recognizer._hint_filter(hinted_program, candidates)
    assert 0 < len(filtered) < len(candidates)
    assert all(c.ip in hinted_program.hints.all_addresses()
               for c in filtered)


def test_hint_filter_falls_back_when_nothing_survives(hinted_program):
    config = EngineConfig(use_compiler_hints=True)
    recognizer = Recognizer(config)
    candidates = ["sentinel"]

    class FakeProgram:
        hints = ProgramHints(loop_headers=(0x9999,))

    class FakeCandidate:
        ip = 0x1234

    filtered = recognizer._hint_filter(FakeProgram(), [FakeCandidate()])
    assert len(filtered) == 1  # fell back to the unfiltered set
    del candidates


def test_assembled_programs_have_no_hints():
    from repro.asm import assemble
    program = assemble(".entry start\nstart:\n hlt\n")
    assert program.hints is None
    # Hinted recognition on a hint-less program degrades gracefully.
    config = EngineConfig(use_compiler_hints=True, recognizer_window=500,
                          recognizer_max_window_doublings=0)
    recognizer = Recognizer(config)
    assert recognizer._hint_filter(program, ["x"]) == ["x"]
