"""Code-generation details: regressions that exercised real bugs."""

import pytest

from conftest import run_minic
from repro.errors import SegmentationFault
from repro.minic import compile_source


def test_negative_frame_offsets_assemble():
    # [ebp-4] style operands once tripped the assembler's lexer.
    values = run_minic("""
        int main() {
            int a = 1; int b = 2; int c = 3; int d = 4;
            return a + b * 10 + c * 100 + d * 1000;
        }
    """)
    assert values["__return"] == 4321


def test_division_clobbers_are_contained():
    # idiv writes eax and edx; nested expressions must survive.
    values = run_minic("""
        int main() {
            return (100 / 7) + (100 % 7) * 100;
        }
    """)
    assert values["__return"] == 14 + 2 * 100


def test_call_inside_expression_preserves_spills():
    values = run_minic("""
        int seven() { return 7; }
        int main() { return 1000 + seven() * 10 + seven(); }
    """)
    assert values["__return"] == 1077


def test_nested_calls():
    values = run_minic("""
        int add(int a, int b) { return a + b; }
        int main() { return add(add(1, 2), add(3, add(4, 5))); }
    """)
    assert values["__return"] == 15


def test_while_with_compound_condition():
    values = run_minic("""
        int main() {
            int i = 0;
            int j = 100;
            while (i < 10 && j > 95) { i++; j--; }
            return i * 1000 + j;
        }
    """)
    assert values["__return"] == 5 * 1000 + 95


def test_chained_member_and_index():
    values = run_minic("""
        struct inner { int values[4]; };
        struct outer { int pad; struct inner *child; };
        struct inner leaf;
        struct outer root;
        int main() {
            root.child = &leaf;
            root.child->values[2] = 55;
            return root.child->values[2];
        }
    """)
    assert values["__return"] == 55


def test_assignment_value_propagates():
    values = run_minic("""
        int main() {
            int a; int b;
            a = (b = 6) * 2;
            return a * 100 + b;
        }
    """)
    assert values["__return"] == 1206


def test_null_pointer_dereference_faults():
    program = compile_source("""
        int main() {
            int *p = 0;
            return *p;
        }
    """, name="nullderef")
    machine = program.make_machine()
    with pytest.raises(SegmentationFault):
        machine.run(max_instructions=100)


def test_for_with_empty_clauses():
    values = run_minic("""
        int main() {
            int i = 0;
            for (;;) {
                i++;
                if (i >= 5) break;
            }
            return i;
        }
    """)
    assert values["__return"] == 5


def test_comparison_chains_via_temporaries():
    values = run_minic("""
        int main() {
            int x = 5;
            return (1 < 2) + (x == 5) * 10 + (x != 5) * 100;
        }
    """)
    assert values["__return"] == 11


def test_large_immediate_values():
    values = run_minic("""
        int main() {
            int big = 2000000000;
            int neg = -2000000000;
            return (big + neg) + 7;
        }
    """)
    assert values["__return"] == 7


def test_modulo_negative_operands_match_c():
    values = run_minic("""
        int main() {
            return (-7 % 3) * 100 + (7 % -3);
        }
    """)
    assert values["__return"] == (-1) * 100 + 1


def test_arguments_evaluated_before_call():
    values = run_minic("""
        int g;
        int bump() { g++; return g; }
        int pair(int a, int b) { return a * 10 + b; }
        int main() { return pair(bump(), bump()); }
    """, globals_to_read=["g"])
    assert values["g"] == 2
    # cdecl pushes right-to-left: bump() for b runs first.
    assert values["__return"] == 2 * 10 + 1


def test_global_array_of_pointers():
    values = run_minic("""
        int x = 5;
        int y = 9;
        int *table[2];
        int main() {
            table[0] = &x;
            table[1] = &y;
            return *table[0] * 10 + *table[1];
        }
    """)
    assert values["__return"] == 59


def test_deep_recursion_uses_stack():
    values = run_minic("""
        int depth(int n) {
            if (n == 0) return 0;
            return 1 + depth(n - 1);
        }
        int main() { return depth(200); }
    """)
    assert values["__return"] == 200


def test_stack_overflow_faults():
    from repro.errors import MachineError
    program = compile_source("""
        int forever(int n) { return forever(n + 1); }
        int main() { return forever(0); }
    """, name="overflow", stack_size=512)
    machine = program.make_machine()
    # The stack grows down into protected territory: the machine traps
    # (as a code-write or segmentation fault) instead of corrupting.
    with pytest.raises(MachineError):
        machine.run(max_instructions=1_000_000)
