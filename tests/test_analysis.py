"""Analysis drivers: tables, scaling sweeps, weights, reports."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentContext,
    format_series,
    format_table,
    make_table1,
    make_table2,
    make_weight_matrix,
    memoization_curve,
    scaling_sweep,
)
from repro.analysis.scaling import ideal_series
from repro.analysis.training import train_on_boundaries
from repro.analysis.weights import render_weight_matrix
from repro.bench import build_collatz, build_ising


@pytest.fixture(scope="module")
def small_context():
    return ExperimentContext(build_ising(nodes=96, spins=6))


@pytest.fixture(scope="module")
def small_training(small_context):
    return train_on_boundaries(small_context, max_boundaries=80)


class TestTraining:
    def test_boundaries_and_queries(self, small_training):
        assert small_training.boundaries > 20
        assert small_training.mean_query_bits > 0
        assert small_training.relevant_bits

    def test_prediction_stats_meaningful(self, small_training):
        pstats = small_training.prediction_stats
        relevant = small_training.relevant_bits
        actual = pstats.actual_error_rate(relevant)
        equal = pstats.equal_weight_error_rate(relevant)
        hindsight = pstats.hindsight_error_rate(relevant)
        # Table 2's shape: RWMA near hindsight-optimal, equal-weight bad.
        assert hindsight <= actual + 0.15
        assert equal >= actual


class TestTables:
    def test_table1_rows(self, small_context, small_training):
        rows = make_table1({"ising": small_context},
                           training={"ising": small_training})
        row = rows["ising"]
        assert row["total_instructions"] \
            == small_context.record.total_instructions
        assert row["average_jump"] > 0
        assert row["state_vector_bits"] \
            == small_context.workload.program.layout.n_bits
        assert 0 < row["cache_query_bits"] < row["state_vector_bits"]
        assert row["lines_of_code"] > 10
        assert row["unique_ip_values"] > 10

    def test_table2_rows(self, small_context, small_training):
        rows = make_table2({"ising": small_context},
                           training={"ising": small_training})
        row = rows["ising"]
        assert 0.0 <= row["actual_error_rate"] <= 1.0
        assert row["equal_weight_error_rate"] >= row["actual_error_rate"]
        assert row["total_predictions"] > 10
        assert 0.0 <= row["cache_miss_rate_32_cores"] <= 1.0


class TestScalingSweep:
    def test_sweep_shares_work(self, small_context):
        points = scaling_sweep(small_context, [2, 8, 16],
                               collect_prediction_stats=False)
        assert [p.n_cores for p in points] == [2, 8, 16]
        assert points[2].scaling > points[0].scaling
        # The shared memo means later points reuse speculation.
        assert points[2].result.stats.speculations_reused > 0

    def test_oracle_and_cycle_count_variants(self, small_context):
        lasc = scaling_sweep(small_context, [16],
                             collect_prediction_stats=False)[0]
        oracle = scaling_sweep(small_context, [16], oracle=True)[0]
        cycle = scaling_sweep(small_context, [16], cycle_count=True,
                              collect_prediction_stats=False)[0]
        assert oracle.scaling >= lasc.scaling * 0.95
        assert cycle.scaling >= lasc.scaling * 0.98

    def test_bluegene_platform(self, small_context):
        point = scaling_sweep(small_context, [64], platform="bluegene_p",
                              collect_prediction_stats=False)[0]
        assert point.scaling > 1.0

    def test_ideal_series(self):
        points = ideal_series([1, 2, 4])
        assert [p.scaling for p in points] == [1.0, 2.0, 4.0]


class TestMemoizationCurve:
    def test_collatz_curve_shape(self):
        context = ExperimentContext(build_collatz(count=200, memoize=True),
                                    memoization=True)
        result = memoization_curve(context)
        assert result.stats.hits > 0
        assert result.scaling > 1.0
        assert result.timeline[-1].scaling > result.timeline[0].scaling


class TestWeights:
    def test_matrix_normalized_by_algorithm(self, small_training):
        matrix, algorithms = make_weight_matrix(small_training)
        assert algorithms == ["mean", "weatherman", "logistic", "linreg"]
        assert matrix.shape[0] == 4
        sums = matrix.sum(axis=0)
        assert np.allclose(sums, 1.0)

    def test_render(self, small_training):
        matrix, algorithms = make_weight_matrix(small_training)
        text = render_weight_matrix(matrix, algorithms)
        assert "linreg" in text
        assert text.count("\n") == 3


class TestReport:
    def test_format_table(self):
        rows = {"ising": {"a": 1, "b": 2.5}, "2mm": {"a": 10, "b": 0.25}}
        text = format_table(rows, title="T")
        assert "ising" in text and "2mm" in text
        assert "2.5" in text and "0.25" in text

    def test_format_series(self):
        series = {
            "ideal": ideal_series([1, 2]),
            "lasc": ideal_series([2]),
        }
        text = format_series(series)
        assert "ideal" in text and "lasc" in text
        assert "-" in text  # missing point rendered as dash
