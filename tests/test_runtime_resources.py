"""Resource governance: probes, budgets, admission verdicts, and the
degradation ladder's runtime rungs.

Three layers under test. The :mod:`repro.runtime.resources` unit layer
(is_enospc, the shm-backing-dir probe, env-tunable floors, rlimit
plumbing, the :class:`ResourceGovernor` verdicts). The pool layer: a
``worker_oom`` chaos fault is *contained* — the worker survives, the
task fails with a structured ``oom:`` fault and an incident record.
And the ledger layer (satellite audit): the shm transport's physical
byte counters must reconcile with the logical shipped-bytes counter no
matter how pushes interleave with ring-full and forced-inline
fallbacks — a property test drives the real accounting seam.
"""

import errno
import os

import pytest

from repro.bench import build_collatz
from repro.runtime import FaultPlan, RealParallelEngine, RuntimeConfig, wire
from repro.runtime import resources
from repro.runtime.pool import TASK_CRASHED, TASK_FAILED, WorkerPool
from repro.runtime.resources import ResourceGovernor
from repro.runtime.shm import create_ring, shm_available
from repro.runtime.stats import RuntimeStats


class TestEnospc:
    def test_enospc_and_edquot_count(self):
        assert resources.is_enospc(OSError(errno.ENOSPC, "full"))
        if hasattr(errno, "EDQUOT"):
            assert resources.is_enospc(OSError(errno.EDQUOT, "quota"))

    def test_other_errors_do_not(self):
        assert not resources.is_enospc(OSError(errno.EACCES, "denied"))
        assert not resources.is_enospc(ValueError("not even an OSError"))


class TestProbes:
    def test_shm_backing_dir_exists(self):
        path = resources.shm_backing_dir()
        assert os.path.isdir(path)

    def test_shm_backing_dir_is_cached(self):
        assert resources.shm_backing_dir() is resources.shm_backing_dir()

    @pytest.mark.skipif(not shm_available(), reason="no shared_memory")
    def test_backing_dir_really_backs_segments(self):
        # The probe's whole point: a fresh segment's file appears there.
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(create=True, size=1)
        try:
            assert os.path.exists(
                os.path.join(resources.shm_backing_dir(), seg.name))
        finally:
            seg.close()
            seg.unlink()

    def test_headroom_probe_returns_bytes_or_none(self):
        headroom = resources.shm_headroom_bytes()
        assert headroom is None or headroom >= 0

    def test_headroom_probe_failure_is_none_not_zero(self):
        # "Cannot probe" must read as "fine", never as "empty".
        assert resources.shm_headroom_bytes("/no/such/fs/anywhere") is None

    def test_disk_free_walks_up_to_existing_parent(self):
        free = resources.disk_free_bytes("/tmp/does/not/exist/yet")
        assert free is not None and free >= 0

    def test_fd_headroom_measures_something(self):
        headroom = resources.fd_headroom()
        assert headroom is None or isinstance(headroom, int)


class TestEnvDefaults:
    def test_env_overrides_apply(self, monkeypatch):
        monkeypatch.setenv(resources.ENV_SHM_HEADROOM, "1234")
        monkeypatch.setenv(resources.ENV_DISK_FLOOR, "5678")
        monkeypatch.setenv(resources.ENV_FD_HEADROOM, "9")
        monkeypatch.setenv(resources.ENV_MAX_QUEUED, "3")
        assert resources.default_shm_headroom_bytes() == 1234
        assert resources.default_disk_floor_bytes() == 5678
        assert resources.default_fd_headroom() == 9
        assert resources.default_max_queued_jobs() == 3

    def test_bad_and_empty_values_fall_back(self, monkeypatch):
        monkeypatch.setenv(resources.ENV_FD_HEADROOM, "not-a-number")
        assert resources.default_fd_headroom() == \
            resources.DEFAULT_FD_HEADROOM
        monkeypatch.setenv(resources.ENV_FD_HEADROOM, "")
        assert resources.default_fd_headroom() == \
            resources.DEFAULT_FD_HEADROOM

    def test_worker_rlimit_default_unlimited(self, monkeypatch):
        monkeypatch.delenv(resources.ENV_WORKER_RLIMIT_AS, raising=False)
        assert resources.default_worker_rlimit_as() is None
        monkeypatch.setenv(resources.ENV_WORKER_RLIMIT_AS, "0")
        assert resources.default_worker_rlimit_as() is None
        monkeypatch.setenv(resources.ENV_WORKER_RLIMIT_AS, str(1 << 30))
        assert resources.default_worker_rlimit_as() == 1 << 30

    def test_config_flows_env_rlimit_to_workers(self, monkeypatch):
        monkeypatch.setenv(resources.ENV_WORKER_RLIMIT_AS, str(1 << 31))
        assert RuntimeConfig().worker_rlimit_as_bytes == 1 << 31
        monkeypatch.delenv(resources.ENV_WORKER_RLIMIT_AS)
        assert RuntimeConfig().worker_rlimit_as_bytes is None
        assert RuntimeConfig(
            worker_rlimit_as_bytes=1 << 32).worker_rlimit_as_bytes == 1 << 32


class TestRlimitPlumbing:
    def test_apply_none_is_noop(self):
        assert resources.apply_worker_rlimit(None) is None
        assert resources.apply_worker_rlimit(0) is None

    def test_apply_and_restore_round_trip(self):
        saved = resources.current_rlimit_as()
        if saved is None:
            pytest.skip("RLIMIT_AS not readable here")
        # A terabyte cap cannot bite this test process; what matters is
        # that the soft limit moves and restores.
        applied = resources.apply_worker_rlimit(1 << 40)
        try:
            if applied is None:
                pytest.skip("RLIMIT_AS not settable here")
            soft, hard = resources.current_rlimit_as()
            assert soft == applied[0]
            assert hard == saved[1]  # the hard limit is never touched
        finally:
            resources.restore_rlimit_as(saved)
        assert resources.current_rlimit_as()[0] == saved[0]


def _quiet_governor(**kwargs):
    """A governor whose probes all report plenty, unless overridden."""
    defaults = dict(shm_headroom_floor=1 << 20, disk_floor_bytes=1 << 20,
                    fd_headroom_floor=16, max_queued_jobs=8,
                    disk_path="/tmp",
                    shm_probe=lambda path=None: 1 << 40,
                    disk_probe=lambda path: 1 << 40,
                    fd_probe=lambda: 10_000)
    defaults.update(kwargs)
    return ResourceGovernor(**defaults)


class TestResourceGovernor:
    def test_admits_when_nothing_is_exhausted(self):
        governor = _quiet_governor()
        assert governor.admission_reason(queued_jobs=0) is None
        assert governor.admissions == 1 and governor.sheds == 0

    def test_sheds_on_queue_bound(self):
        governor = _quiet_governor(max_queued_jobs=2)
        assert governor.admission_reason(queued_jobs=2) == \
            "queue-bound (2 queued)"
        assert governor.pressure_events["queue"] == 1
        assert governor.sheds == 1

    def test_sheds_on_fd_headroom(self):
        governor = _quiet_governor(fd_probe=lambda: 3)
        assert governor.admission_reason() == "fd-headroom"
        assert governor.pressure_events["fd"] == 1

    def test_sheds_on_shm_headroom(self):
        governor = _quiet_governor(shm_probe=lambda path=None: 100)
        assert governor.admission_reason() == "shm-headroom"
        assert governor.pressure_events["shm"] == 1

    def test_sheds_on_disk_floor(self):
        governor = _quiet_governor(disk_probe=lambda path: 100)
        assert governor.admission_reason() == "disk-floor"
        assert governor.pressure_events["disk"] == 1

    def test_zero_floor_disables_check(self):
        governor = _quiet_governor(fd_headroom_floor=0,
                                   shm_headroom_floor=0,
                                   disk_floor_bytes=0, max_queued_jobs=0,
                                   shm_probe=lambda path=None: 0,
                                   disk_probe=lambda path: 0,
                                   fd_probe=lambda: 0)
        assert governor.admission_reason(queued_jobs=10 ** 6) is None

    def test_probe_failure_is_not_pressure(self):
        governor = _quiet_governor(shm_probe=lambda path=None: None,
                                   disk_probe=lambda path: None,
                                   fd_probe=lambda: None)
        assert governor.admission_reason() is None

    def test_no_disk_path_skips_disk_check(self):
        governor = _quiet_governor(disk_path=None,
                                   disk_probe=lambda path: 0)
        assert governor.admission_reason() is None

    def test_force_pressure_is_consumed_exactly_n_times(self):
        governor = _quiet_governor()
        governor.force_pressure("fd", 2)
        assert governor.admission_reason() == "fd-headroom"
        assert governor.admission_reason() == "fd-headroom"
        assert governor.admission_reason() is None
        assert governor.sheds == 2 and governor.admissions == 1

    def test_force_pressure_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            _quiet_governor().force_pressure("plutonium")

    def test_checks_run_cheapest_first(self):
        # Queue and fd both exhausted: queue wins and fd is not charged.
        governor = _quiet_governor(max_queued_jobs=1, fd_probe=lambda: 0)
        governor.admission_reason(queued_jobs=5)
        assert governor.pressure_events["queue"] == 1
        assert governor.pressure_events["fd"] == 0

    def test_stats_dict_shape(self):
        governor = _quiet_governor()
        governor.admission_reason()
        stats = governor.stats_dict()
        assert stats["floors"]["max_queued_jobs"] == 8
        assert stats["admissions"] == 1
        assert set(stats["pressure_events"]) == set(
            resources.PRESSURE_KINDS)
        assert "shm_headroom_bytes" in stats["probes"]


@pytest.fixture(scope="module")
def loop_program():
    from repro.asm import assemble
    return assemble("""
        .entry start
        start:
            mov eax, 0
        top:
            load ecx, [counter]
            add ecx, 7
            store [counter], ecx
            inc eax
            cmp eax, 40
            jl top
            hlt
        .data
        counter: .word 0
    """, name="resources-loop")


def _boundary_state(program):
    machine = program.make_machine()
    top = program.symbol("top")
    machine.run(max_instructions=100_000, break_ips=frozenset((top,)))
    return top, bytes(machine.state.buf)


def _drain_one(pool, deadline_seconds=20.0):
    import time
    outcomes = []
    deadline = time.monotonic() + deadline_seconds
    while not outcomes and time.monotonic() < deadline:
        outcomes.extend(pool.poll(timeout=0.2))
    assert outcomes, "pool produced no outcome within the deadline"
    return outcomes


class TestWorkerOomContainment:
    def test_oom_fault_is_contained_not_fatal(self, loop_program):
        rip, start = _boundary_state(loop_program)
        plan = FaultPlan(seed=3, worker_ooms=1, start_after=0, spacing=1)
        config = RuntimeConfig(n_workers=1, fault_plan=plan)
        with WorkerPool(loop_program, config) as pool:
            pool.submit(rip, 1, 10_000, start, meta="squeezed")
            assert plan.injected == {"worker_oom": 1}
            outcomes = _drain_one(pool)
            first = outcomes[0]
            # The surgical outcome is a contained MemoryError (worker
            # alive, structured incident); a platform where the rlimit
            # clamp lands mid-allocation instead produces the crash
            # path — either way the fault never escapes the slot.
            assert first.status in (TASK_FAILED, TASK_CRASHED)
            if first.status == TASK_FAILED:
                assert first.fault and first.fault.startswith("oom:")
                assert pool.stats.tasks_oom == 1
                incident = pool.stats.incidents[-1]
                assert incident["kind"] == "worker_oom"
                assert incident["rip"] == rip
            # The slot healed: the same pool serves the next task.
            pool.submit(rip, 1, 10_000, start, meta="after")
            after = _drain_one(pool)
            assert after[0].task.meta == "after"
            assert after[0].ok

    @pytest.mark.skipif(not shm_available(), reason="no shared_memory")
    def test_shm_full_fault_degrades_to_inline(self, loop_program):
        rip, start = _boundary_state(loop_program)
        plan = FaultPlan(seed=5, shm_fulls=1, start_after=0, spacing=1)
        config = RuntimeConfig(n_workers=1, transport="shm",
                               fault_plan=plan)
        with WorkerPool(loop_program, config) as pool:
            pool.submit(rip, 1, 10_000, start, meta="inline")
            assert plan.injected == {"shm_full": 1}
            assert pool.stats.shm_fallbacks == 1
            assert pool.stats.shm_fallback_bytes > 0
            outcomes = _drain_one(pool)
            # Pressure degraded the transport, never the answer.
            assert outcomes[0].ok


class _Slot:
    """Just enough worker state for the dispatch-encoding seam."""

    def __init__(self, ring):
        self.task_ring = ring
        self.base_state = None
        self.epoch = 0


def _ledger_pool():
    pool = WorkerPool.__new__(WorkerPool)
    pool.stats = RuntimeStats()
    return pool


def _ledger_reconciles(stats):
    return stats.state_bytes_shipped == \
        stats.shm_bytes_written + stats.shm_fallback_bytes


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - bare environments
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
@pytest.mark.skipif(not shm_available(), reason="no shared_memory")
class TestShmLedgerProperty:
    """Satellite audit: physical vs logical transport ledgers.

    Drives the *real* :meth:`WorkerPool._encode_task_shm` accounting
    seam with a real ring but no worker processes. Nothing ever drains
    the ring, so pushes march through fit → ring-full → fallback;
    forced-inline (the chaos ``shm_full`` shape) and oversized blobs
    interleave. After any such history the invariant must hold:
    ``state_bytes_shipped == shm_bytes_written + shm_fallback_bytes``.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        capacity=st.integers(min_value=64, max_value=2048),
        tasks=st.lists(
            st.tuples(st.binary(min_size=1, max_size=3000),
                      st.booleans()),
            min_size=1, max_size=12),
    )
    def test_ledgers_reconcile(self, capacity, tasks):
        pool = _ledger_pool()
        ring = create_ring(capacity)
        slot = _Slot(ring)
        try:
            for task_id, (state, force_inline) in enumerate(tasks):
                WorkerPool._encode_task_shm(
                    pool, slot, task_id, 0x40, 1, 1000, state,
                    flags=0, force_inline=force_inline)
                # Mirror submit(): a sent task commits the delta base.
                slot.base_state = state
                slot.epoch += 1
                assert _ledger_reconciles(pool.stats)
            stats = pool.stats
            forced = sum(1 for __, inline in tasks if inline)
            assert stats.shm_fallbacks >= forced
            assert stats.states_delta + stats.states_full == len(tasks)
            # Physical ring occupancy never exceeds what the ledger
            # says was written (releases never happen here).
            assert ring.used_bytes() <= stats.shm_bytes_written
        finally:
            ring.close()
            ring.unlink(force=True)

    def test_forced_inline_never_touches_the_ring(self):
        pool = _ledger_pool()
        ring = create_ring(4096)
        slot = _Slot(ring)
        try:
            WorkerPool._encode_task_shm(pool, slot, 0, 0x40, 1, 1000,
                                        b"x" * 256, flags=0,
                                        force_inline=True)
            assert pool.stats.shm_bytes_written == 0
            assert pool.stats.shm_fallbacks == 1
            assert ring.used_bytes() == 0
            assert _ledger_reconciles(pool.stats)
        finally:
            ring.close()
            ring.unlink(force=True)


#: The resource-tier acceptance schedule: ring pressure plus contained
#: OOMs during one run, all while the answer stays byte-identical.
RESOURCE_PLAN = dict(shm_fulls=2, worker_ooms=1, start_after=1, spacing=1)


class TestResourceChaosDifferential:
    @pytest.mark.parametrize("seed", [7, 23])
    def test_byte_identical_under_resource_faults(self, seed):
        if not shm_available():
            pytest.skip("no shared_memory")
        workload = build_collatz(count=250)
        machine = workload.program.make_machine()
        machine.run(max_instructions=50_000_000)
        assert machine.halted
        expected = bytes(machine.state.buf)

        plan = FaultPlan(seed=seed, **RESOURCE_PLAN)
        config = RuntimeConfig(n_workers=3, transport="shm",
                               inflight_wait_bias=1e9, fault_plan=plan)
        result = RealParallelEngine(workload.program,
                                    config=workload.config,
                                    runtime_config=config).run()
        runtime = result.runtime

        assert result.halted
        assert result.final_state == expected
        assert plan.exhausted, "pending faults: %s" % dict(plan.pending)
        assert plan.injected["shm_full"] == 2
        assert plan.injected["worker_oom"] == 1
        # Each forced shm_full degraded that dispatch to inline.
        assert runtime.shm_fallbacks >= 2
        # With every ring allocated, the transport ledgers reconcile
        # (a pipe-degraded worker ships outside the shm ledger).
        if runtime.shm_alloc_failures == 0:
            assert _ledger_reconciles(runtime)
