"""Excitation tracking: target discovery, projection, materialization."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.excitation import ExcitationTracker
from repro.errors import EngineError


def make_tracker(warmup=3, growth_batch=2, **kwargs):
    config = EngineConfig(warmup_observations=warmup,
                          growth_batch_observations=growth_batch, **kwargs)
    return ExcitationTracker(None, config)


def states_with_counter(n, size=64, offset=16, start=0):
    """State sequence where one word counts up."""
    out = []
    for i in range(n):
        buf = bytearray(size)
        buf[offset:offset + 4] = (start + i).to_bytes(4, "little")
        out.append(bytes(buf))
    return out


def test_warmup_returns_none():
    tracker = make_tracker(warmup=3)
    for buf in states_with_counter(3):
        assert tracker.observe(buf) is None
    assert not tracker.frozen


def test_freezes_after_warmup_with_changed_word():
    tracker = make_tracker(warmup=3)
    views = [tracker.observe(buf) for buf in states_with_counter(6)]
    assert views[3] is not None
    assert tracker.frozen
    assert tracker.target_words.tolist() == [16]
    assert views[3].word_values.tolist() == [3]


def test_no_changes_keeps_warming():
    tracker = make_tracker(warmup=2)
    constant = bytes(64)
    for __ in range(5):
        assert tracker.observe(constant) is None


def test_bits_match_word_values():
    tracker = make_tracker()
    view = None
    for buf in states_with_counter(6, start=4):
        view = tracker.observe(buf) or view
    packed = np.packbits(view.bits, bitorder="little").view("<u4")
    assert packed.tolist() == view.word_values.tolist()


def test_growth_appends_and_bumps_version():
    tracker = make_tracker(warmup=2, growth_batch=2)
    seq = states_with_counter(4)
    for buf in seq:
        tracker.observe(buf)
    v0 = tracker.version
    # A new byte (word 32) starts changing after freeze.
    later = []
    for i in range(6):
        buf = bytearray(64)
        buf[16:20] = (4 + i).to_bytes(4, "little")
        buf[32] = i % 3
        later.append(bytes(buf))
    for buf in later:
        tracker.observe(buf)
    assert tracker.version > v0
    assert tracker.target_words.tolist() == [16, 32]  # appended, not sorted in


def test_growth_disabled():
    tracker = make_tracker(warmup=2, grow_targets=False)
    for buf in states_with_counter(4):
        tracker.observe(buf)
    buf = bytearray(64)
    buf[32] = 9
    tracker.observe(bytes(buf))
    tracker.observe(bytes(64))
    assert tracker.target_words.tolist() == [16]


def test_materialize_overwrites_only_targets():
    tracker = make_tracker()
    for buf in states_with_counter(6):
        tracker.observe(buf)
    base = bytearray(64)
    base[0] = 0xAA  # non-target byte
    out = tracker.materialize(bytes(base), np.array([99], dtype=np.uint32))
    assert out[0] == 0xAA
    assert int.from_bytes(out[16:20], "little") == 99


def test_view_from_bits_and_words_agree():
    tracker = make_tracker()
    for buf in states_with_counter(6):
        tracker.observe(buf)
    words = np.array([0x01020304], dtype=np.uint32)
    v1 = tracker.view_from_words(words)
    v2 = tracker.view_from_bits(v1.bits)
    assert v2.word_values.tolist() == words.tolist()
    assert v1.digest() == v2.digest()


def test_view_size_mismatch_rejected():
    tracker = make_tracker()
    for buf in states_with_counter(6):
        tracker.observe(buf)
    with pytest.raises(EngineError):
        tracker.view_from_words(np.zeros(5, dtype=np.uint32))


def test_digest_distinguishes_values_and_versions():
    tracker = make_tracker()
    for buf in states_with_counter(6):
        tracker.observe(buf)
    a = tracker.words_digest(np.array([1], dtype=np.uint32))
    b = tracker.words_digest(np.array([2], dtype=np.uint32))
    assert a != b


def test_excited_bit_count():
    tracker = make_tracker()
    for buf in states_with_counter(6):
        tracker.observe(buf)
    # Counter 0..5: bits 0,1,2 of the word changed at some point.
    assert 2 <= tracker.excited_bit_count <= 3
    assert tracker.excited_byte_count == 1


def test_reset_continuity_suppresses_diff():
    tracker = make_tracker(warmup=2, growth_batch=1)
    for buf in states_with_counter(5):
        tracker.observe(buf)
    tracker.reset_continuity()
    jump = bytearray(64)
    jump[40] = 77  # wildly different state
    tracker.observe(bytes(jump))
    tracker.observe(bytes(jump))
    # The discontinuous diff was not recorded as an excitation.
    assert 40 not in [w for w in tracker.target_words.tolist()]
