"""Binary delta codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError
from repro.machine.diff import (
    apply_delta,
    delta_size_bits,
    diff_runs,
    encode_delta,
)


def test_identical_buffers_have_empty_delta():
    buf = bytes(100)
    delta = encode_delta(buf, buf)
    assert len(delta) == 1  # just the zero run count
    assert apply_delta(buf, delta) == bytearray(buf)


def test_single_change():
    old = bytearray(64)
    new = bytearray(64)
    new[10] = 0xAB
    assert diff_runs(old, new) == [(10, b"\xab")]
    assert apply_delta(old, encode_delta(old, new)) == new


def test_nearby_changes_merge():
    old = bytearray(64)
    new = bytearray(64)
    new[10] = 1
    new[13] = 2  # gap of 2 <= MERGE_GAP
    runs = diff_runs(old, new)
    assert len(runs) == 1
    assert runs[0][0] == 10


def test_distant_changes_stay_separate():
    old = bytearray(64)
    new = bytearray(64)
    new[1] = 1
    new[40] = 2
    assert len(diff_runs(old, new)) == 2


def test_length_mismatch_rejected():
    with pytest.raises(MachineError):
        encode_delta(bytes(4), bytes(5))


def test_trailing_garbage_rejected():
    old = bytes(16)
    delta = encode_delta(old, old) + b"\x01"
    with pytest.raises(MachineError):
        apply_delta(old, delta)


def test_delta_size_scales_with_changes():
    old = bytes(10_000)
    small = bytearray(old)
    small[5] = 1
    big = bytearray(old)
    for i in range(0, 10_000, 100):
        big[i] = 1
    assert delta_size_bits(old, small) < delta_size_bits(old, big)
    assert delta_size_bits(old, small) < len(old) * 8 // 100


@given(st.data())
def test_roundtrip_property(data):
    n = data.draw(st.integers(1, 256))
    old = bytes(data.draw(st.binary(min_size=n, max_size=n)))
    new = bytes(data.draw(st.binary(min_size=n, max_size=n)))
    delta = encode_delta(old, new)
    assert apply_delta(old, delta) == bytearray(new)


@given(st.data())
def test_sparse_delta_smaller_than_full_state(data):
    n = 512
    old = bytes(n)
    new = bytearray(old)
    positions = data.draw(st.lists(st.integers(0, n - 1), min_size=1,
                                   max_size=5, unique=True))
    for pos in positions:
        new[pos] = 0xFF
    assert len(encode_delta(old, bytes(new))) < n // 4
