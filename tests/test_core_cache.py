"""Trajectory cache: entries, matching, fast-forward soundness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.core.speculation import run_speculation
from repro.core.trajectory_cache import CacheEntry, TrajectoryCache
from repro.machine import DepVector


def build_loop_program(limit=50):
    return assemble("""
        .entry start
        start:
            mov eax, 0
        top:
            load ecx, [counter]
            add ecx, 3
            store [counter], ecx
            inc eax
            cmp eax, %d
            jl top
            hlt
        .data
        counter: .word 0
    """ % limit, name="loop")


def make_entry_from_superstep(program, crossings=1):
    """Run one superstep at 'top' and capture its cache entry."""
    machine = program.make_machine()
    top = program.symbol("top")
    machine.run(max_instructions=10_000, break_ips=frozenset((top,)))
    start = bytes(machine.state.buf)
    result = run_speculation(machine.context, start, top, crossings, 10_000)
    assert result.ok
    return machine, start, result.entry


class TestEntryConstruction:
    def test_sparse_sides(self):
        program = build_loop_program()
        __, __, entry = make_entry_from_superstep(program)
        # Deps and writes are tiny fractions of the state vector.
        assert 0 < len(entry.start_indices) < 64
        assert 0 < len(entry.end_indices) < 64
        assert entry.length == 6  # one loop iteration (load..jl)
        assert entry.size_bytes() > 0

    def test_from_execution_classifies_statuses(self):
        dep = DepVector(8)
        dep.buf[1] = 1  # READ
        dep.buf[2] = 2  # WRITTEN
        dep.buf[3] = 3  # WAR
        start = bytes([0, 10, 20, 30, 0, 0, 0, 0])
        end = bytes([0, 10, 99, 77, 0, 0, 0, 0])
        entry = CacheEntry.from_execution(0x40, dep, start, end, length=9)
        assert entry.start_indices.tolist() == [1, 3]
        assert entry.start_values.tolist() == [10, 30]
        assert entry.end_indices.tolist() == [2, 3]
        assert entry.end_values.tolist() == [99, 77]


class TestFastForwardSoundness:
    def test_apply_equals_execution(self):
        """The core correctness property: fast-forwarding via a cache
        entry produces exactly the state sequential execution produces."""
        program = build_loop_program()
        machine, start, entry = make_entry_from_superstep(program)
        # Execute for real.
        executed = program.make_machine()
        top = program.symbol("top")
        executed.run(max_instructions=10_000, break_ips=frozenset((top,)))
        executed.run(max_instructions=10_000, break_ips=frozenset((top,)))
        # Fast-forward the snapshot.
        forwarded = bytearray(start)
        assert entry.matches(forwarded)
        entry.apply(forwarded)
        assert bytes(forwarded) == bytes(executed.state.buf)

    def test_apply_repeatedly_follows_trajectory(self):
        program = build_loop_program()
        top = program.symbol("top")
        machine = program.make_machine()
        machine.run(max_instructions=10_000, break_ips=frozenset((top,)))
        cache = TrajectoryCache()
        # Build entries for several consecutive supersteps by running a
        # speculation from each boundary of a reference machine.
        ref = program.make_machine()
        ref.run(max_instructions=10_000, break_ips=frozenset((top,)))
        for __ in range(5):
            result = run_speculation(ref.context, bytes(ref.state.buf),
                                     top, 1, 10_000)
            cache.insert(result.entry)
            ref.run(max_instructions=10_000, break_ips=frozenset((top,)))
        # Now fast-forward the main machine five times via lookups.
        jumps = 0
        while True:
            entry = cache.lookup(top, machine.state.buf)
            if entry is None:
                break
            entry.apply(machine.state.buf)
            jumps += 1
        assert jumps == 5
        assert bytes(machine.state.buf) == bytes(ref.state.buf)

    def test_mismatched_state_does_not_match(self):
        program = build_loop_program()
        __, start, entry = make_entry_from_superstep(program)
        wrong = bytearray(start)
        counter_index = program.layout.vec_index(program.symbol("counter"))
        wrong[counter_index] ^= 0xFF
        assert not entry.matches(wrong)


class TestCacheIndex:
    def _entry(self, rip, start_idx, start_val, length, ready=0.0):
        return CacheEntry(
            rip,
            np.array(start_idx, dtype=np.int64),
            np.array(start_val, dtype=np.uint8),
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.uint8),
            length, ready_time=ready)

    def test_lookup_longest(self):
        cache = TrajectoryCache()
        buf = bytearray(16)
        buf[4] = 9
        cache.insert(self._entry(0x40, [4], [9], length=10))
        cache.insert(self._entry(0x40, [4], [9], length=30))
        entry = cache.lookup(0x40, buf)
        assert entry.length == 30

    def test_lookup_respects_rip(self):
        cache = TrajectoryCache()
        buf = bytearray(16)
        cache.insert(self._entry(0x40, [4], [0], length=10))
        assert cache.lookup(0x48, buf) is None

    def test_ready_time_filtering(self):
        cache = TrajectoryCache()
        buf = bytearray(16)
        cache.insert(self._entry(0x40, [4], [0], length=10, ready=5.0))
        entry, late = cache.lookup_classified(0x40, buf, now=1.0)
        assert entry is None and late
        entry, late = cache.lookup_classified(0x40, buf, now=6.0)
        assert entry is not None and not late

    def test_no_match_is_not_late(self):
        cache = TrajectoryCache()
        buf = bytearray(16)
        buf[4] = 1
        cache.insert(self._entry(0x40, [4], [2], length=10, ready=5.0))
        entry, late = cache.lookup_classified(0x40, buf, now=0.0)
        assert entry is None and not late

    def test_eviction_under_capacity(self):
        tiny = self._entry(0x40, [4], [0], length=1)
        cache = TrajectoryCache(capacity_bytes=tiny.size_bytes() * 3)
        for i in range(10):
            cache.insert(self._entry(0x40, [4], [i], length=1))
        assert cache.n_evicted > 0
        assert cache.total_bytes <= tiny.size_bytes() * 3
        assert len(cache) == cache.n_inserted - cache.n_evicted

    def test_with_ready_time_clones(self):
        entry = self._entry(0x40, [4], [0], length=10)
        later = entry.with_ready_time(9.0)
        assert later.ready_time == 9.0
        assert entry.ready_time == 0.0
        assert later.length == entry.length


@settings(max_examples=30, deadline=None)
@given(limit=st.integers(3, 30), jump_at=st.integers(1, 2))
def test_fast_forward_equivalence_property(limit, jump_at):
    """From any boundary, (apply entry) == (execute superstep)."""
    program = build_loop_program(limit=limit)
    top = program.symbol("top")
    machine = program.make_machine()
    for __ in range(jump_at):
        machine.run(max_instructions=10_000, break_ips=frozenset((top,)))
    snapshot = bytes(machine.state.buf)
    result = run_speculation(machine.context, snapshot, top, 1, 10_000)
    machine.run(max_instructions=10_000, break_ips=frozenset((top,)))
    truth = bytes(machine.state.buf)
    forwarded = bytearray(snapshot)
    assert result.entry.matches(forwarded)
    result.entry.apply(forwarded)
    assert bytes(forwarded) == truth
