"""Order-dependence regression: pollution must not cross tests.

PR 8 made tier-1 green for the *full* suite by fixing the audit flake
at its source (taints are now injected at splice time, not at result
arrival — see ``repro.runtime.engine``) and by adding the autouse
isolation fixture in ``conftest.py``. This file keeps both honest:

* an in-suite polluter/checker pair proves the fixture restores the
  ``REPRO_*`` environment after a test that "forgets" to clean up;
* a subprocess regression runs the once-flaky CLI audit tests directly
  after the polluter, in both orders, and they must pass either way.
"""

import os
import subprocess
import sys

import pytest

#: The env knobs the runtime actually reads — the highest-blast-radius
#: pollution a careless test could leave behind (a leaked fault plan
#: injects taints into every later real-backend run).
_POLLUTION = {
    "REPRO_FAULT_PLAN": "seed=99,taint=5",
    "REPRO_VERIFY": "1.0",
    "REPRO_FAST_PATH": "0",
}


def test_pollutes_runtime_env():
    """Deliberate polluter: set runtime env knobs and never clean up.
    The autouse isolation fixture must contain the spill before the
    next test starts."""
    for key, value in _POLLUTION.items():
        os.environ[key] = value


def test_runtime_env_matches_baseline():
    """Runs after the polluter in definition order (trivially green
    under ``--repro-shuffle`` if it happens to run first)."""
    import conftest
    for key in _POLLUTION:
        assert os.environ.get(key) == conftest.REPRO_ENV_BASELINE.get(key)


def _run_pytest(node_ids):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider"]
        + node_ids,
        cwd=root, env=env, capture_output=True, text=True, timeout=540)


@pytest.mark.parametrize("order", ["polluter-first", "audit-first"])
def test_cli_audit_survives_env_pollution(order):
    """The exact tests that used to fail order-dependently, run in a
    fresh interpreter right next to the polluter — both orders must
    exit 0."""
    polluter = ("tests/test_isolation_order.py::"
                "test_pollutes_runtime_env")
    audits = [
        "tests/test_cli.py::test_audit_command_catches_tainted_entries",
        "tests/test_cli.py::test_audit_command_json",
    ]
    node_ids = ([polluter] + audits if order == "polluter-first"
                else audits + [polluter])
    proc = _run_pytest(node_ids)
    assert proc.returncode == 0, proc.stdout + "\n" + proc.stderr
