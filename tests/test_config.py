"""EngineConfig behavior."""

import pytest

from repro.core.config import EngineConfig


def test_defaults_reasonable():
    config = EngineConfig()
    assert config.warmup_observations >= 2
    assert 0 < config.rwma_beta < 1
    assert config.min_superstep_instructions > 0
    assert config.converge_supersteps_charge is None


def test_replace_copies():
    config = EngineConfig()
    other = config.replace(rwma_beta=0.1, seed=9)
    assert other.rwma_beta == 0.1
    assert other.seed == 9
    assert config.rwma_beta != 0.1
    assert other.warmup_observations == config.warmup_observations


def test_replace_rejects_unknown_field():
    with pytest.raises(TypeError):
        EngineConfig().replace(not_a_field=1)


def test_repr_lists_fields():
    text = repr(EngineConfig())
    assert "rwma_beta" in text
    assert "warmup_observations" in text
