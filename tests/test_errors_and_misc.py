"""Error hierarchy and small shared utilities."""

import pytest

from repro import errors
from repro.bench.workload import PAPER_SUPERSTEP_SECONDS, Workload
from repro.minic import compile_source


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("EncodingError", "AssemblerError", "MiniCError",
                     "MachineError", "SegmentationFault",
                     "IllegalInstruction", "CodeWriteError", "LoaderError",
                     "EngineError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_faults_are_machine_errors(self):
        assert issubclass(errors.SegmentationFault, errors.MachineError)
        assert issubclass(errors.IllegalInstruction, errors.MachineError)
        assert issubclass(errors.CodeWriteError, errors.MachineError)

    def test_line_numbers_in_messages(self):
        err = errors.AssemblerError("boom", line=7)
        assert "line 7" in str(err)
        assert err.line == 7
        err = errors.MiniCError("bad", line=3)
        assert "line 3" in str(err)

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            compile_source("int main() { return missing; }")


class TestWorkload:
    def test_paper_superstep_constant(self):
        # 1.2e7 instructions at 2.3 MIPS (Table 1 + §5.3).
        assert PAPER_SUPERSTEP_SECONDS == pytest.approx(1.2e7 / 2.3e6)

    def test_workload_defaults(self):
        program = compile_source("int main() { return 0; }")
        workload = Workload("w", program)
        assert workload.config is not None
        assert workload.params == {}
        assert workload.expected == {}
        assert "w" in repr(workload)
