"""Dependency-vector FSM invariants."""

from hypothesis import given, strategies as st

from repro.machine import (
    DEP_NULL,
    DEP_READ,
    DEP_WAR,
    DEP_WRITTEN,
    DepVector,
)


def test_initially_null():
    dep = DepVector(16)
    assert dep.counts()[DEP_NULL] == 16


def test_read_marks_read():
    dep = DepVector(8)
    dep.mark_read(2, 3)
    assert list(dep.buf[2:5]) == [DEP_READ] * 3
    assert dep.read_indices() == [2, 3, 4]


def test_write_marks_written():
    dep = DepVector(8)
    dep.mark_write(1, 2)
    assert list(dep.buf[1:3]) == [DEP_WRITTEN] * 2
    assert dep.written_indices() == [1, 2]
    assert dep.read_indices() == []


def test_write_after_read_is_war():
    dep = DepVector(4)
    dep.mark_read(0)
    dep.mark_write(0)
    assert dep.buf[0] == DEP_WAR
    # WAR bytes are both dependencies and outputs.
    assert dep.read_indices() == [0]
    assert dep.written_indices() == [0]


def test_read_after_write_stays_written():
    dep = DepVector(4)
    dep.mark_write(0)
    dep.mark_read(0)
    assert dep.buf[0] == DEP_WRITTEN
    assert dep.read_indices() == []


def test_reset():
    dep = DepVector(4)
    dep.mark_read(0)
    dep.mark_write(1)
    dep.reset()
    assert dep.counts()[DEP_NULL] == 4


_FSM_EXPECTED = {
    # (status, op) -> next status
    (DEP_NULL, "r"): DEP_READ,
    (DEP_NULL, "w"): DEP_WRITTEN,
    (DEP_READ, "r"): DEP_READ,
    (DEP_READ, "w"): DEP_WAR,
    (DEP_WRITTEN, "r"): DEP_WRITTEN,
    (DEP_WRITTEN, "w"): DEP_WRITTEN,
    (DEP_WAR, "r"): DEP_WAR,
    (DEP_WAR, "w"): DEP_WAR,
}


@given(ops=st.lists(st.sampled_from("rw"), max_size=12))
def test_fsm_matches_specification(ops):
    dep = DepVector(1)
    expected = DEP_NULL
    for op in ops:
        if op == "r":
            dep.mark_read(0)
        else:
            dep.mark_write(0)
        expected = _FSM_EXPECTED[(expected, op)]
        assert dep.buf[0] == expected


@given(ops=st.lists(st.sampled_from("rw"), min_size=1, max_size=12))
def test_semantics_first_access_determines_dependency(ops):
    """A byte is a dependency iff its first access was a read."""
    dep = DepVector(1)
    for op in ops:
        if op == "r":
            dep.mark_read(0)
        else:
            dep.mark_write(0)
    is_dependency = 0 in dep.read_indices()
    assert is_dependency == (ops[0] == "r")
    is_output = 0 in dep.written_indices()
    assert is_output == ("w" in ops)
