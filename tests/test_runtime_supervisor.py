"""Supervisor: circuit breaking, backoff, readmission, degradation.

All timing uses an injected fake clock, so the breaker/backoff ladder
is tested exactly, without sleeping.
"""

import pytest

from repro.runtime.config import RuntimeConfig
from repro.runtime.stats import RuntimeStats
from repro.runtime.supervisor import (
    QUARANTINE,
    RESPAWN,
    RETIRE,
    Supervisor,
    WorkerHealth,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_supervisor(**overrides):
    config = RuntimeConfig(**overrides)
    clock = FakeClock()
    return Supervisor(config, RuntimeStats(), clock=clock), clock


class TestBreaker:
    def test_respawn_until_threshold_then_quarantine(self):
        sup, __ = make_supervisor(breaker_threshold=3)
        assert sup.note_failure(0, "crash") == RESPAWN
        assert sup.note_failure(0, "crash") == RESPAWN
        assert sup.note_failure(0, "crash") == QUARANTINE
        assert sup.stats.breaker_trips == 1
        assert sup.stats.workers_quarantined == 1
        assert sup.health(0).quarantined

    def test_success_closes_breaker_and_resets_streak(self):
        sup, __ = make_supervisor(breaker_threshold=3)
        sup.note_failure(0, "crash")
        sup.note_failure(0, "timeout")
        sup.note_success(0, duration=0.1)
        record = sup.health(0)
        assert record.consecutive_failures == 0
        assert record.crashes == 1 and record.timeouts == 1
        # The streak restarts from zero: two more failures still respawn.
        assert sup.note_failure(0, "crash") == RESPAWN
        assert sup.note_failure(0, "crash") == RESPAWN
        assert sup.note_failure(0, "crash") == QUARANTINE

    def test_latency_ewma_tracks_durations(self):
        sup, __ = make_supervisor()
        sup.note_success(0, duration=1.0)
        assert sup.health(0).latency_ewma == 1.0
        sup.note_success(0, duration=2.0)
        assert sup.health(0).latency_ewma == pytest.approx(1.3)

    def test_failures_isolated_per_slot(self):
        sup, __ = make_supervisor(breaker_threshold=2)
        sup.note_failure(0, "crash")
        assert sup.note_failure(1, "crash") == RESPAWN
        assert not sup.health(1).quarantined


class TestBackoff:
    def test_exponential_growth_capped(self):
        sup, clock = make_supervisor(
            breaker_threshold=1, quarantine_backoff_seconds=1.0,
            quarantine_backoff_max_seconds=3.0, respawn_limit=100)
        waits = []
        for __ in range(4):
            assert sup.note_failure(0, "crash") == QUARANTINE
            waits.append(sup.health(0).quarantined_until - clock.now)
            clock.advance(waits[-1])
            assert sup.authorize_readmission(0)
        assert waits == [1.0, 2.0, 3.0, 3.0]  # 1, 2, capped, capped

    def test_not_due_before_backoff_expires(self):
        sup, clock = make_supervisor(breaker_threshold=1,
                                     quarantine_backoff_seconds=5.0)
        sup.note_failure(0, "crash")
        assert sup.due_readmissions() == []
        clock.advance(4.99)
        assert sup.due_readmissions() == []
        clock.advance(0.02)
        assert sup.due_readmissions() == [0]


class TestReadmission:
    def test_half_open_one_failure_retrips(self):
        sup, clock = make_supervisor(breaker_threshold=3,
                                     quarantine_backoff_seconds=1.0,
                                     respawn_limit=100)
        for __ in range(3):
            sup.note_failure(0, "crash")
        clock.advance(1.1)
        assert sup.authorize_readmission(0)
        assert sup.stats.workers_readmitted == 1
        assert sup.stats.workers_quarantined == 0
        # Half-open: a single further failure trips the breaker again,
        # and the backoff doubles (trips carried over).
        assert sup.note_failure(0, "crash") == QUARANTINE
        assert sup.health(0).quarantined_until - clock.now \
            == pytest.approx(2.0)

    def test_success_after_readmission_fully_closes(self):
        sup, clock = make_supervisor(breaker_threshold=3,
                                     quarantine_backoff_seconds=1.0,
                                     respawn_limit=100)
        for __ in range(3):
            sup.note_failure(0, "crash")
        clock.advance(1.1)
        sup.authorize_readmission(0)
        sup.note_success(0, duration=0.1)
        assert sup.health(0).trips == 0
        assert sup.note_failure(0, "crash") == RESPAWN

    def test_readmission_spends_respawn_budget(self):
        sup, clock = make_supervisor(breaker_threshold=1,
                                     quarantine_backoff_seconds=1.0,
                                     respawn_limit=1)
        sup.note_failure(0, "crash")
        clock.advance(1.1)
        assert sup.authorize_readmission(0)  # spends the whole budget
        sup.note_failure(0, "crash")
        clock.advance(2.1)
        assert not sup.authorize_readmission(0)  # budget gone: retired
        assert sup.health(0).retired
        assert sup.stats.workers_retired == 1


class TestRetire:
    def test_budget_exhaustion_retires(self):
        sup, __ = make_supervisor(breaker_threshold=10, respawn_limit=2)
        assert sup.note_failure(0, "crash") == RESPAWN
        assert sup.note_failure(1, "crash") == RESPAWN
        assert sup.note_failure(2, "crash") == RETIRE
        assert sup.health(2).retired
        assert sup.stats.workers_retired == 1

    def test_retired_slot_never_readmitted(self):
        sup, clock = make_supervisor(breaker_threshold=10, respawn_limit=0)
        sup.note_failure(0, "crash")
        clock.advance(100.0)
        assert sup.due_readmissions() == []
        assert not sup.authorize_readmission(0)


class TestDegradation:
    def test_below_floor_degrades(self):
        sup, __ = make_supervisor(min_active_workers=2)
        assert sup.speculation_allowed(2)
        assert not sup.speculation_allowed(1)
        assert sup.degraded
        assert sup.stats.pool_degradations == 1
        # Staying degraded does not double-count.
        assert not sup.speculation_allowed(0)
        assert sup.stats.pool_degradations == 1

    def test_reenable_requires_capacity_and_cooldown(self):
        sup, clock = make_supervisor(min_active_workers=2,
                                     degrade_cooldown_seconds=5.0)
        sup.speculation_allowed(1)  # degrade
        # Capacity is back, but the cooldown holds speculation off.
        assert not sup.speculation_allowed(2)
        clock.advance(4.9)
        assert not sup.speculation_allowed(2)
        clock.advance(0.2)
        assert sup.speculation_allowed(2)
        assert not sup.degraded
        assert sup.stats.speculation_reenabled == 1

    def test_flap_during_cooldown_restarts_it(self):
        sup, clock = make_supervisor(min_active_workers=2,
                                     degrade_cooldown_seconds=5.0)
        sup.speculation_allowed(1)
        sup.speculation_allowed(2)  # starts the cooldown
        clock.advance(3.0)
        sup.speculation_allowed(1)  # flapped back below the floor
        clock.advance(3.0)
        # 6s since the first recovery, but the flap reset the clock.
        assert not sup.speculation_allowed(2)
        clock.advance(5.1)
        assert sup.speculation_allowed(2)


class TestHealthSnapshot:
    def test_snapshot_round_trip(self):
        sup, __ = make_supervisor()
        sup.note_success(1, 0.5)
        sup.note_failure(0, "crash")
        snapshot = sup.health_snapshot()
        assert [row["slot"] for row in snapshot] == [0, 1]
        assert snapshot[0]["crashes"] == 1
        assert snapshot[1]["successes"] == 1

    def test_worker_health_repr_states(self):
        record = WorkerHealth(3)
        assert "active" in repr(record)
        record.quarantined_until = 5.0
        assert "quarantined" in repr(record)
        record.retired = True
        assert "retired" in repr(record)
