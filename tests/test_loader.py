"""Program images and initial state materialization."""

import pytest

from repro.asm import assemble
from repro.errors import LoaderError
from repro.isa.registers import Reg
from repro.loader import Program


def test_initial_state_layout(counting_program):
    state = counting_program.initial_state()
    assert state.eip == counting_program.entry
    assert state.get_reg(Reg.ESP) == counting_program.layout.mem_size
    # Code is loaded at code_base.
    assert state.read_bytes(counting_program.code_base, 8) \
        == counting_program.code[:8]


def test_data_follows_code_aligned(counting_program):
    assert counting_program.data_base \
        >= counting_program.code_base + len(counting_program.code)
    assert counting_program.data_base % 16 == 0


def test_code_range_and_counts(counting_program):
    lo, hi = counting_program.code_range
    assert hi - lo == len(counting_program.code)
    assert counting_program.unique_ip_count \
        == len(counting_program.code) // 8


def test_symbol_lookup(counting_program):
    assert counting_program.symbol("result") >= counting_program.data_base
    with pytest.raises(LoaderError):
        counting_program.symbol("missing")


def test_mem_size_override():
    program = assemble("hlt\n", mem_size=65536)
    assert program.layout.mem_size == 65536


def test_mem_size_too_small_rejected():
    with pytest.raises(LoaderError):
        assemble(".data\nbig: .space 8192\n.code\nhlt\n", mem_size=4096)


def test_entry_outside_code_rejected():
    with pytest.raises(LoaderError):
        Program("bad", code=b"\x00" * 8, data=b"", symbols={}, entry=0x999)


def test_unaligned_code_base_rejected():
    with pytest.raises(LoaderError):
        Program("bad", code=b"\x00" * 8, data=b"", symbols={}, entry=0x44,
                code_base=0x44)


def test_machines_are_independent(counting_program):
    a = counting_program.make_machine()
    b = counting_program.make_machine()
    a.run(max_instructions=5)
    assert b.instruction_count == 0
    assert b.state.eip == counting_program.entry
