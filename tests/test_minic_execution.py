"""Mini-C end-to-end: compile and execute, checking computed results.

Each case is a complete program whose observable result (a global or the
return value in EAX) is checked against the value the same C computes.
"""

import pytest

from conftest import run_minic


@pytest.mark.parametrize("expr,expected", [
    ("1 + 2 * 3", 7),
    ("(1 + 2) * 3", 9),
    ("10 / 3", 3),
    ("-10 / 3", -3),  # C truncates toward zero
    ("10 % 3", 1),
    ("-10 % 3", -1),
    ("7 - 10", -3),
    ("1 << 10", 1024),
    ("-8 >> 1", -4),  # arithmetic shift
    ("0xF0 & 0x3C", 0x30),
    ("0xF0 | 0x0F", 0xFF),
    ("0xFF ^ 0x0F", 0xF0),
    ("~0", -1),
    ("!5", 0),
    ("!0", 1),
    ("-(3)", -3),
    ("1 < 2", 1),
    ("2 <= 1", 0),
    ("3 > 3", 0),
    ("3 >= 3", 1),
    ("4 == 4", 1),
    ("4 != 4", 0),
    ("1 && 2", 1),
    ("1 && 0", 0),
    ("0 || 3", 1),
    ("0 || 0", 0),
    ("2147483647 + 1", -2147483648),  # wraparound
    ("-2147483648 - 1", 2147483647),
    ("65535 * 65537", -65537 & 0xFFFFFFFF | -(1 << 32) if False else -65537 + (65535 * 65537 + 65537) - (65535*65537) - (-65537)),
])
def test_expression(expr, expected):
    # Normalize the one tricky parametrization artifact above.
    if expr == "65535 * 65537":
        expected = (65535 * 65537) - (1 << 32)
    values = run_minic("int main() { return %s; }" % expr)
    assert values["__return"] == expected


def test_globals_and_initializers():
    values = run_minic("""
        int a = 5;
        int b = -3;
        int arr[4] = {1, 2, 3};
        int out;
        int main() {
            out = a + b + arr[0] + arr[1] + arr[2] + arr[3];
            return out;
        }
    """, globals_to_read=["out"])
    assert values["out"] == 8


def test_while_and_for_loops():
    values = run_minic("""
        int out;
        int main() {
            int i = 0;
            int total = 0;
            while (i < 10) { total += i; i++; }
            for (i = 0; i < 10; i += 2) total += 100;
            out = total;
            return out;
        }
    """, globals_to_read=["out"])
    assert values["out"] == 45 + 500


def test_break_continue():
    values = run_minic("""
        int out;
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                total += i;
            }
            out = total;
            return out;
        }
    """, globals_to_read=["out"])
    assert values["out"] == 1 + 3 + 5 + 7 + 9


def test_nested_loops():
    values = run_minic("""
        int main() {
            int i; int j; int count = 0;
            for (i = 0; i < 5; i++)
                for (j = 0; j <= i; j++)
                    count++;
            return count;
        }
    """)
    assert values["__return"] == 15


def test_recursion_fibonacci():
    values = run_minic("""
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(15); }
    """)
    assert values["__return"] == 610


def test_mutual_recursion():
    values = run_minic("""
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
    """) if False else None
    # Forward declarations are not supported; declare-before-use instead.
    values = run_minic("""
        int is_even(int n) {
            while (n >= 2) n -= 2;
            return n == 0;
        }
        int main() { return is_even(10) * 10 + is_even(7); }
    """)
    assert values["__return"] == 10


def test_pointers_and_address_of():
    values = run_minic("""
        int g;
        void set(int *p, int v) { *p = v; }
        int main() {
            int local = 0;
            set(&g, 41);
            set(&local, 1);
            return g + local;
        }
    """, globals_to_read=["g"])
    assert values["g"] == 41
    assert values["__return"] == 42


def test_pointer_arithmetic():
    values = run_minic("""
        int arr[5] = {10, 20, 30, 40, 50};
        int main() {
            int *p = arr;
            int *q = p + 3;
            return *q + *(p + 1) + (q - p);
        }
    """)
    assert values["__return"] == 40 + 20 + 3


def test_array_write_and_sum():
    values = run_minic("""
        int arr[8];
        int main() {
            int i; int total = 0;
            for (i = 0; i < 8; i++) arr[i] = i * i;
            for (i = 0; i < 8; i++) total += arr[i];
            return total;
        }
    """)
    assert values["__return"] == sum(i * i for i in range(8))


def test_local_array():
    values = run_minic("""
        int main() {
            int buf[4];
            int i;
            for (i = 0; i < 4; i++) buf[i] = i + 1;
            return buf[0] * 1000 + buf[3];
        }
    """)
    assert values["__return"] == 1004


def test_structs_and_linked_list():
    values = run_minic("""
        struct node { int value; struct node *next; };
        struct node pool[5];
        int main() {
            int i;
            struct node *p;
            int total = 0;
            for (i = 0; i < 5; i++) {
                pool[i].value = i * 10;
                if (i + 1 < 5) pool[i].next = &pool[i + 1];
                else pool[i].next = 0;
            }
            p = &pool[0];
            while (p != 0) {
                total += p->value;
                p = p->next;
            }
            return total;
        }
    """)
    assert values["__return"] == 100


def test_struct_member_array():
    values = run_minic("""
        struct rec { int id; int data[3]; };
        struct rec items[2];
        int main() {
            items[1].data[2] = 7;
            items[1].id = 3;
            return items[1].data[2] * 10 + items[1].id;
        }
    """)
    assert values["__return"] == 73


def test_sizeof():
    values = run_minic("""
        struct s { int a; int b[4]; };
        int main() {
            return sizeof(int) + sizeof(struct s) + sizeof(int*) * 100;
        }
    """)
    assert values["__return"] == 4 + 20 + 400


def test_compound_assignment_operators():
    values = run_minic("""
        int main() {
            int x = 100;
            x += 5; x -= 3; x *= 2; x /= 4; x %= 13;
            x <<= 3; x >>= 1; x &= 0xFE; x |= 1; x ^= 2;
            return x;
        }
    """)
    x = 100
    x += 5; x -= 3; x *= 2; x //= 4; x %= 13
    x <<= 3; x >>= 1; x &= 0xFE; x |= 1; x ^= 2
    assert values["__return"] == x


def test_increment_decrement_semantics():
    values = run_minic("""
        int main() {
            int i = 5;
            int a = i++;  // a=5, i=6
            int b = ++i;  // b=7, i=7
            int c = i--;  // c=7, i=6
            int d = --i;  // d=5, i=5
            return a * 1000 + b * 100 + c * 10 + d;
        }
    """)
    assert values["__return"] == 5 * 1000 + 7 * 100 + 7 * 10 + 5


def test_pointer_increment_scales():
    values = run_minic("""
        int arr[3] = {7, 8, 9};
        int main() {
            int *p = arr;
            p++;
            return *p;
        }
    """)
    assert values["__return"] == 8


def test_short_circuit_side_effects():
    values = run_minic("""
        int calls;
        int bump() { calls++; return 1; }
        int main() {
            int r1 = 0 && bump();  // bump not called
            int r2 = 1 || bump();  // bump not called
            int r3 = 1 && bump();  // called
            return calls * 10 + r1 + r2 + r3;
        }
    """, globals_to_read=["calls"])
    assert values["calls"] == 1
    assert values["__return"] == 12  # calls*10 + (0) + (1) + (1)


def test_function_arguments_order():
    values = run_minic("""
        int f(int a, int b, int c) { return a * 100 + b * 10 + c; }
        int main() { return f(1, 2, 3); }
    """)
    assert values["__return"] == 123


def test_void_function():
    values = run_minic("""
        int g;
        void set_g(int v) { g = v; }
        void nothing() { return; }
        int main() { set_g(9); nothing(); return g; }
    """, globals_to_read=["g"])
    assert values["g"] == 9


def test_comparison_of_pointers():
    values = run_minic("""
        int arr[4];
        int main() {
            int *a = &arr[1];
            int *b = &arr[2];
            return (a < b) * 8 + (a <= b) * 4 + (a > b) * 2 + (a >= b);
        }
    """)
    assert values["__return"] == 12


def test_lcg_wraparound_arithmetic():
    values = run_minic("""
        int state = 12345;
        int next() {
            state = state * 1103515245 + 12345;
            return (state >> 16) & 32767;
        }
        int main() {
            int i; int last = 0;
            for (i = 0; i < 10; i++) last = next();
            return last;
        }
    """, globals_to_read=["state"])
    state = 12345
    last = 0
    for __ in range(10):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        signed = state - (1 << 32) if state >= 1 << 31 else state
        last = (signed >> 16) & 32767
    assert values["state"] == (state if state < 1 << 31 else state - (1 << 32))
    assert values["__return"] == last


def test_deeply_nested_expressions():
    values = run_minic("""
        int main() {
            return ((((1 + 2) * (3 + 4)) - ((5 - 6) * (7 - 8)))
                    << ((2 * 2) - 3));
        }
    """)
    assert values["__return"] == ((3 * 7) - ((-1) * (-1))) << 1


def test_global_pointer_variable():
    values = run_minic("""
        int target = 5;
        int *gp;
        int main() {
            gp = &target;
            *gp = 77;
            return target;
        }
    """, globals_to_read=["target"])
    assert values["target"] == 77
