"""JobJournal: WAL round trips, torn tails, and the result store."""

import json
import os
import struct

import pytest

from repro.bench import build_collatz
from repro.serve import JobJournal, JournalError
from repro.serve.journal import MAX_RECORD_BYTES
from repro.serve.queue import Job


@pytest.fixture(scope="module")
def collatz():
    return build_collatz(count=12)


def make_job(collatz, job_id="j1", token="tok-1", client="A"):
    program = collatz.program
    return Job(job_id, client, program, program.image_hash(),
               options={"max_instructions": 1000}, token=token)


class TestRoundTrip:
    def test_replay_restores_submissions_and_states(self, tmp_path,
                                                    collatz):
        directory = str(tmp_path / "journal")
        with JobJournal(directory) as journal:
            job = make_job(collatz)
            journal.record_submit(job, "tok-1")
            journal.record_state("j1", "running")
            journal.record_state("j1", "done",
                                 extra={"state_sha256": "abc"})
            journal.record_mode("degraded", reason="test")

        with JobJournal(directory) as replayed:
            assert replayed.records_replayed == 4
            assert replayed.mode == "degraded"
            job = replayed.jobs["j1"]
            assert job.token == "tok-1"
            assert job.client == "A"
            assert job.state == "done"
            assert not job.interrupted
            assert job.summary_extra == {"state_sha256": "abc"}
            assert job.namespace == collatz.program.image_hash()
            # The program round-trips well enough to re-run the job.
            from repro.loader.image import Program
            program = Program.from_dict(job.program_dict)
            assert program.image_hash() == collatz.program.image_hash()

    def test_interrupted_jobs_are_the_requeue_set(self, tmp_path, collatz):
        directory = str(tmp_path / "journal")
        with JobJournal(directory) as journal:
            journal.record_submit(make_job(collatz, "j1", "t1"), "t1")
            journal.record_submit(make_job(collatz, "j2", "t2"), "t2")
            journal.record_submit(make_job(collatz, "j3", "t3"), "t3")
            journal.record_state("j1", "running")
            journal.record_state("j1", "done")
            journal.record_state("j2", "running")  # dies mid-run

        with JobJournal(directory) as replayed:
            interrupted = [job.job_id for job
                           in replayed.interrupted_jobs()]
            assert interrupted == ["j2", "j3"]
            assert replayed.max_job_number() == 3

    def test_incidents_replay_onto_the_job(self, tmp_path, collatz):
        directory = str(tmp_path / "journal")
        with JobJournal(directory) as journal:
            journal.record_submit(make_job(collatz), "t")
            journal.record_incident("j1", {"kind": "deadline"})
        with JobJournal(directory) as replayed:
            assert replayed.jobs["j1"].incidents == [{"kind": "deadline"}]

    def test_oversized_record_refused(self, tmp_path, collatz):
        with JobJournal(str(tmp_path / "journal")) as journal:
            with pytest.raises(JournalError):
                journal.record_state("j1", "x" * (MAX_RECORD_BYTES + 1))


class TestDamage:
    def write_two_records(self, directory, collatz):
        with JobJournal(directory) as journal:
            journal.record_submit(make_job(collatz), "t1")
            journal.record_state("j1", "running")
        return os.path.join(directory, "journal.ascj")

    def test_torn_tail_truncated_to_last_good_record(self, tmp_path,
                                                     collatz):
        directory = str(tmp_path / "journal")
        path = self.write_two_records(directory, collatz)
        size = os.path.getsize(path)
        os.truncate(path, size - 3)  # shear the CRC of the last record

        with JobJournal(directory) as replayed:
            assert replayed.truncated_bytes > 0
            assert replayed.records_replayed == 1
            job = replayed.jobs["j1"]
            assert job.state == "queued"  # the running record was torn
            # The file was physically truncated and appends continue.
            replayed.record_state("j1", "running")
        with JobJournal(directory) as again:
            assert again.truncated_bytes == 0
            assert again.records_replayed == 2
            assert again.jobs["j1"].state == "running"

    def test_garbage_tail_truncated(self, tmp_path, collatz):
        directory = str(tmp_path / "journal")
        path = self.write_two_records(directory, collatz)
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef not a section")
        with JobJournal(directory) as replayed:
            assert replayed.records_replayed == 2
            assert replayed.truncated_bytes > 0

    def test_flipped_byte_stops_replay_at_the_damage(self, tmp_path,
                                                     collatz):
        directory = str(tmp_path / "journal")
        path = self.write_two_records(directory, collatz)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 10)  # inside the final record
            byte = handle.read(1)
            handle.seek(size - 10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with JobJournal(directory) as replayed:
            assert replayed.records_replayed == 1

    def test_foreign_file_moved_aside_not_refused(self, tmp_path):
        directory = str(tmp_path / "journal")
        os.makedirs(directory)
        path = os.path.join(directory, "journal.ascj")
        with open(path, "wb") as handle:
            handle.write(b"#!/bin/sh\necho not a journal\n")
        with JobJournal(directory) as journal:
            assert journal.records_replayed == 0
            assert journal.jobs == {}
        assert os.path.exists(path + ".corrupt")

    def test_sub_header_fragment_starts_fresh(self, tmp_path):
        directory = str(tmp_path / "journal")
        os.makedirs(directory)
        path = os.path.join(directory, "journal.ascj")
        with open(path, "wb") as handle:
            handle.write(b"AS")  # crash during the very first write
        with JobJournal(directory) as journal:
            assert journal.truncated_bytes == 2
            assert journal.records_replayed == 0


class TestResultStore:
    def test_round_trip_and_missing(self, tmp_path):
        with JobJournal(str(tmp_path / "journal")) as journal:
            journal.store_result("j1", {"halted": True, "hits": 3})
            assert journal.load_result("j1") == {"halted": True, "hits": 3}
            assert journal.load_result("j404") is None

    def test_torn_result_reads_as_missing(self, tmp_path):
        with JobJournal(str(tmp_path / "journal")) as journal:
            journal.store_result("j1", {"halted": True})
            path = os.path.join(journal.results_dir, "j1.json")
            with open(path, "w") as handle:
                handle.write('{"halted": tr')
            assert journal.load_result("j1") is None

    def test_prune_evicts_oldest_first(self, tmp_path):
        with JobJournal(str(tmp_path / "journal"),
                        result_store_bytes=200) as journal:
            for i in range(1, 5):
                journal.store_result("j%d" % i, {"blob": "x" * 60})
                path = os.path.join(journal.results_dir, "j%d.json" % i)
                os.utime(path, (i, i))  # make eviction order unambiguous
            journal._prune_results()
            remaining = sorted(name for name
                               in os.listdir(journal.results_dir)
                               if name.endswith(".json"))
            assert "j4.json" in remaining
            assert "j1.json" not in remaining
            total = sum(os.path.getsize(
                os.path.join(journal.results_dir, name))
                for name in remaining)
            assert total <= 200

    def test_no_tmp_files_left_behind(self, tmp_path):
        with JobJournal(str(tmp_path / "journal")) as journal:
            journal.store_result("j1", {"halted": True})
            leftovers = [name for name in os.listdir(journal.results_dir)
                         if name.endswith(".tmp")]
            assert leftovers == []


class TestStats:
    def test_stats_dict_shape(self, tmp_path, collatz):
        with JobJournal(str(tmp_path / "journal")) as journal:
            journal.record_submit(make_job(collatz), "t")
            journal.store_result("j1", {"halted": True})
            stats = journal.stats_dict()
        assert stats["records_appended"] == 1
        assert stats["jobs_replayed"] == 0
        assert stats["result_files"] == 1
        assert stats["result_bytes"] > 0
        assert stats["mode"] == "normal"
