"""WorkerPool: real-process dispatch, crash/timeout recovery, shutdown."""

import os
import signal
import time

import pytest

from repro.asm import assemble
from repro.core.speculation import run_speculation
from repro.runtime.config import RuntimeConfig
from repro.runtime.pool import (
    TASK_CRASHED,
    TASK_FAILED,
    TASK_OK,
    TASK_TIMED_OUT,
    PoolError,
    WorkerPool,
)


@pytest.fixture(scope="module")
def loop_program():
    return assemble("""
        .entry start
        start:
            mov eax, 0
        top:
            load ecx, [counter]
            add ecx, 3
            store [counter], ecx
            inc eax
            cmp eax, 50
            jl top
            hlt
        .data
        counter: .word 0
    """, name="pool-loop")


@pytest.fixture(scope="module")
def spin_program():
    """Never halts — keeps a worker busy for crash/timeout injection."""
    return assemble("""
        .entry start
        start:
        top:
            load ecx, [counter]
            inc ecx
            store [counter], ecx
            jmp top
        .data
        counter: .word 0
    """, name="pool-spin")


def boundary_state(program):
    """(rip, state bytes) at the first crossing of ``top``."""
    machine = program.make_machine()
    top = program.symbol("top")
    machine.run(max_instructions=100_000, break_ips=frozenset((top,)))
    return top, bytes(machine.state.buf)


def poll_until(pool, n, budget_seconds=20.0):
    outcomes = []
    deadline = time.monotonic() + budget_seconds
    while len(outcomes) < n and time.monotonic() < deadline:
        outcomes.extend(pool.poll(timeout=0.2))
    return outcomes


class TestDispatchRoundTrip:
    def test_worker_result_matches_local_speculation(self, loop_program):
        rip, start = boundary_state(loop_program)
        local = run_speculation(loop_program.make_context(), start, rip,
                                1, 10_000)
        assert local.ok
        with WorkerPool(loop_program, RuntimeConfig(n_workers=1)) as pool:
            task = pool.submit(rip, 1, 10_000, start, meta="t0")
            assert task is not None
            assert task.meta == "t0"
            outcomes = poll_until(pool, 1)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert out.status == TASK_OK
        assert out.ok
        assert out.task.task_id == task.task_id
        assert out.instructions == local.instructions
        assert out.entry.length == local.entry.length
        assert list(out.entry.start_indices) == \
            list(local.entry.start_indices)
        assert list(out.entry.end_values) == list(local.entry.end_values)
        assert pool.stats.entries_shipped == 1
        assert pool.stats.bytes_sent > 0
        assert pool.stats.bytes_received > 0

    def test_many_tasks_across_workers(self, loop_program):
        rip, start = boundary_state(loop_program)
        with WorkerPool(loop_program,
                        RuntimeConfig(n_workers=2, queue_depth=4)) as pool:
            submitted = 0
            for i in range(6):
                if pool.submit(rip, 1, 10_000, start, meta=i) is not None:
                    submitted += 1
            outcomes = poll_until(pool, submitted)
        assert submitted >= 2
        assert len(outcomes) == submitted
        assert all(o.status == TASK_OK for o in outcomes)
        # FIFO per worker implies task_ids arrive in order per worker.
        by_worker = {}
        for o in outcomes:
            by_worker.setdefault(o.task.worker, []).append(o.task.task_id)
        for ids in by_worker.values():
            assert ids == sorted(ids)

    def test_budget_exhaustion_reports_failed(self, spin_program):
        rip, start = boundary_state(spin_program)
        with WorkerPool(spin_program, RuntimeConfig(n_workers=1)) as pool:
            pool.submit(rip, 10_000, 500, start, meta=None)  # tiny budget
            outcomes = poll_until(pool, 1)
        assert len(outcomes) == 1
        assert outcomes[0].status == TASK_FAILED
        assert outcomes[0].entry is None
        assert pool.stats.tasks_failed == 1


class TestBackpressure:
    def test_submit_returns_none_at_queue_depth(self, spin_program):
        rip, start = boundary_state(spin_program)
        config = RuntimeConfig(n_workers=1, queue_depth=1,
                               task_timeout_seconds=None)
        with WorkerPool(spin_program, config) as pool:
            first = pool.submit(rip, 2**31 - 1, 2**40, start, meta="busy")
            assert first is not None
            assert pool.idle_slots() == 0
            second = pool.submit(rip, 2**31 - 1, 2**40, start,
                                 meta="blocked")
            assert second is None
            assert pool.stats.dispatch_backpressure == 1
            assert pool.inflight_count() == 1


class TestCrashRecovery:
    def test_killed_worker_reports_crash_and_respawns(self, spin_program):
        rip, start = boundary_state(spin_program)
        config = RuntimeConfig(n_workers=1, task_timeout_seconds=None)
        with WorkerPool(spin_program, config) as pool:
            task = pool.submit(rip, 2**31 - 1, 2**40, start, meta="doomed")
            assert task is not None
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            outcomes = poll_until(pool, 1)
            assert len(outcomes) == 1
            assert outcomes[0].status == TASK_CRASHED
            assert outcomes[0].task.meta == "doomed"
            assert pool.stats.tasks_crashed == 1
            assert pool.stats.workers_respawned == 1
            # The replacement is a different, live process that still works.
            fresh = pool.worker_pids()[0]
            assert fresh != victim
            loop_rip, loop_start = rip, start
            pool.submit(loop_rip, 10, 500, loop_start, meta="after")
            after = poll_until(pool, 1)
            assert len(after) == 1
            assert after[0].task.meta == "after"

    def test_idle_dead_worker_replaced_on_poll(self, loop_program):
        with WorkerPool(loop_program, RuntimeConfig(n_workers=1)) as pool:
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while pool.worker_pids()[0] == victim \
                    and time.monotonic() < deadline:
                pool.poll(timeout=0.05)
            assert pool.worker_pids()[0] != victim
            assert pool.stats.workers_respawned == 1

    def test_respawn_limit_retires_slot(self, loop_program):
        """An exhausted respawn budget shrinks the pool instead of
        raising: the slot is retired, submit reports backpressure, and
        the supervisor denies speculation once below the worker floor."""
        config = RuntimeConfig(n_workers=1, respawn_limit=0)
        with WorkerPool(loop_program, config) as pool:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while pool.active_workers and time.monotonic() < deadline:
                pool.poll(timeout=0.05)
            assert pool.active_workers == 0
            assert pool.stats.workers_retired == 1
            assert pool.stats.workers_respawned == 0
            rip, start = boundary_state(loop_program)
            assert pool.submit(rip, 1, 1000, start) is None
            assert pool.stats.dispatch_backpressure == 1
            assert not pool.speculation_allowed()
            assert pool.stats.pool_degradations == 1

    def test_oversized_frame_is_a_worker_crash(self, loop_program):
        """A frame larger than max_frame_bytes must not be allocated or
        parsed; the offending worker is treated as crashed."""
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=1, max_frame_bytes=64,
                               task_timeout_seconds=None)
        with WorkerPool(loop_program, config) as pool:
            task = pool.submit(rip, 1, 10_000, start, meta="big")
            assert task is None or task.meta == "big"
            if task is not None:
                outcomes = poll_until(pool, 1)
                assert len(outcomes) == 1
                assert outcomes[0].status == TASK_CRASHED
                assert pool.stats.tasks_crashed == 1


class TestTimeout:
    def test_hung_task_times_out_and_worker_respawns(self, spin_program):
        rip, start = boundary_state(spin_program)
        config = RuntimeConfig(n_workers=1, task_timeout_seconds=0.3)
        with WorkerPool(spin_program, config) as pool:
            victim = pool.worker_pids()[0]
            pool.submit(rip, 2**31 - 1, 2**40, start, meta="hung")
            outcomes = poll_until(pool, 1)
            assert len(outcomes) == 1
            assert outcomes[0].status == TASK_TIMED_OUT
            assert outcomes[0].duration >= 0.3
            assert pool.stats.tasks_timed_out == 1
            assert pool.worker_pids()[0] != victim


class TestLifecycle:
    def test_shutdown_idempotent_and_submit_after_raises(self, loop_program):
        pool = WorkerPool(loop_program, RuntimeConfig(n_workers=2))
        pids = pool.worker_pids()
        pool.shutdown()
        pool.shutdown()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # process must be gone
        rip, start = boundary_state(loop_program)
        with pytest.raises(PoolError, match="shut-down"):
            pool.submit(rip, 1, 1000, start)

    def test_zero_workers_rejected(self, loop_program):
        with pytest.raises(PoolError):
            WorkerPool(loop_program, RuntimeConfig(n_workers=0))
