"""Trajectory-cache persistence and cross-invocation reuse (§6)."""

import numpy as np
import pytest

from repro.bench import build_collatz
from repro.cluster import CostModel, laptop1
from repro.core.cache_io import (
    deserialize_cache,
    load_cache,
    save_cache,
    serialize_cache,
)
from repro.core.engine import MemoizingEngine
from repro.core.recognizer import Recognizer
from repro.core.trajectory_cache import CacheEntry, TrajectoryCache
from repro.errors import EngineError


def make_entry(rip=0x40, seed=0, length=100):
    rng = np.random.default_rng(seed)
    n_start, n_end = 5, 3
    return CacheEntry(
        rip,
        np.sort(rng.choice(1000, n_start, replace=False)).astype(np.int64),
        rng.integers(0, 256, n_start, dtype=np.uint8),
        np.sort(rng.choice(1000, n_end, replace=False)).astype(np.int64),
        rng.integers(0, 256, n_end, dtype=np.uint8),
        length, occurrences=2, ready_time=7.5, halted=bool(seed % 2))


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        cache = TrajectoryCache()
        for seed in range(10):
            cache.insert(make_entry(rip=0x40 + 8 * (seed % 3), seed=seed,
                                    length=100 + seed))
        path = tmp_path / "cache.ascc"
        save_cache(cache, path)
        loaded = load_cache(path)
        assert len(loaded) == len(cache)
        originals = {(e.rip, e.length): e for e in cache.entries()}
        for entry in loaded.entries():
            original = originals[(entry.rip, entry.length)]
            assert np.array_equal(entry.start_indices,
                                  original.start_indices)
            assert np.array_equal(entry.start_values,
                                  original.start_values)
            assert np.array_equal(entry.end_indices, original.end_indices)
            assert np.array_equal(entry.end_values, original.end_values)
            assert entry.occurrences == original.occurrences
            assert entry.halted == original.halted
            assert entry.ready_time == 0.0  # preloaded entries are ready

    def test_empty_cache(self):
        blob = serialize_cache(TrajectoryCache())
        assert len(deserialize_cache(blob)) == 0

    @pytest.mark.parametrize("mutation", ["magic", "truncate", "trailing"])
    def test_corrupt_blobs_rejected(self, mutation):
        cache = TrajectoryCache()
        cache.insert(make_entry())
        blob = bytearray(serialize_cache(cache))
        if mutation == "magic":
            blob[0] ^= 0xFF
        elif mutation == "truncate":
            blob = blob[:len(blob) - 3]
        else:
            blob += b"\x00"
        with pytest.raises(EngineError):
            deserialize_cache(bytes(blob))

    def test_bit_rotted_entry_quarantined(self):
        """Bit rot inside one entry's arrays is caught by the per-entry
        CRC and quarantined — the rest of the blob still loads."""
        import struct
        cache = TrajectoryCache()
        for seed in range(4):
            cache.insert(make_entry(rip=0x40 + 8 * seed, seed=seed))
        blob = bytearray(serialize_cache(cache))
        header = struct.calcsize("<4sHI")
        entry_header = struct.calcsize("<IQIBII")
        # Flip a byte inside the first entry's index array: the framing
        # (declared lengths) survives, so only that entry is damaged.
        blob[header + entry_header + 2] ^= 0xFF
        loaded = deserialize_cache(bytes(blob))
        assert len(loaded) == 3
        assert loaded.n_quarantined == 1
        survivors = {e.rip for e in loaded.entries()}
        assert len(survivors) == 3

    def test_every_entry_rotted_loads_empty(self):
        cache = TrajectoryCache()
        cache.insert(make_entry())
        blob = bytearray(serialize_cache(cache))
        blob[-1] ^= 0xFF  # damage the entry's trailing CRC itself
        loaded = deserialize_cache(bytes(blob))
        assert len(loaded) == 0
        assert loaded.n_quarantined == 1

    def test_capacity_applies_on_load(self, tmp_path):
        cache = TrajectoryCache()
        for seed in range(20):
            cache.insert(make_entry(seed=seed, length=seed + 1))
        path = tmp_path / "cache.ascc"
        save_cache(cache, path)
        tiny = load_cache(path, capacity_bytes=make_entry().size_bytes() * 4)
        assert len(tiny) <= 4


class TestCrossInvocationReuse:
    def test_warm_cache_speeds_second_invocation(self):
        """Run Collatz once in memoization mode, carry the cache into a
        second run over a larger range: the warm run must hit entries
        from the previous invocation immediately."""
        first = build_collatz(count=180, memoize=True)
        recognized = Recognizer(first.config).find_for_memoization(
            first.program)
        factor = max(recognized.superstep_instructions / 2.3e6 / 5.22, 1e-7)
        platform = laptop1(CostModel().scaled(factor))
        cold = MemoizingEngine(first.program, platform,
                               config=first.config,
                               recognized=recognized).run()
        blob = serialize_cache(cold.cache)
        warm_cache = deserialize_cache(blob)

        # Same program, warm cache: hits from the very start.
        warm = MemoizingEngine(first.program, platform,
                               config=first.config,
                               recognized=recognized,
                               initial_cache=warm_cache).run()
        assert warm.stats.hits > cold.stats.hits
        assert warm.scaling > cold.scaling
        # Early-phase hit rate: the cold run's first-quarter scaling is
        # below the warm run's (the cache was earned last invocation).
        quarter = len(cold.timeline) // 4
        assert warm.timeline[quarter].scaling \
            > cold.timeline[quarter].scaling

    def test_entries_never_corrupt_different_range(self):
        """A cache from count=180 reused at count=240 must preserve
        correctness: fast-forwards are exact or absent."""
        first = build_collatz(count=180, memoize=True)
        second = build_collatz(count=240, memoize=True)
        recognized = Recognizer(first.config).find_for_memoization(
            first.program)
        factor = max(recognized.superstep_instructions / 2.3e6 / 5.22, 1e-7)
        platform = laptop1(CostModel().scaled(factor))
        cold = MemoizingEngine(first.program, platform,
                               config=first.config,
                               recognized=recognized).run()
        recognized2 = Recognizer(second.config).find_for_memoization(
            second.program)
        warm = MemoizingEngine(second.program,
                               laptop1(CostModel().scaled(factor)),
                               config=second.config,
                               recognized=recognized2,
                               initial_cache=cold.cache).run()
        # The run completed and computed the right result.
        machine = second.program.make_machine()
        machine.run(max_instructions=50_000_000)
        assert (warm.stats.instructions_executed
                + warm.stats.instructions_fast_forwarded) \
            == machine.instruction_count