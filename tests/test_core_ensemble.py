"""RWMA ensemble: regret minimization, combination, weight matrices."""

import numpy as np
import pytest

from repro.core.excitation import ObservationView
from repro.core.predictors import (
    LinearRegressionPredictor,
    MeanPredictor,
    PredictorEnsemble,
    WeathermanPredictor,
    default_ensemble,
)
from repro.core.predictors.base import Predictor


def view_of(*words):
    values = np.array([w & 0xFFFFFFFF for w in words], dtype=np.uint32)
    bits = np.unpackbits(values.view(np.uint8), bitorder="little")
    return ObservationView(values, bits, version=1, index=-1)


class ConstantPredictor(Predictor):
    """Always predicts a fixed word value."""

    def __init__(self, value, name="const"):
        super().__init__()
        self.value = value
        self.name = name

    def update(self, prev_view, next_view):
        self.ensure_capacity(next_view.n_bits)

    def predict(self, view):
        self.ensure_capacity(view.n_bits)
        n_words = view.n_bits // 32
        values = np.full(n_words, self.value, dtype=np.uint32)
        bits = np.unpackbits(values.view(np.uint8), bitorder="little")
        return bits, np.full(view.n_bits, 0.9)


def test_requires_predictors_and_valid_beta():
    with pytest.raises(ValueError):
        PredictorEnsemble([])
    with pytest.raises(ValueError):
        PredictorEnsemble([MeanPredictor()], beta=1.5)


def test_default_ensemble_has_four_algorithms():
    ensemble = default_ensemble()
    names = {n.split("(")[0] for n in ensemble.expert_names}
    assert names == {"mean", "weatherman", "logistic", "linreg"}


def test_converges_to_correct_expert():
    """With one always-right expert among always-wrong ones, the weighted
    majority must start following the right one after a few rounds —
    the regret bound in action."""
    right = ConstantPredictor(7, "right")
    wrong1 = ConstantPredictor(1, "wrong1")
    wrong2 = ConstantPredictor(2, "wrong2")
    wrong3 = ConstantPredictor(3, "wrong3")
    ensemble = PredictorEnsemble([wrong1, wrong2, wrong3, right], beta=0.3)
    stream = [view_of(7) for __ in range(12)]
    correct_after = []
    for view in stream:
        outcome = ensemble.observe(view)
        if outcome.scored:
            correct_after.append(
                not (outcome.ensemble_bits != outcome.actual_bits).any())
    # Early rounds may follow the wrong majority; late rounds must not.
    assert all(correct_after[3:])
    assert not all(correct_after[:1])


def test_weights_decay_multiplicatively():
    right = ConstantPredictor(0xFF, "right")
    wrong = ConstantPredictor(0x00, "wrong")
    ensemble = PredictorEnsemble([right, wrong], beta=0.5)
    for __ in range(4):
        ensemble.observe(view_of(0xFF))
    weights = ensemble.weight_matrix(normalized=False)
    # Bits 0..7 disagree: wrong expert halved per scored round (3 rounds).
    assert weights[1, 0] == pytest.approx(0.5 ** 3)
    assert weights[0, 0] == 1.0


def test_weight_floor():
    right = ConstantPredictor(1, "right")
    wrong = ConstantPredictor(0, "wrong")
    ensemble = PredictorEnsemble([right, wrong], beta=0.1,
                                 weight_floor=1e-6)
    for __ in range(20):
        ensemble.observe(view_of(1))
    weights = ensemble.weight_matrix(normalized=False)
    assert weights[1, 0] >= 1e-6


def test_predict_from_is_pure():
    ensemble = default_ensemble()
    for i in range(6):
        ensemble.observe(view_of(i))
    view = view_of(6)
    before = ensemble.weight_matrix(normalized=False).copy()
    bits1, probs1 = ensemble.predict_from(view)
    bits2, probs2 = ensemble.predict_from(view)
    assert (bits1 == bits2).all()
    assert np.array_equal(before, ensemble.weight_matrix(normalized=False))


def test_rollout_chaining_through_predictions():
    """predict_from on its own output follows an arithmetic sequence."""
    ensemble = default_ensemble()
    for i in range(10):
        ensemble.observe(view_of(i))
    bits, __ = ensemble.predict_from(view_of(9))
    value = int(np.packbits(bits, bitorder="little").view("<u4")[0])
    assert value == 10
    view = view_of(value)
    bits, __ = ensemble.predict_from(view)
    value = int(np.packbits(bits, bitorder="little").view("<u4")[0])
    assert value == 11


def test_probabilities_reflect_vote_share():
    right = ConstantPredictor(1, "right")
    wrong = ConstantPredictor(0, "wrong")
    ensemble = PredictorEnsemble([right, wrong], beta=0.5)
    for __ in range(6):
        ensemble.observe(view_of(1))
    __, probs = ensemble.predict_from(view_of(1))
    # Bit 0: right expert dominates; probability of the chosen value
    # should be well above one half.
    assert probs[0] > 0.8


def test_flush_pending_prevents_cross_jump_scoring():
    ensemble = default_ensemble()
    for i in range(6):
        ensemble.observe(view_of(i))
    before = ensemble.weight_matrix(normalized=False).copy()
    ensemble.flush_pending()
    outcome = ensemble.observe(view_of(1000))  # discontinuous jump
    assert not outcome.scored
    assert np.array_equal(before, ensemble.weight_matrix(normalized=False))


def test_randomized_mode_deterministic_under_seed():
    a = PredictorEnsemble([MeanPredictor(), WeathermanPredictor(),
                           LinearRegressionPredictor()],
                          randomized=True, seed=42)
    b = PredictorEnsemble([MeanPredictor(), WeathermanPredictor(),
                           LinearRegressionPredictor()],
                          randomized=True, seed=42)
    for i in range(8):
        a.observe(view_of(i))
        b.observe(view_of(i))
    bits_a, __ = a.predict_from(view_of(8))
    bits_b, __ = b.predict_from(view_of(8))
    assert (bits_a == bits_b).all()


def test_capacity_growth_mid_stream():
    ensemble = default_ensemble()
    for i in range(5):
        ensemble.observe(view_of(i))
    # Target set grows by one word.
    outcome = ensemble.observe(view_of(5, 100))
    assert outcome.scored  # old bits still scored
    assert ensemble.weights.shape[1] == 64
    outcome = ensemble.observe(view_of(6, 100))
    assert len(outcome.actual_bits) == 64
