"""Command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
int total;
int main() {
    int i;
    for (i = 1; i <= 40; i++) total += i;
    return total;
}
"""

ASM_SOURCE = """
.entry start
start:
    mov eax, 99
    hlt
"""


@pytest.fixture()
def c_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(SOURCE)
    return str(path)


def test_compile_and_save(c_file, tmp_path, capsys):
    out = str(tmp_path / "kernel.json")
    assert main(["compile", c_file, "-o", out, "--disasm"]) == 0
    text = capsys.readouterr().out
    assert "Program(" in text
    assert "hints:" in text
    assert "fn_main:" in text  # disassembly listing
    # The saved image runs identically.
    assert main(["run", out, "--global", "total"]) == 0
    assert "total = 820" in capsys.readouterr().out


def test_run_c_file(c_file, capsys):
    assert main(["run", c_file, "--reg", "eax", "--global", "total"]) == 0
    text = capsys.readouterr().out
    assert "halted" in text
    assert "eax = 820" in text
    assert "total = 820" in text


def test_run_assembly(tmp_path, capsys):
    path = tmp_path / "prog.s"
    path.write_text(ASM_SOURCE)
    assert main(["run", str(path), "--reg", "eax"]) == 0
    assert "eax = 99" in capsys.readouterr().out


def test_run_unknown_register(c_file, capsys):
    assert main(["run", c_file, "--reg", "xyz"]) == 2


def test_run_unknown_global(c_file, capsys):
    assert main(["run", c_file, "--global", "missing"]) == 2


def test_disasm(c_file, capsys):
    assert main(["disasm", c_file]) == 0
    text = capsys.readouterr().out
    assert "call fn_main" not in text  # rendered numerically
    assert "fn_main:" in text


def test_scale_command(tmp_path, capsys):
    path = tmp_path / "loop.c"
    path.write_text("""
        int out[400];
        int step(int v) {
            int j;
            for (j = 0; j < 12; j++) v = v * 5 + j;
            return v;
        }
        int main() {
            int i;
            for (i = 0; i < 400; i++) out[i] = step(i);
            return out[399];
        }
    """)
    assert main(["scale", str(path), "--cores", "4,16",
                 "--window", "30000", "--min-superstep", "80"]) == 0
    text = capsys.readouterr().out
    assert "recognized IP" in text
    assert "lasc" in text
    assert "16" in text


def test_run_real_backend(tmp_path, capsys):
    path = tmp_path / "loop.c"
    path.write_text("""
        int total;
        int main() {
            int i;
            for (i = 1; i <= 900; i++) total += i;
            return total;
        }
    """)
    assert main(["run", str(path), "--backend", "real", "--workers", "2",
                 "--global", "total"]) == 0
    text = capsys.readouterr().out
    assert "halted" in text
    assert "real backend: 2 workers" in text
    assert "total = 405450" in text


def test_run_backend_defaults_to_sim(c_file, capsys):
    assert main(["run", c_file, "--global", "total"]) == 0
    text = capsys.readouterr().out
    assert "real backend" not in text  # no worker pool was involved
    assert "total = 820" in text


def test_scale_real_backend(tmp_path, capsys):
    path = tmp_path / "loop.c"
    path.write_text("""
        int out[400];
        int step(int v) {
            int j;
            for (j = 0; j < 12; j++) v = v * 5 + j;
            return v;
        }
        int main() {
            int i;
            for (i = 0; i < 400; i++) out[i] = step(i);
            return out[399];
        }
    """)
    assert main(["scale", str(path), "--backend", "real", "--workers", "1,2",
                 "--window", "30000", "--min-superstep", "80"]) == 0
    text = capsys.readouterr().out
    assert "recognized IP" in text
    assert "sequential:" in text
    assert "1 workers:" in text
    assert "2 workers:" in text
    assert "identical=True" in text
    assert "identical=False" not in text


def test_memoize_command(tmp_path, capsys):
    path = tmp_path / "collatz.c"
    path.write_text("""
        int limit = 150;
        int verified;
        int main() {
            int n;
            for (n = 1; n <= limit; n++) {
                int x = n;
                while (x != 1) {
                    if (x % 2 == 0) x = x / 2; else x = 3 * x + 1;
                }
                verified++;
            }
            return verified;
        }
    """)
    assert main(["memoize", str(path), "--window", "20000"]) == 0
    assert "final scaling" in capsys.readouterr().out


def test_program_image_roundtrip(c_file, tmp_path):
    from repro.cli import load_program
    from repro.loader.image import Program
    out = str(tmp_path / "image.json")
    original = load_program(c_file)
    original.save(out)
    loaded = Program.load(out)
    assert loaded.code == original.code
    assert loaded.data == original.data
    assert loaded.entry == original.entry
    assert loaded.symbols == original.symbols
    assert loaded.hints.loop_headers == original.hints.loop_headers
    machine = loaded.make_machine()
    machine.run(max_instructions=100_000)
    assert machine.state.read_i32(loaded.symbol("g_total")) == 820
