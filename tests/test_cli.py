"""Command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
int total;
int main() {
    int i;
    for (i = 1; i <= 40; i++) total += i;
    return total;
}
"""

ASM_SOURCE = """
.entry start
start:
    mov eax, 99
    hlt
"""


@pytest.fixture()
def c_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(SOURCE)
    return str(path)


def test_compile_and_save(c_file, tmp_path, capsys):
    out = str(tmp_path / "kernel.json")
    assert main(["compile", c_file, "-o", out, "--disasm"]) == 0
    text = capsys.readouterr().out
    assert "Program(" in text
    assert "hints:" in text
    assert "fn_main:" in text  # disassembly listing
    # The saved image runs identically.
    assert main(["run", out, "--global", "total"]) == 0
    assert "total = 820" in capsys.readouterr().out


def test_run_c_file(c_file, capsys):
    assert main(["run", c_file, "--reg", "eax", "--global", "total"]) == 0
    text = capsys.readouterr().out
    assert "halted" in text
    assert "eax = 820" in text
    assert "total = 820" in text


def test_run_assembly(tmp_path, capsys):
    path = tmp_path / "prog.s"
    path.write_text(ASM_SOURCE)
    assert main(["run", str(path), "--reg", "eax"]) == 0
    assert "eax = 99" in capsys.readouterr().out


def test_run_unknown_register(c_file, capsys):
    assert main(["run", c_file, "--reg", "xyz"]) == 2


def test_run_unknown_global(c_file, capsys):
    assert main(["run", c_file, "--global", "missing"]) == 2


def test_disasm(c_file, capsys):
    assert main(["disasm", c_file]) == 0
    text = capsys.readouterr().out
    assert "call fn_main" not in text  # rendered numerically
    assert "fn_main:" in text


def test_scale_command(tmp_path, capsys):
    path = tmp_path / "loop.c"
    path.write_text("""
        int out[400];
        int step(int v) {
            int j;
            for (j = 0; j < 12; j++) v = v * 5 + j;
            return v;
        }
        int main() {
            int i;
            for (i = 0; i < 400; i++) out[i] = step(i);
            return out[399];
        }
    """)
    assert main(["scale", str(path), "--cores", "4,16",
                 "--window", "30000", "--min-superstep", "80"]) == 0
    text = capsys.readouterr().out
    assert "recognized IP" in text
    assert "lasc" in text
    assert "16" in text


def test_run_real_backend(tmp_path, capsys):
    path = tmp_path / "loop.c"
    path.write_text("""
        int total;
        int main() {
            int i;
            for (i = 1; i <= 900; i++) total += i;
            return total;
        }
    """)
    assert main(["run", str(path), "--backend", "real", "--workers", "2",
                 "--global", "total"]) == 0
    text = capsys.readouterr().out
    assert "halted" in text
    assert "real backend: 2 workers" in text
    assert "total = 405450" in text


def test_run_backend_defaults_to_sim(c_file, capsys):
    assert main(["run", c_file, "--global", "total"]) == 0
    text = capsys.readouterr().out
    assert "real backend" not in text  # no worker pool was involved
    assert "total = 820" in text


def test_scale_real_backend(tmp_path, capsys):
    path = tmp_path / "loop.c"
    path.write_text("""
        int out[400];
        int step(int v) {
            int j;
            for (j = 0; j < 12; j++) v = v * 5 + j;
            return v;
        }
        int main() {
            int i;
            for (i = 0; i < 400; i++) out[i] = step(i);
            return out[399];
        }
    """)
    assert main(["scale", str(path), "--backend", "real", "--workers", "1,2",
                 "--window", "30000", "--min-superstep", "80"]) == 0
    text = capsys.readouterr().out
    assert "recognized IP" in text
    assert "sequential:" in text
    assert "1 workers:" in text
    assert "2 workers:" in text
    assert "identical=True" in text
    assert "identical=False" not in text


def test_memoize_command(tmp_path, capsys):
    path = tmp_path / "collatz.c"
    path.write_text("""
        int limit = 150;
        int verified;
        int main() {
            int n;
            for (n = 1; n <= limit; n++) {
                int x = n;
                while (x != 1) {
                    if (x % 2 == 0) x = x / 2; else x = 3 * x + 1;
                }
                verified++;
            }
            return verified;
        }
    """)
    assert main(["memoize", str(path), "--window", "20000"]) == 0
    assert "final scaling" in capsys.readouterr().out


def test_run_json_output(c_file, capsys):
    import json
    assert main(["run", c_file, "--json", "--reg", "eax",
                 "--global", "total"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["backend"] == "sim"
    assert payload["halted"] is True
    assert payload["registers"]["eax"] == 820
    assert payload["globals"]["total"] == 820


def test_run_real_backend_json_includes_runtime_stats(tmp_path, capsys):
    import json
    path = tmp_path / "loop.c"
    path.write_text("""
        int total;
        int main() {
            int i;
            for (i = 1; i <= 900; i++) total += i;
            return total;
        }
    """)
    assert main(["run", str(path), "--backend", "real", "--workers", "2",
                 "--json", "--global", "total"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["backend"] == "real"
    assert payload["halted"] is True
    assert payload["globals"]["total"] == 405450
    runtime = payload["runtime"]
    for key in ("tasks_dispatched", "breaker_trips", "workers_quarantined",
                "pool_degradations", "faults_injected",
                "checkpoints_written", "frames_rejected"):
        assert key in runtime
    assert payload["stats"]["supersteps"] >= 0


def test_run_checkpoint_and_resume_sim(c_file, tmp_path, capsys):
    state_a = tmp_path / "full.bin"
    state_b = tmp_path / "resumed.bin"
    ckdir = str(tmp_path / "ck")
    assert main(["run", c_file, "--checkpoint-dir", ckdir,
                 "--checkpoint-every", "200",
                 "--state-out", str(state_a)]) == 0
    out = capsys.readouterr().out
    assert "checkpoints:" in out
    from repro.core.checkpoint import checkpoint_paths
    assert checkpoint_paths(ckdir)
    # Resume from the newest snapshot: the remaining tail replays to
    # the identical final state.
    assert main(["run", c_file, "--checkpoint-dir", ckdir, "--resume",
                 "--state-out", str(state_b)]) == 0
    assert "resumed from checkpoint" in capsys.readouterr().out
    assert state_a.read_bytes() == state_b.read_bytes()


def test_resume_without_checkpoint_dir_rejected(c_file):
    import pytest
    with pytest.raises(SystemExit):
        main(["run", c_file, "--resume"])


def test_chaos_command(capsys):
    assert main(["chaos", "collatz", "--size", "250", "--seed", "11",
                 "--kills", "1", "--timeouts", "1", "--corrupts", "1",
                 "--slows", "0", "--drops", "0", "--workers", "2",
                 "--slow-ms", "10"]) == 0
    text = capsys.readouterr().out
    assert "IDENTICAL" in text
    assert "supervision:" in text


def test_chaos_command_json(capsys):
    import json
    assert main(["chaos", "collatz", "--size", "250", "--seed", "42",
                 "--kills", "1", "--timeouts", "0", "--corrupts", "1",
                 "--slows", "0", "--drops", "1", "--workers", "2",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["identical"] is True
    assert payload["plan"]["injected"].get("kill") == 1
    assert payload["runtime"]["faults_injected"] >= 2


def test_program_image_roundtrip(c_file, tmp_path):
    from repro.cli import load_program
    from repro.loader.image import Program
    out = str(tmp_path / "image.json")
    original = load_program(c_file)
    original.save(out)
    loaded = Program.load(out)
    assert loaded.code == original.code
    assert loaded.data == original.data
    assert loaded.entry == original.entry
    assert loaded.symbols == original.symbols
    assert loaded.hints.loop_headers == original.hints.loop_headers
    machine = loaded.make_machine()
    machine.run(max_instructions=100_000)
    assert machine.state.read_i32(loaded.symbol("g_total")) == 820


def test_audit_command_clean(capsys):
    assert main(["audit", "collatz", "--size", "250", "--seed", "42",
                 "--workers", "2"]) == 0
    text = capsys.readouterr().out
    assert "splices verified" in text
    assert "IDENTICAL" in text
    assert "audit verdict: CLEAN" in text


def test_audit_command_catches_tainted_entries(capsys):
    assert main(["audit", "collatz", "--size", "250", "--seed", "42",
                 "--taints", "2", "--workers", "2"]) == 1
    text = capsys.readouterr().out
    assert "refuted" in text  # structured incident report
    assert "audit verdict: DIVERGENT" in text
    # Recovery still holds: the tainted splices were rolled back.
    assert "IDENTICAL" in text


def test_audit_command_json(capsys):
    import json
    assert main(["audit", "collatz", "--size", "250", "--seed", "7",
                 "--fault-plan", "seed=7,taint=2", "--json",
                 "--workers", "2"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["identical"] is True  # rollback preserved the state
    assert payload["audit"]["divergent"] >= 1
    assert payload["audit"]["incidents"]
    incident = payload["audit"]["incidents"][0]
    for key in ("superstep", "rip", "mismatches", "mode", "action"):
        assert key in incident
    assert payload["plan"]["injected"].get("taint") == 2
    assert payload["cache"]["n_groups_quarantined"] >= 1


def test_run_real_backend_json_verify_and_cache_sections(tmp_path, capsys):
    import json
    path = tmp_path / "loop.c"
    path.write_text("""
        int total;
        int main() {
            int i;
            for (i = 1; i <= 900; i++) total += i;
            return total;
        }
    """)
    assert main(["run", str(path), "--backend", "real", "--workers", "2",
                 "--json", "--verify-rate", "1.0"]) == 0
    payload = json.loads(capsys.readouterr().out)
    cache = payload["cache"]
    for key in ("n_entries", "n_evicted", "n_groups_quarantined",
                "quarantined_groups"):
        assert key in cache
    audit = payload["audit"]
    assert audit["rate"] == 1.0
    assert audit["divergent"] == 0
    assert payload["runtime"]["audits_sampled"] == audit["sampled"]


def test_scale_sim_json(tmp_path, capsys):
    import json
    path = tmp_path / "loop.c"
    path.write_text("""
        int out[400];
        int step(int v) {
            int j;
            for (j = 0; j < 12; j++) v = v * 5 + j;
            return v;
        }
        int main() {
            int i;
            for (i = 0; i < 400; i++) out[i] = step(i);
            return out[399];
        }
    """)
    assert main(["scale", str(path), "--cores", "4,16", "--json",
                 "--window", "30000", "--min-superstep", "80"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["backend"] == "sim"
    lasc = payload["series"]["lasc"]
    assert [p["cores"] for p in lasc] == [4, 16]
    for point in lasc:
        assert "n_evicted" in point["cache"]
        assert point["stats"]["queries"] >= 0
    # The ideal series carries no engine diagnostics.
    assert payload["series"]["ideal"][0]["stats"] is None


def test_scale_real_backend_json(tmp_path, capsys):
    import json
    path = tmp_path / "loop.c"
    path.write_text("""
        int out[400];
        int step(int v) {
            int j;
            for (j = 0; j < 12; j++) v = v * 5 + j;
            return v;
        }
        int main() {
            int i;
            for (i = 0; i < 400; i++) out[i] = step(i);
            return out[399];
        }
    """)
    assert main(["scale", str(path), "--backend", "real", "--workers", "2",
                 "--json", "--verify-rate", "1.0",
                 "--window", "30000", "--min-superstep", "80"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["backend"] == "real"
    assert payload["identical"] is True
    point = payload["points"][0]
    assert point["workers"] == 2
    assert "n_evicted" in point["cache"]
    assert "breaker_trips" in point["runtime"]  # supervisor counters
    assert point["audit"]["rate"] == 1.0
    assert point["audit"]["divergent"] == 0
