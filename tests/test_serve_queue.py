"""Central queue: fairness, admission bounds, cancellation."""

from types import SimpleNamespace

import pytest

from repro.serve.queue import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_QUEUED,
    JOB_RUNNING,
    BacklogFull,
    CentralQueue,
    Job,
    QueueError,
)

PROGRAM = SimpleNamespace(name="prog")
NS = "a" * 16


def make_job(job_id, client, namespace=NS):
    return Job(job_id, client, PROGRAM, namespace)


class TestAdmission:
    def test_backlog_bound_raises(self):
        queue = CentralQueue(max_queued_per_client=2)
        queue.submit(make_job("1", "a"))
        queue.submit(make_job("2", "a"))
        with pytest.raises(BacklogFull):
            queue.submit(make_job("3", "a"))
        assert queue.jobs_rejected == 1
        # Another client is unaffected by a's full backlog.
        queue.submit(make_job("4", "b"))

    def test_round_robin_across_clients(self):
        queue = CentralQueue(max_running_per_client=8)
        for i in range(2):
            queue.submit(make_job("a%d" % i, "a"))
            queue.submit(make_job("b%d" % i, "b"))
        order = [queue.next_runnable().job_id for __ in range(4)]
        assert order == ["a0", "b0", "a1", "b1"]

    def test_running_bound_skips_client(self):
        queue = CentralQueue(max_running_per_client=1)
        queue.submit(make_job("a0", "a"))
        queue.submit(make_job("a1", "a"))
        queue.submit(make_job("b0", "b"))
        first = queue.next_runnable()
        assert first.job_id == "a0"
        # a is at its running bound; b gets the next slot.
        second = queue.next_runnable()
        assert second.job_id == "b0"
        assert queue.next_runnable() is None
        first.finish(JOB_DONE)
        queue.note_finished(first)
        assert queue.next_runnable().job_id == "a1"

    def test_resource_veto_does_not_block_other_jobs(self):
        queue = CentralQueue(max_running_per_client=8)
        queue.submit(make_job("a0", "a", namespace="b" * 16))
        queue.submit(make_job("a1", "a", namespace="c" * 16))
        vetoed = queue.next_runnable(lambda j: j.namespace != "b" * 16)
        assert vetoed.job_id == "a1"  # head-of-line veto skipped, not stuck
        assert queue.queued_count("a") == 1


class TestLifecycle:
    def test_job_transitions(self):
        job = make_job("1", "a")
        assert job.state == JOB_QUEUED
        job.mark_running()
        assert job.state == JOB_RUNNING
        job.finish(JOB_DONE, result={"halted": True})
        assert job.terminal
        assert job.wall_seconds is not None
        with pytest.raises(QueueError):
            job.finish(JOB_CANCELLED)
        with pytest.raises(QueueError):
            job.mark_running()

    def test_summary_includes_result_fields(self):
        job = make_job("1", "a")
        job.mark_running()
        job.finish(JOB_DONE, result={"halted": True, "hits": 3,
                                     "total_instructions": 99,
                                     "first_splice_seconds": 0.5,
                                     "warm_entries": 2, "merged_entries": 1})
        row = job.summary()
        assert row["state"] == JOB_DONE
        assert row["hits"] == 3 and row["warm_entries"] == 2
        assert "final_state" not in row

    def test_cancelled_while_queued_is_skipped(self):
        queue = CentralQueue()
        job = make_job("1", "a")
        queue.submit(job)
        job.cancel_event.set()
        assert queue.next_runnable() is None

    def test_cancel_queued_dequeues(self):
        queue = CentralQueue()
        job = make_job("1", "a")
        queue.submit(job)
        assert queue.cancel_queued(job)
        assert not queue.cancel_queued(job)  # second cancel is a no-op
        assert queue.queued_count() == 0

    def test_drain_queued_empties_everything(self):
        queue = CentralQueue()
        for i in range(3):
            queue.submit(make_job(str(i), "c%d" % i))
        drained = queue.drain_queued()
        assert len(drained) == 3
        assert queue.queued_count() == 0

    def test_stats_dict(self):
        queue = CentralQueue()
        queue.submit(make_job("1", "a"))
        queue.submit(make_job("2", "b"))
        queue.next_runnable()
        stats = queue.stats_dict()
        assert stats["queued"] == 1
        assert stats["running"] == 1
        assert stats["jobs_submitted"] == 2
        assert set(stats["per_client"]) == {"a", "b"}
