"""Per-opcode differential sweep: fast-path dep vectors vs. reference.

The verify subsystem's audits replay segments on the reference
interpreter and compare dependency sets byte-for-byte against entries
that may have been produced by the block-cache fast path. That
comparison is only meaningful if both tiers report *identical*
dependency vectors for every instruction in the ISA. This sweep
exercises each opcode individually — every addressing mode, register
operand shapes, boundary immediates — and asserts the dep vector, the
state vector, and the stop outcome agree bit-for-bit between tiers.

`test_fastpath_differential.py` covers whole programs and random
streams; this file is the systematic per-opcode audit that pins down
*which* instruction disagrees when one ever does.
"""

import itertools

import pytest

from repro.errors import MachineError
from repro.isa.encoding import encode
from repro.isa.opcodes import Op
from repro.machine import DepVector, Machine, StateVector, TransitionContext
from repro.machine.layout import StateLayout

MEM = 1024
CODE_BASE = 0x40

#: Operand material for the sweep. Addressing modes 0-5 are the ones
#: the encoder emits; register fields cover every architectural
#: register; immediates cover sign boundaries, alignment, and values
#: that land effective addresses in data, code, and out of range.
MODES = (0, 1, 2, 3, 4, 5)
RA = (0, 3, 4, 7)
RB = (0x01, 0x25, 0x47, 0x70)
IMMS = (0, 1, 4, 100, 512, -4, 0x7FFFFFFF, -0x80000000)


def _variants(op):
    """A representative operand grid for one opcode."""
    for mode, ra, rb, imm in itertools.product(MODES[:3], RA, RB[:2],
                                               IMMS[:5]):
        yield mode, ra, rb, imm
    # Sparser coverage of the exotic corners.
    for mode, imm in itertools.product(MODES[3:], IMMS[5:]):
        yield mode, 2, 0x13, imm


def _machine(code, fast):
    layout = StateLayout(MEM)
    state = StateVector(layout)
    state.write_bytes(CODE_BASE, code)
    state.eip = CODE_BASE
    state.set_reg(4, MEM)  # ESP at the top of memory
    # Fixed, fully deterministic register file: every register holds a
    # distinctive value so dep tracking differences can't hide behind
    # zeros.
    for reg in range(8):
        if reg != 4:
            state.set_reg(reg, 0x11111111 * (reg + 1) ^ 0x5A5A)
    # Seed some recognizable data for loads to find.
    for i in range(0, 256, 4):
        state.write_bytes(512 + i, bytes(((i) & 0xFF, (i + 1) & 0xFF,
                                          (i + 2) & 0xFF, (i + 3) & 0xFF)))
    context = TransitionContext(layout,
                                code_range=(CODE_BASE,
                                            CODE_BASE + len(code)),
                                fast_path=fast)
    return Machine(state, context)


def _run(code, fast, budget=32):
    machine = _machine(code, fast)
    dep = DepVector(machine.state.layout.size)
    result = exc = None
    try:
        result = machine.run(max_instructions=budget, dep=dep)
    except MachineError as caught:
        exc = caught
    outcome = (("fault", type(exc).__name__, str(exc)) if exc is not None
               else (result.instructions, result.reason, result.eip))
    return (outcome, bytes(machine.state.buf), bytes(dep.buf),
            machine.instruction_count)


def _assert_op_agrees(op, streams):
    for stream in streams:
        ref = _run(stream, False)
        fast = _run(stream, True)
        assert ref == fast, (
            "%s: tier mismatch for stream %r: ref=%r fast=%r"
            % (op.name, stream.hex(), ref[0], fast[0]))


@pytest.mark.parametrize("op", list(Op), ids=lambda op: op.name)
def test_opcode_dep_vectors_agree(op):
    """Each opcode, alone and after a setup prefix, on both tiers."""
    streams = []
    for mode, ra, rb, imm in _variants(op):
        body = encode(op, mode, ra, rb, imm)
        streams.append(body)
        # The same instruction with warmed flags and a pointer register
        # aimed at the data area: exercises flag reads (jcc/setcc/adc)
        # and register-indirect effective addresses.
        prefix = (encode(Op.MOV_RI, 0, 1, 0, 512)
                  + encode(Op.CMP_RI, 0, 1, 0, 100))
        streams.append(prefix + body)
    _assert_op_agrees(op, streams)


def test_dep_vector_nonempty_for_memory_ops():
    """Sanity: the sweep actually produces dependency traffic."""
    stream = (encode(Op.MOV_RI, 0, 1, 0, 512)
              + encode(Op.LOAD, 1, 2, 0x10, 0)
              + encode(Op.STORE, 1, 2, 0x10, 64)
              + encode(Op.HLT))
    __, __state, dep_ref, __n = _run(stream, False)
    __, __state, dep_fast, __n = _run(stream, True)
    assert dep_ref == dep_fast
    assert any(dep_ref)
