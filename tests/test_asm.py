"""Assembler: lexing, parsing, two-pass assembly, disassembly."""

import pytest

from repro.asm import assemble, disassemble, disassemble_program
from repro.asm.lexer import tokenize_line, IDENT, INT, PUNCT, REG
from repro.errors import AssemblerError
from repro.isa import INSTRUCTION_SIZE, Instruction, Op


class TestLexer:
    def test_kinds(self):
        tokens = tokenize_line("mov eax, 0x10 ; comment", 1)
        assert [t.kind for t in tokens] == [IDENT, REG, PUNCT, INT]
        assert tokens[3].value == 16

    def test_hash_comment(self):
        assert tokenize_line("# only a comment", 1) == []

    def test_bad_character(self):
        with pytest.raises(AssemblerError):
            tokenize_line("mov eax, @", 1)

    def test_label_with_dots(self):
        tokens = tokenize_line("Lret1.x:", 1)
        assert tokens[0].kind == IDENT


class TestAssembly:
    def test_code_size(self):
        program = assemble("nop\nnop\nhlt\n")
        assert len(program.code) == 3 * INSTRUCTION_SIZE

    def test_label_resolution_forward_and_back(self):
        program = assemble("""
        top:
            jmp bottom
        bottom:
            jmp top
            hlt
        """)
        instrs = [i for __, i in disassemble(program.code,
                                             program.code_base)]
        assert instrs[0].imm == program.symbol("bottom")
        assert instrs[1].imm == program.symbol("top")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\n nop\na:\n hlt\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate eax\n")

    def test_wrong_operands_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("mov 5, eax\n")
        with pytest.raises(AssemblerError):
            assemble("inc 5\n")

    def test_instruction_in_data_segment_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nnop\n")

    def test_entry_defaults(self):
        # Explicit .entry wins; then a 'start' label; then code base.
        p1 = assemble(".entry here\nnop\nhere:\nhlt\n")
        assert p1.entry == p1.symbol("here")
        p2 = assemble("nop\nstart:\nhlt\n")
        assert p2.entry == p2.symbol("start")
        p3 = assemble("nop\nhlt\n")
        assert p3.entry == p3.code_base

    def test_data_directives(self):
        program = assemble("""
            hlt
        .data
        words: .word 1, -1, label_value
        bytes: .byte 1, 2, 255
        gap:   .space 3
        aligned: .align 8
        label_value: .word 7
        """)
        state = program.initial_state()
        base = program.symbol("words")
        assert state.read_i32(base) == 1
        assert state.read_i32(base + 4) == -1
        assert state.read_u32(base + 8) == program.symbol("label_value")
        assert state.read_u8(program.symbol("bytes") + 2) == 255
        assert program.symbol("label_value") % 8 == 0

    def test_align_in_code_pads(self):
        program = assemble("nop\n.align 32\ntarget:\nhlt\n")
        assert program.symbol("target") % 32 == 0

    def test_symbol_arithmetic_in_operand(self):
        program = assemble("""
            mov eax, arr+8
            hlt
        .data
        arr: .word 1, 2, 3
        """)
        instr = Instruction.decode(program.code, 0)
        assert instr.imm == program.symbol("arr") + 8

    def test_memory_operand_forms(self):
        program = assemble("""
            load eax, [100]
            load eax, [ebx]
            load eax, [ebx+8]
            load eax, [ebx+esi]
            load eax, [ebx+esi*2]
            load eax, [ebx+esi*4-12]
            store [ebx+4], eax
            hlt
        """)
        instrs = [i for __, i in disassemble(program.code)]
        assert instrs[0].mem.disp == 100
        assert instrs[5].mem.scale == 4
        assert instrs[5].mem.disp == -12
        assert instrs[6].op == Op.STORE

    def test_index_without_base_in_asm_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("load eax, [esi*4]\nhlt\n")

    def test_source_line_count_uses_original_source(self):
        program = assemble("nop\nhlt\n", source_for_loc="int main() {}\n")
        assert program.source_line_count == 1


class TestDisassembler:
    def test_roundtrip_through_text(self):
        source = """
        .entry start
        start:
            mov eax, 5
            add eax, -3
            store [value], eax
            hlt
        .data
        value: .word 0
        """
        program = assemble(source)
        listing = disassemble_program(program)
        assert "mov eax, 5" in listing
        assert "start:" in listing
        assert "store [" in listing

    def test_partial_instruction_rejected(self):
        from repro.errors import EncodingError
        with pytest.raises(EncodingError):
            disassemble(b"\x00" * 9)
