"""Public API surface: the names README and examples rely on."""

import repro


def test_version():
    assert repro.__version__


def test_public_names_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_compile_and_run_via_public_api():
    program = repro.compile_source(
        "int main() { return 21 * 2; }", name="tiny")
    result = repro.run_sequential(program)
    assert result.halted


def test_assemble_via_public_api():
    program = repro.assemble(".entry start\nstart:\n mov eax, 7\n hlt\n")
    machine = program.make_machine()
    machine.run(max_instructions=10)
    assert machine.state.get_reg(0) == 7
