"""Wire format: round-trips are bit-exact, corruption is rejected."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.speculation import SpeculationResult
from repro.core.trajectory_cache import CacheEntry
from repro.runtime import wire


def sparse_side(draw, max_len=64, vector_len=4096):
    """One (indices, values) side of an entry: sorted unique indices."""
    n = draw(st.integers(min_value=0, max_value=max_len))
    indices = draw(st.lists(st.integers(min_value=0,
                                        max_value=vector_len - 1),
                            min_size=n, max_size=n, unique=True))
    indices = np.asarray(sorted(indices), dtype=np.int64)
    values = draw(st.lists(st.integers(min_value=0, max_value=255),
                           min_size=n, max_size=n))
    return indices, np.asarray(values, dtype=np.uint8)


@st.composite
def entries(draw):
    start_indices, start_values = sparse_side(draw)
    end_indices, end_values = sparse_side(draw)
    return CacheEntry(
        rip=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        start_indices=start_indices, start_values=start_values,
        end_indices=end_indices, end_values=end_values,
        length=draw(st.integers(min_value=0, max_value=2**48)),
        occurrences=draw(st.integers(min_value=1, max_value=2**31 - 1)),
        halted=draw(st.booleans()))


def assert_entries_equal(a, b):
    assert a.rip == b.rip
    assert a.length == b.length
    assert a.occurrences == b.occurrences
    assert a.halted == b.halted
    np.testing.assert_array_equal(np.asarray(a.start_indices),
                                  np.asarray(b.start_indices))
    np.testing.assert_array_equal(np.asarray(a.start_values),
                                  np.asarray(b.start_values))
    np.testing.assert_array_equal(np.asarray(a.end_indices),
                                  np.asarray(b.end_indices))
    np.testing.assert_array_equal(np.asarray(a.end_values),
                                  np.asarray(b.end_values))


class TestEntryRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(entries())
    def test_bit_exact(self, entry):
        blob = wire.encode_entry(entry)
        decoded, pos = wire.decode_entry(blob)
        assert pos == len(blob)
        assert_entries_equal(entry, decoded)

    @settings(max_examples=25, deadline=None)
    @given(entries())
    def test_decoded_entry_applies_like_original(self, entry):
        buf = bytearray(4096)
        expected = bytearray(4096)
        decoded, __ = wire.decode_entry(wire.encode_entry(entry))
        entry.apply(expected)
        decoded.apply(buf)
        assert bytes(buf) == bytes(expected)

    def test_truncated_header_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_entry(b"\x00\x01")

    @settings(max_examples=20, deadline=None)
    @given(entries(), st.data())
    def test_truncated_arrays_rejected(self, entry, data):
        blob = wire.encode_entry(entry)
        if len(blob) <= 24:  # header-only entry cannot be array-truncated
            return
        cut = data.draw(st.integers(min_value=24, max_value=len(blob) - 1))
        with pytest.raises(wire.WireError):
            wire.decode_entry(blob[:cut])


class TestTaskRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(task_id=st.integers(min_value=0, max_value=2**63),
           rip=st.integers(min_value=0, max_value=2**32 - 1),
           occurrences=st.integers(min_value=0, max_value=2**32 - 1),
           budget=st.integers(min_value=0, max_value=2**63),
           state=st.binary(min_size=0, max_size=2048))
    def test_bit_exact(self, task_id, rip, occurrences, budget, state):
        blob = wire.encode_task(task_id, rip, occurrences, budget, state)
        msg_type, pos = wire.decode_message(blob)
        assert msg_type == wire.MSG_TASK
        task = wire.decode_task(blob, pos)
        assert task.task_id == task_id
        assert task.rip == rip
        assert task.occurrences == occurrences
        assert task.max_instructions == budget
        assert task.start_state == state

    def test_length_mismatch_rejected(self):
        blob = wire.encode_task(1, 2, 3, 4, b"\xaa" * 64)
        __, pos = wire.decode_message(blob)
        with pytest.raises(wire.WireError):
            wire.decode_task(blob[:-1], pos)
        with pytest.raises(wire.WireError):
            wire.decode_task(blob + b"\x00", pos)


def make_result(entry=None, instructions=0, halted=False, fault=None):
    return SpeculationResult(entry, instructions, halted, fault=fault)


class TestResultRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(entry=entries(),
           task_id=st.integers(min_value=0, max_value=2**63),
           instructions=st.integers(min_value=0, max_value=2**48),
           halted=st.booleans())
    def test_ok_result(self, entry, task_id, instructions, halted):
        blob = wire.encode_result(
            task_id, make_result(entry, instructions, halted))
        msg_type, pos = wire.decode_message(blob)
        assert msg_type == wire.MSG_RESULT
        msg = wire.decode_result(blob, pos)
        assert msg.task_id == task_id
        assert msg.status == wire.RESULT_OK
        assert msg.instructions == instructions
        assert msg.halted == halted
        assert msg.fault is None
        assert_entries_equal(entry, msg.entry)

    @settings(max_examples=25, deadline=None)
    @given(fault=st.text(min_size=1, max_size=200))
    def test_fault_result(self, fault):
        blob = wire.encode_result(7, make_result(fault=fault,
                                                 instructions=12))
        __, pos = wire.decode_message(blob)
        msg = wire.decode_result(blob, pos)
        assert msg.status == wire.RESULT_FAULT
        assert msg.entry is None
        assert msg.fault == fault

    def test_empty_and_budget_statuses(self):
        __, pos = wire.decode_message(wire.encode_result(1, make_result()))
        msg = wire.decode_result(wire.encode_result(1, make_result()), pos)
        assert msg.status == wire.RESULT_EMPTY
        blob = wire.encode_result(1, make_result(instructions=99))
        msg = wire.decode_result(blob, pos)
        assert msg.status == wire.RESULT_BUDGET

    def test_trailing_bytes_rejected(self):
        blob = wire.encode_result(1, make_result(instructions=5))
        __, pos = wire.decode_message(blob)
        with pytest.raises(wire.WireError):
            wire.decode_result(blob + b"\x00", pos)


class TestHeaderValidation:
    def test_shutdown_round_trip(self):
        msg_type, pos = wire.decode_message(wire.encode_shutdown())
        assert msg_type == wire.MSG_SHUTDOWN
        assert pos == len(wire.encode_shutdown())

    def test_bad_magic_rejected(self):
        blob = bytearray(wire.encode_shutdown())
        blob[:4] = b"NOPE"
        with pytest.raises(wire.WireError, match="magic"):
            wire.decode_message(bytes(blob))

    def test_version_mismatch_rejected(self):
        import struct
        bad = struct.pack("<4sHBI", wire.WIRE_MAGIC, wire.WIRE_VERSION + 1,
                          wire.MSG_TASK, 0)
        with pytest.raises(wire.WireError, match="version"):
            wire.decode_message(bad)

    def test_unknown_type_rejected(self):
        import struct
        bad = struct.pack("<4sHBI", wire.WIRE_MAGIC, wire.WIRE_VERSION, 99, 0)
        with pytest.raises(wire.WireError, match="type"):
            wire.decode_message(bad)

    def test_short_message_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_message(b"ASC")

    def test_payload_bit_flip_rejected(self):
        """Any single corrupted byte fails the header checksum — this is
        the property fault injection's 'corrupt' kind relies on."""
        blob = wire.encode_task(1, 2, 3, 4, b"\xaa" * 64)
        for pos in range(len(blob)):
            mutated = bytearray(blob)
            mutated[pos] ^= 0xFF
            with pytest.raises(wire.WireError):
                wire.decode_message(bytes(mutated))

    def test_truncation_rejected(self):
        blob = wire.encode_result(3, make_result(instructions=5))
        for cut in range(1, len(blob)):
            with pytest.raises(wire.WireError):
                wire.decode_message(blob[:cut])

    def test_oversized_frame_rejected(self):
        blob = wire.encode_task(1, 2, 3, 4, b"\x00" * 256)
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.decode_message(blob, max_frame_bytes=64)


@st.composite
def state_pairs(draw, max_len=2048):
    """A base state and a new state differing at a random sparse set of
    positions (possibly empty = identical, possibly dense)."""
    length = draw(st.integers(min_value=1, max_value=max_len))
    base = draw(st.binary(min_size=length, max_size=length))
    n = draw(st.integers(min_value=0, max_value=length))
    positions = draw(st.lists(st.integers(min_value=0,
                                          max_value=length - 1),
                              min_size=n, max_size=n, unique=True))
    state = bytearray(base)
    for pos in positions:
        state[pos] ^= draw(st.integers(min_value=1, max_value=255))
    return base, bytes(state)


class TestStateDeltaCodec:
    @settings(max_examples=100, deadline=None)
    @given(state_pairs())
    def test_round_trip_against_base(self, pair):
        base, state = pair
        blob = wire.encode_state_delta(state, base=base)
        assert wire.decode_state_delta(blob, base=base,
                                       expected_len=len(state)) == state

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=0, max_size=2048))
    def test_round_trip_without_base_is_full(self, state):
        blob = wire.encode_state_delta(state)
        assert blob[0] == wire.DELTA_FULL
        assert wire.decode_state_delta(blob) == state

    def test_empty_diff_is_tiny(self):
        state = b"\x5a" * 4096
        blob = wire.encode_state_delta(state, base=state)
        assert blob[0] == wire.DELTA_SPARSE
        assert len(blob) < 16
        assert wire.decode_state_delta(blob, base=state) == state

    def test_dense_diff_falls_back_to_full(self):
        base = b"\x00" * 256
        state = b"\xff" * 256
        blob = wire.encode_state_delta(state, base=base)
        assert blob[0] == wire.DELTA_FULL
        assert wire.decode_state_delta(blob, base=base) == state

    def test_wrong_length_base_ships_full(self):
        state = b"\xab" * 128
        blob = wire.encode_state_delta(state, base=b"\xab" * 64)
        assert blob[0] == wire.DELTA_FULL

    def test_sparse_without_base_rejected(self):
        base = b"\x00" * 64
        state = b"\x00" * 32 + b"\x01" + b"\x00" * 31
        blob = wire.encode_state_delta(state, base=base)
        assert blob[0] == wire.DELTA_SPARSE
        with pytest.raises(wire.WireError, match="without a base"):
            wire.decode_state_delta(blob)

    def test_wrong_base_length_rejected(self):
        base = b"\x00" * 64
        state = b"\x00" * 63 + b"\x01"
        blob = wire.encode_state_delta(state, base=base)
        with pytest.raises(wire.WireError, match="expected"):
            wire.decode_state_delta(blob, base=base, expected_len=128)

    @settings(max_examples=30, deadline=None)
    @given(state_pairs(), st.data())
    def test_truncation_rejected(self, pair, data):
        base, state = pair
        blob = wire.encode_state_delta(state, base=base)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises(wire.WireError):
            wire.decode_state_delta(blob[:cut], base=base)

    def test_unknown_kind_rejected(self):
        import struct
        blob = struct.pack("<BI", 9, 0)
        with pytest.raises(wire.WireError, match="kind"):
            wire.decode_state_delta(blob)

    def test_out_of_bounds_index_rejected(self):
        import struct
        blob = (struct.pack("<BI", wire.DELTA_SPARSE, 1)
                + struct.pack("<I", 64) + b"\x01")
        with pytest.raises(wire.WireError, match="beyond"):
            wire.decode_state_delta(blob, base=b"\x00" * 64)


class TestShmControlFrames:
    def test_task_ring_ref_round_trip(self):
        blob = wire.encode_state_delta(b"\xaa" * 100)
        frame = wire.encode_task_shm(11, 0x40, 3, 9999, 0, 4, 5, blob,
                                     seq=1234)
        msg_type, pos = wire.decode_message(frame)
        assert msg_type == wire.MSG_TASK_SHM
        msg = wire.decode_task_shm(frame, pos)
        assert (msg.task_id, msg.rip, msg.occurrences,
                msg.max_instructions) == (11, 0x40, 3, 9999)
        assert (msg.base_epoch, msg.epoch) == (4, 5)
        assert msg.location == wire.BLOB_SHM
        assert (msg.seq, msg.blob_len) == (1234, len(blob))
        assert msg.blob is None
        assert wire.check_blob(blob, msg.blob_crc) == blob
        # The control frame must stay small — that is the whole point.
        assert len(frame) < 128

    def test_task_inline_round_trip(self):
        blob = wire.encode_state_delta(b"\x07" * 32)
        frame = wire.encode_task_shm(1, 2, 3, 4, wire.FLAG_AUDIT, 0, 1,
                                     blob, seq=None)
        __, pos = wire.decode_message(frame)
        msg = wire.decode_task_shm(frame, pos)
        assert msg.location == wire.BLOB_INLINE
        assert msg.blob == blob
        assert msg.flags == wire.FLAG_AUDIT
        assert wire.check_blob(msg.blob, msg.blob_crc) == blob

    def test_result_ring_ref_round_trip(self):
        entry_blob = b"\x42" * 77
        frame = wire.encode_result_shm(9, wire.RESULT_OK, 555, True, None,
                                       blob=entry_blob, seq=4096)
        msg_type, pos = wire.decode_message(frame)
        assert msg_type == wire.MSG_RESULT_SHM
        msg = wire.decode_result_shm(frame, pos)
        assert (msg.task_id, msg.status, msg.instructions, msg.halted) == \
            (9, wire.RESULT_OK, 555, True)
        assert msg.has_entry
        assert msg.location == wire.BLOB_SHM
        assert (msg.seq, msg.blob_len) == (4096, len(entry_blob))
        assert wire.check_blob(entry_blob, msg.blob_crc) == entry_blob

    def test_stale_result_round_trip(self):
        frame = wire.encode_result_shm(3, wire.RESULT_STALE, 0, False, None)
        __, pos = wire.decode_message(frame)
        msg = wire.decode_result_shm(frame, pos)
        assert msg.status == wire.RESULT_STALE
        assert not msg.has_entry

    def test_fault_result_round_trip(self):
        frame = wire.encode_result_shm(4, wire.RESULT_FAULT, 10, False,
                                       "div by zero")
        __, pos = wire.decode_message(frame)
        msg = wire.decode_result_shm(frame, pos)
        assert msg.fault == "div by zero"
        assert not msg.has_entry
        assert msg.blob_len == 0

    def test_truncated_shm_frames_rejected(self):
        blob = wire.encode_state_delta(b"\x01" * 16)
        task = wire.encode_task_shm(1, 2, 3, 4, 0, 0, 1, blob, seq=None)
        __, pos = wire.decode_message(task)
        with pytest.raises(wire.WireError):
            wire.decode_task_shm(task[:-1], pos)
        with pytest.raises(wire.WireError):
            wire.decode_task_shm(task + b"\x00", pos)
        result = wire.encode_result_shm(1, wire.RESULT_OK, 5, False, None,
                                        blob=blob, seq=None)
        __, pos = wire.decode_message(result)
        with pytest.raises(wire.WireError):
            wire.decode_result_shm(result[:-1], pos)
        with pytest.raises(wire.WireError):
            wire.decode_result_shm(result + b"\x00", pos)

    def test_corrupt_blob_fails_check(self):
        blob = wire.encode_state_delta(b"\xcc" * 64)
        frame = wire.encode_task_shm(1, 2, 3, 4, 0, 0, 1, blob, seq=7)
        __, pos = wire.decode_message(frame)
        msg = wire.decode_task_shm(frame, pos)
        mutated = bytearray(blob)
        mutated[10] ^= 0x01
        with pytest.raises(wire.WireError, match="checksum"):
            wire.check_blob(bytes(mutated), msg.blob_crc)
