"""Block-cache soundness: write protection, splitting, fault exactness.

The translation cache is sound only because of three invariants, each
pinned here: stores into the code region fault before any byte changes
(so translations never go stale), blocks split at breakpoint IPs (so
``break_ips`` arrival is observed exactly), and mid-block faults recover
the byte-identical reference machine state.
"""

import pytest

from repro.asm import assemble
from repro.errors import CodeWriteError, MachineError, SegmentationFault
from repro.machine import DepVector, Machine
from repro.machine.blockcache import BlockCache


def _assemble(body, data=""):
    source = ".entry start\nstart:\n%s\n    hlt\n" % body
    if data:
        source += ".data\n%s\n" % data
    return assemble(source, name="blockcache-test")


# -- write protection never leaves a stale block -------------------------------

class TestCodeWriteProtection:
    def test_store_into_code_raises_and_preserves_translations(self):
        # A loop body that first executes (and so gets translated), then
        # on a later iteration tries to overwrite its own first
        # instruction. The store must raise, and re-running the same
        # entry must still produce reference behavior — the translated
        # block cannot have picked up the attempted write.
        program = _assemble("""
            mov ecx, 3
            mov ebx, start
        loop:
            add eax, ecx
            dec ecx
            jnz loop
            store [ebx], eax      ; hits write-protected code
        """)
        results = []
        for fast in (False, True):
            machine = program.make_machine(fast_path=fast)
            with pytest.raises(CodeWriteError) as excinfo:
                machine.run(max_instructions=1000)
            results.append((str(excinfo.value), bytes(machine.state.buf),
                            machine.instruction_count))
        assert results[0] == results[1]

    def test_faulted_store_then_rerun_stays_reference_exact(self):
        program = _assemble("""
            mov ebx, start
            store [ebx], eax
        """)
        machine = program.make_machine(fast_path=True)
        cache = machine.context.fast_path
        assert isinstance(cache, BlockCache)
        with pytest.raises(CodeWriteError):
            machine.run(max_instructions=100)
        # The fault interrupted a translated block; its cached form must
        # still describe the (unchanged) code. Re-run from scratch on
        # the SAME context and compare against a fresh reference run.
        rerun = Machine(program.initial_state(), machine.context)
        with pytest.raises(CodeWriteError):
            rerun.run(max_instructions=100)
        reference = program.make_machine(fast_path=False)
        with pytest.raises(CodeWriteError):
            reference.run(max_instructions=100)
        assert bytes(rerun.state.buf) == bytes(reference.state.buf)

    def test_code_bytes_unchanged_after_faulted_store(self):
        program = _assemble("""
            mov ebx, start
            mov eax, 0xDEADBEEF
            store [ebx], eax
        """)
        machine = program.make_machine(fast_path=True)
        lo, hi = program.code_range
        before = bytes(machine.state.buf[64 + lo:64 + hi])
        with pytest.raises(CodeWriteError):
            machine.run(max_instructions=100)
        assert bytes(machine.state.buf[64 + lo:64 + hi]) == before


# -- block splitting at breakpoint IPs -----------------------------------------

class TestBlockSplitting:
    def test_blocks_never_contain_interior_break_ips(self):
        program = _assemble("""
            mov eax, 1
            add eax, eax
            add eax, eax
            add eax, eax
            add eax, eax
        """)
        lo, hi = program.code_range
        machine = program.make_machine(fast_path=True)
        cache = machine.context.fast_path
        # Break in the middle of what would otherwise be one superblock.
        break_ip = lo + 16
        machine.run(max_instructions=1000, break_ips=frozenset((break_ip,)))
        assert machine.state.eip == break_ip
        __, blocks = cache.blocks_for(frozenset((break_ip,)))
        for block in blocks.values():
            if block:
                assert break_ip not in block.addrs[1:], (
                    "break IP 0x%x is interior to block at 0x%x"
                    % (break_ip, block.entry))

    def test_same_code_different_break_sets(self):
        # The same entry translated under two break sets must split
        # differently and both must behave like the reference.
        program = _assemble("""
            mov eax, 0
            mov ecx, 5
        loop:
            add eax, ecx
            dec ecx
            jnz loop
        """)
        lo, __ = program.code_range
        for break_ip in (lo + 24, lo + 32):
            outs = []
            for fast in (False, True):
                machine = program.make_machine(fast_path=fast)
                trail = []
                for __unused in range(20):
                    result = machine.run(max_instructions=500,
                                         break_ips=frozenset((break_ip,)))
                    trail.append((result.instructions, result.reason,
                                  result.eip))
                    if result.reason == "halted":
                        break
                outs.append((trail, bytes(machine.state.buf)))
            assert outs[0] == outs[1]


# -- fault exactness mid-block -------------------------------------------------

class TestFaultExactness:
    @pytest.mark.parametrize("body,data,exc_type", [
        # Segfault on the 3rd instruction of a straight-line block.
        ("mov eax, 5\n add eax, eax\n load ebx, [0]\n add eax, 1",
         "", SegmentationFault),
        # Division by zero mid-block.
        ("mov eax, 10\n mov ecx, 0\n idiv ecx\n hlt", "", MachineError),
        # IDIV quotient overflow (INT_MIN / -1).
        ("mov eax, -2147483648\n mov ecx, -1\n idiv ecx\n hlt",
         "", MachineError),
        # Unsigned division by zero.
        ("mov eax, 7\n mov ecx, 0\n udiv ecx\n hlt", "", MachineError),
        # Stack underflow: pop with ESP at the memory top.
        ("mov eax, 1\n pop ebx\n hlt", "", SegmentationFault),
    ])
    def test_fault_state_matches_reference(self, body, data, exc_type):
        program = _assemble(body, data)
        results = []
        for fast in (False, True):
            machine = program.make_machine(fast_path=fast)
            dep = DepVector(program.layout.size)
            with pytest.raises(exc_type) as excinfo:
                machine.run(max_instructions=100, dep=dep)
            results.append((str(excinfo.value), bytes(machine.state.buf),
                            bytes(dep.buf), machine.instruction_count))
        assert results[0] == results[1]

    def test_ip_trace_fault_accounting_matches(self):
        program = _assemble("mov eax, 2\n add eax, eax\n load ebx, [4]")
        counts = []
        for fast in (False, True):
            machine = program.make_machine(fast_path=fast)
            with pytest.raises(SegmentationFault):
                machine.ip_trace(100)
            counts.append((machine.instruction_count,
                           bytes(machine.state.buf)))
        assert counts[0] == counts[1]


# -- the switch ----------------------------------------------------------------

class TestFastPathSwitch:
    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        program = _assemble("mov eax, 1")
        machine = program.make_machine()
        assert machine.context.fast_path is None

    def test_env_default_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        program = _assemble("mov eax, 1")
        machine = program.make_machine()
        assert isinstance(machine.context.fast_path, BlockCache)

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATH", "1")
        program = _assemble("mov eax, 1")
        machine = program.make_machine(fast_path=False)
        assert machine.context.fast_path is None

    def test_no_code_range_disables(self):
        from repro.machine import StateLayout, TransitionContext
        context = TransitionContext(StateLayout(256), fast_path=True)
        assert context.fast_path is None

    def test_halted_machine_returns_immediately(self):
        program = _assemble("mov eax, 1")
        machine = program.make_machine(fast_path=True)
        machine.run(max_instructions=100)
        assert machine.halted
        result = machine.run(max_instructions=100)
        assert (result.instructions, result.reason) == (0, "halted")

    def test_blocks_are_reused_across_runs(self):
        program = _assemble("""
            mov ecx, 50
        loop:
            dec ecx
            jnz loop
        """)
        machine = program.make_machine(fast_path=True)
        cache = machine.context.fast_path
        machine.run(max_instructions=10_000)
        compiled = cache.compiled_block_count()
        assert compiled >= 2  # entry block + loop body at minimum
        rerun = Machine(program.initial_state(), machine.context)
        rerun.run(max_instructions=10_000)
        assert cache.compiled_block_count() == compiled
