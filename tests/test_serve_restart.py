"""Daemon restart persistence and SIGTERM lifecycle.

The cross-run story: client A's jobs populate a namespace shard, the
daemon stops (cleanly or by signal), a fresh daemon reloads the shard,
and client B — same program image, different client — starts warm. A
shard tainted on disk between runs is quarantined, never loaded.
"""

import base64
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.bench import build_collatz
from repro.core.config import EngineConfig
from repro.minic import compile_source
from repro.serve import (ServeClient, ServeClientError, ServeConfig,
                         ServeError, SpeculationDaemon)

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def engine_overrides(config):
    defaults = EngineConfig().__dict__
    return {key: (list(value) if isinstance(value, tuple) else value)
            for key, value in config.__dict__.items()
            if defaults.get(key) != value}


def submit_options(workload):
    return {"engine": engine_overrides(workload.config),
            "inflight_wait_bias": 1e9}


@pytest.fixture(scope="module")
def collatz():
    return build_collatz(count=120)


def sequential_state(program):
    machine = program.make_machine()
    machine.run(max_instructions=50_000_000)
    assert machine.halted
    return bytes(machine.state.buf)


class TestRestartPersistence:
    def test_warm_restart_across_daemon_generations(self, tmp_path,
                                                    collatz):
        cache_dir = str(tmp_path / "cache")
        expected = sequential_state(collatz.program)

        # Generation 1: client A populates the namespace.
        config = ServeConfig(socket_path=str(tmp_path / "g1.sock"),
                             cache_dir=cache_dir)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(config.socket_path, client="A") as client:
                cold = client.run(collatz.program,
                                  **submit_options(collatz))
            assert cold["warm_entries"] == 0
            daemon.close()

        shard = os.path.join(cache_dir,
                             collatz.program.image_hash() + ".tcache")
        assert os.path.exists(shard)

        # Generation 2: a different client, same image hash, starts warm.
        config2 = ServeConfig(socket_path=str(tmp_path / "g2.sock"),
                              cache_dir=cache_dir)
        with SpeculationDaemon(config2).start() as daemon2:
            assert daemon2.store.stats_dict()["shards_loaded"] == 1
            with ServeClient(config2.socket_path, client="B") as client:
                warm = client.run(collatz.program,
                                  **submit_options(collatz))
        assert warm["warm_entries"] == cold["merged_entries"]
        assert warm["hits"] > 0
        assert base64.b64decode(warm["final_state"]) == expected

    def test_tainted_shard_quarantined_on_restart(self, tmp_path, collatz):
        cache_dir = str(tmp_path / "cache")
        config = ServeConfig(socket_path=str(tmp_path / "g1.sock"),
                             cache_dir=cache_dir)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(config.socket_path, client="A") as client:
                client.run(collatz.program, **submit_options(collatz))
            daemon.close()

        shard = os.path.join(cache_dir,
                             collatz.program.image_hash() + ".tcache")
        with open(shard, "r+b") as handle:
            handle.write(b"\x00" * 32)  # structural damage

        config2 = ServeConfig(socket_path=str(tmp_path / "g2.sock"),
                              cache_dir=cache_dir)
        with SpeculationDaemon(config2).start() as daemon2:
            stats = daemon2.store.stats_dict()
            assert stats["shards_quarantined"] == 1
            assert stats["total_entries"] == 0
            assert os.path.exists(shard + ".quarantined")
            assert not os.path.exists(shard)
            # The namespace works cold and repopulates.
            with ServeClient(config2.socket_path, client="B") as client:
                result = client.run(collatz.program,
                                    **submit_options(collatz))
            assert result["warm_entries"] == 0
            assert result["halted"]


def wait_for_socket(path, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return True
        time.sleep(0.05)
    return False


@pytest.fixture
def serve_process(tmp_path):
    """A real ``repro serve`` child process on its own socket."""
    socket_path = str(tmp_path / "proc.sock")
    cache_dir = str(tmp_path / "cache")
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--cache-dir", cache_dir, "--worker-budget", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    assert wait_for_socket(socket_path), "daemon never bound its socket"
    yield process, socket_path, cache_dir
    if process.poll() is None:
        process.kill()
    process.wait(timeout=10)


def start_serve(socket_path, cache_dir):
    """Spawn a ``repro serve`` child and wait for its socket bind."""
    try:
        os.unlink(socket_path)  # stale after a SIGKILL
    except OSError:
        pass
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--cache-dir", cache_dir, "--worker-budget", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    assert wait_for_socket(socket_path), "daemon never bound its socket"
    return process


class TestCrashOnly:
    """The tentpole property: a SIGKILLed daemon restarted under the
    same socket path finishes the same journaled work, byte-identical
    to a sequential run, found again by the client's idempotency
    token."""

    def test_sigkill_then_restart_replays_byte_identical(self, tmp_path,
                                                         collatz):
        socket_path = str(tmp_path / "proc.sock")
        cache_dir = str(tmp_path / "cache")
        expected = sequential_state(collatz.program)

        gen1 = start_serve(socket_path, cache_dir)
        try:
            with ServeClient(socket_path, client="A") as client:
                submitted = client.submit(collatz.program,
                                          **submit_options(collatz))
                token = submitted["token"]
            # The submit was WAL'd before the ack we just received, so
            # SIGKILL right now — job queued or barely running — must
            # not lose it.
            gen1.kill()
            gen1.wait(timeout=30)

            gen2 = start_serve(socket_path, cache_dir)
            try:
                with ServeClient(socket_path, client="A",
                                 retries=8) as client:
                    status = client.status()
                    assert status["jobs"]["replayed"] >= 1
                    job = client.wait(token=token, timeout=120.0)
                    assert job["state"] == "done"
                    assert job["restored"] is True
                    assert job["token"] == token
                    final = client.final_state(token=token)
                assert final == expected
            finally:
                gen2.terminate()
                gen2.wait(timeout=30)
        finally:
            if gen1.poll() is None:
                gen1.kill()
                gen1.wait(timeout=30)

    def test_result_survives_restart_via_result_store(self, tmp_path,
                                                      collatz):
        socket_path = str(tmp_path / "proc.sock")
        cache_dir = str(tmp_path / "cache")

        gen1 = start_serve(socket_path, cache_dir)
        try:
            with ServeClient(socket_path, client="A") as client:
                first = client.run(collatz.program,
                                   **submit_options(collatz))
                token = client.last_token
            gen1.kill()  # after completion: the result must outlive us
            gen1.wait(timeout=30)

            gen2 = start_serve(socket_path, cache_dir)
            try:
                with ServeClient(socket_path, client="A",
                                 retries=8) as client:
                    job = client.poll(token=token)
                    assert job["state"] == "done"
                    replayed = client.result(token=token)
                assert replayed["final_state"] == first["final_state"]
                assert replayed["state_sha256"] == first["state_sha256"]
            finally:
                gen2.terminate()
                gen2.wait(timeout=30)
        finally:
            if gen1.poll() is None:
                gen1.kill()
                gen1.wait(timeout=30)

    def test_resubmission_with_same_token_dedups_after_restart(
            self, tmp_path, collatz):
        socket_path = str(tmp_path / "g.sock")
        cache_dir = str(tmp_path / "cache")
        config = ServeConfig(socket_path=socket_path, cache_dir=cache_dir)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(socket_path, client="A") as client:
                first = client.submit(collatz.program, token="tok-x",
                                      **submit_options(collatz))
                client.wait(token="tok-x")
            daemon.close()

        config2 = ServeConfig(socket_path=socket_path, cache_dir=cache_dir)
        with SpeculationDaemon(config2).start():
            with ServeClient(socket_path, client="A") as client:
                again = client.submit(collatz.program, token="tok-x",
                                      **submit_options(collatz))
                assert again["deduped"] is True
                assert again["job_id"] == first["job_id"]


class TestStartLock:
    def test_two_concurrent_starts_one_wins(self, tmp_path):
        config = ServeConfig(socket_path=str(tmp_path / "serve.sock"))
        with SpeculationDaemon(config).start():
            loser = SpeculationDaemon(
                ServeConfig(socket_path=config.socket_path))
            with pytest.raises(ServeError) as info:
                loser.start()
            message = str(info.value)
            assert str(os.getpid()) in message  # names the owner
            loser.close()

        # With the winner gone the path is free again.
        with SpeculationDaemon(
                ServeConfig(socket_path=config.socket_path)).start():
            with ServeClient(config.socket_path) as client:
                assert client.ping()["ok"]

    def test_lock_file_removed_on_clean_close(self, tmp_path):
        config = ServeConfig(socket_path=str(tmp_path / "serve.sock"))
        SpeculationDaemon(config).start().close()
        assert not os.path.exists(config.socket_path)
        assert not os.path.exists(config.socket_path + ".lock")


@pytest.fixture(scope="module")
def looper():
    """A program that burns ~2e9 iterations: never finishes inside a
    test, so only the watchdog can end its job."""
    return compile_source("""
        int out;
        int main() {
            int i = 0;
            while (i < 2000000000) { i = i + 1; }
            out = i;
            return out;
        }
    """, name="looper")


class TestWatchdogIntegration:
    def test_deadline_reaps_wedged_job_without_starving_others(
            self, tmp_path, collatz, looper):
        expected = sequential_state(collatz.program)
        config = ServeConfig(socket_path=str(tmp_path / "serve.sock"),
                             cache_dir=str(tmp_path / "cache"),
                             worker_budget=4, workers_per_job=2,
                             max_concurrent_jobs=2,
                             watchdog_interval_seconds=0.05,
                             kill_grace_seconds=0.5)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(config.socket_path, client="wedged") as stuck:
                stuck.submit(looper, token="stuck",
                             deadline_seconds=1.0)
                # A concurrent, healthy client is not starved while the
                # watchdog deals with the wedged job.
                with ServeClient(config.socket_path,
                                 client="healthy") as client:
                    result = client.run(collatz.program,
                                        **submit_options(collatz))
                assert base64.b64decode(
                    result["final_state"]) == expected

                job = stuck.wait(token="stuck", timeout=60.0)
                assert job["state"] == "failed"
                assert "watchdog" in (job.get("error") or "").lower() or \
                    any(i.get("kind") == "deadline"
                        for i in job.get("incidents", []))
                # The reap was journaled as a structured incident.
                assert daemon.watchdog.deadline_timeouts == 1

            # The queue is not wedged: new work still flows.
            with ServeClient(config.socket_path, client="after") as client:
                again = client.run(collatz.program,
                                   **submit_options(collatz))
            assert base64.b64decode(again["final_state"]) == expected


class TestSigterm:
    def test_sigterm_drains_flushes_and_unlinks(self, serve_process,
                                                collatz):
        process, socket_path, cache_dir = serve_process
        with ServeClient(socket_path, client="A") as client:
            result = client.run(collatz.program, **submit_options(collatz))
        assert result["halted"]

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
        assert not os.path.exists(socket_path)
        shard = os.path.join(cache_dir,
                             collatz.program.image_hash() + ".tcache")
        assert os.path.exists(shard)

    def test_double_sigterm_still_exits_cleanly(self, serve_process,
                                                collatz):
        process, socket_path, __ = serve_process
        with ServeClient(socket_path, client="A") as client:
            client.ping()
        process.send_signal(signal.SIGTERM)
        process.send_signal(signal.SIGTERM)  # escalation path, not a crash
        assert process.wait(timeout=60) == 0
        assert not os.path.exists(socket_path)
