"""Daemon restart persistence and SIGTERM lifecycle.

The cross-run story: client A's jobs populate a namespace shard, the
daemon stops (cleanly or by signal), a fresh daemon reloads the shard,
and client B — same program image, different client — starts warm. A
shard tainted on disk between runs is quarantined, never loaded.
"""

import base64
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.bench import build_collatz
from repro.core.config import EngineConfig
from repro.serve import ServeClient, ServeConfig, SpeculationDaemon

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def engine_overrides(config):
    defaults = EngineConfig().__dict__
    return {key: (list(value) if isinstance(value, tuple) else value)
            for key, value in config.__dict__.items()
            if defaults.get(key) != value}


def submit_options(workload):
    return {"engine": engine_overrides(workload.config),
            "inflight_wait_bias": 1e9}


@pytest.fixture(scope="module")
def collatz():
    return build_collatz(count=120)


def sequential_state(program):
    machine = program.make_machine()
    machine.run(max_instructions=50_000_000)
    assert machine.halted
    return bytes(machine.state.buf)


class TestRestartPersistence:
    def test_warm_restart_across_daemon_generations(self, tmp_path,
                                                    collatz):
        cache_dir = str(tmp_path / "cache")
        expected = sequential_state(collatz.program)

        # Generation 1: client A populates the namespace.
        config = ServeConfig(socket_path=str(tmp_path / "g1.sock"),
                             cache_dir=cache_dir)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(config.socket_path, client="A") as client:
                cold = client.run(collatz.program,
                                  **submit_options(collatz))
            assert cold["warm_entries"] == 0
            daemon.close()

        shard = os.path.join(cache_dir,
                             collatz.program.image_hash() + ".tcache")
        assert os.path.exists(shard)

        # Generation 2: a different client, same image hash, starts warm.
        config2 = ServeConfig(socket_path=str(tmp_path / "g2.sock"),
                              cache_dir=cache_dir)
        with SpeculationDaemon(config2).start() as daemon2:
            assert daemon2.store.stats_dict()["shards_loaded"] == 1
            with ServeClient(config2.socket_path, client="B") as client:
                warm = client.run(collatz.program,
                                  **submit_options(collatz))
        assert warm["warm_entries"] == cold["merged_entries"]
        assert warm["hits"] > 0
        assert base64.b64decode(warm["final_state"]) == expected

    def test_tainted_shard_quarantined_on_restart(self, tmp_path, collatz):
        cache_dir = str(tmp_path / "cache")
        config = ServeConfig(socket_path=str(tmp_path / "g1.sock"),
                             cache_dir=cache_dir)
        with SpeculationDaemon(config).start() as daemon:
            with ServeClient(config.socket_path, client="A") as client:
                client.run(collatz.program, **submit_options(collatz))
            daemon.close()

        shard = os.path.join(cache_dir,
                             collatz.program.image_hash() + ".tcache")
        with open(shard, "r+b") as handle:
            handle.write(b"\x00" * 32)  # structural damage

        config2 = ServeConfig(socket_path=str(tmp_path / "g2.sock"),
                              cache_dir=cache_dir)
        with SpeculationDaemon(config2).start() as daemon2:
            stats = daemon2.store.stats_dict()
            assert stats["shards_quarantined"] == 1
            assert stats["total_entries"] == 0
            assert os.path.exists(shard + ".quarantined")
            assert not os.path.exists(shard)
            # The namespace works cold and repopulates.
            with ServeClient(config2.socket_path, client="B") as client:
                result = client.run(collatz.program,
                                    **submit_options(collatz))
            assert result["warm_entries"] == 0
            assert result["halted"]


def wait_for_socket(path, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return True
        time.sleep(0.05)
    return False


@pytest.fixture
def serve_process(tmp_path):
    """A real ``repro serve`` child process on its own socket."""
    socket_path = str(tmp_path / "proc.sock")
    cache_dir = str(tmp_path / "cache")
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--cache-dir", cache_dir, "--worker-budget", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    assert wait_for_socket(socket_path), "daemon never bound its socket"
    yield process, socket_path, cache_dir
    if process.poll() is None:
        process.kill()
    process.wait(timeout=10)


class TestSigterm:
    def test_sigterm_drains_flushes_and_unlinks(self, serve_process,
                                                collatz):
        process, socket_path, cache_dir = serve_process
        with ServeClient(socket_path, client="A") as client:
            result = client.run(collatz.program, **submit_options(collatz))
        assert result["halted"]

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
        assert not os.path.exists(socket_path)
        shard = os.path.join(cache_dir,
                             collatz.program.image_hash() + ".tcache")
        assert os.path.exists(shard)

    def test_double_sigterm_still_exits_cleanly(self, serve_process,
                                                collatz):
        process, socket_path, __ = serve_process
        with ServeClient(socket_path, client="A") as client:
            client.ping()
        process.send_signal(signal.SIGTERM)
        process.send_signal(signal.SIGTERM)  # escalation path, not a crash
        assert process.wait(timeout=60) == 0
        assert not os.path.exists(socket_path)
