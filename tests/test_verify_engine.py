"""End-to-end audit & recovery: planted under-approximated entries.

The bug class the verify subsystem exists for: a cache entry whose
dependency (read) set is *under-approximated*. Such an entry matches a
state it should not match — the dropped byte differs — and splices in
the continuation of a different computation. These tests plant exactly
that entry, show that an unverified run silently diverges from the
sequential reference, and that ``--verify-rate 1.0`` detects the
splice, quarantines the group, rolls back to the pre-splice snapshot,
and finishes byte-identical — on the simulated engines and on the real
multiprocess backend.
"""

import numpy as np
import pytest

from repro.bench import build_collatz
from repro.cluster import server32
from repro.core.engine import MemoizingEngine, ParallelEngine
from repro.core.oracle import TrajectoryRecord
from repro.core.recognizer import Recognizer
from repro.core.speculation import run_speculation
from repro.core.trajectory_cache import CacheEntry, TrajectoryCache
from repro.runtime import RealParallelEngine, RuntimeConfig
from repro.verify import VerifyConfig

DETERMINISTIC = RuntimeConfig(n_workers=2, inflight_wait_bias=1e9)


def sequential_final(program, limit=50_000_000):
    machine = program.make_machine()
    machine.run(max_instructions=limit)
    assert machine.halted
    return bytes(machine.state.buf)


def boundary_state(program, rip, stride, k):
    """The machine state at the ``k``-th superstep boundary (1-based)."""
    machine = program.make_machine()
    for __ in range(k * stride):
        machine.run(max_instructions=50_000_000,
                    break_ips=frozenset((rip,)))
    return bytes(machine.state.buf)


def plant_underapproximated_entry(program, rip, state, occurrences,
                                  expected_final):
    """Forge an entry whose read set is missing one byte it depends on.

    Flip one byte ``b`` of ``state`` that the segment genuinely reads,
    speculate from the flipped state (a true fact about the *wrong*
    state), then drop ``b`` from the entry's read set. The result
    matches the true state on every remaining byte but carries the
    flipped computation's continuation — and provably derails the run:
    the helper only returns an entry whose splice reaches a halting
    final state different from the sequential reference.
    """
    context = program.make_context()
    genuine = run_speculation(context, state, rip, occurrences, 200_000)
    assert genuine.entry is not None
    for b in (int(i) for i in genuine.entry.start_indices):
        flipped = bytearray(state)
        flipped[b] ^= 1
        spec = run_speculation(context, bytes(flipped), rip, occurrences,
                               200_000)
        entry = spec.entry
        if entry is None or spec.fault is not None:
            continue
        where = np.where(entry.start_indices == b)[0]
        if len(where) != 1 or len(entry.start_indices) < 2:
            continue
        mask = np.arange(len(entry.start_indices)) != where[0]
        planted = CacheEntry(rip, entry.start_indices[mask],
                             entry.start_values[mask], entry.end_indices,
                             entry.end_values, entry.length,
                             occurrences=entry.occurrences,
                             halted=entry.halted)
        probe = bytearray(state)
        planted.apply(probe)
        machine = program.make_machine()
        machine.state.buf[:] = probe
        machine.run(max_instructions=50_000_000)
        if machine.halted and bytes(machine.state.buf) != expected_final:
            return planted
    raise AssertionError("no byte flip yields a corrupting planted entry")


def cache_with(entry):
    cache = TrajectoryCache()
    cache.insert(entry)
    return cache


# -- simulated backend: MemoizingEngine ----------------------------------------

class TestMemoizingEngine:
    @pytest.fixture(scope="class")
    def setup(self):
        workload = build_collatz(count=220, memoize=True)
        program = workload.program
        recognized = Recognizer(workload.config).find_for_memoization(
            program)
        expected = sequential_final(program)
        planted = plant_underapproximated_entry(
            program, recognized.ip,
            boundary_state(program, recognized.ip, recognized.stride, 3),
            2, expected)
        return workload, recognized, expected, planted

    def test_unverified_run_silently_diverges(self, setup):
        workload, recognized, expected, planted = setup
        result = MemoizingEngine(
            workload.program, config=workload.config, recognized=recognized,
            initial_cache=cache_with(planted)).run()
        assert result.final_state != expected  # the audit's raison d'etre

    def test_verified_run_detects_quarantines_rolls_back(self, setup):
        workload, recognized, expected, planted = setup
        result = MemoizingEngine(
            workload.program, config=workload.config, recognized=recognized,
            initial_cache=cache_with(planted),
            verify=VerifyConfig(rate=1.0)).run()
        assert result.final_state == expected  # byte-identical recovery
        audit = result.audit
        assert audit["divergent"] >= 1
        assert audit["rollbacks"] >= 1
        assert audit["groups_quarantined"] >= 1
        # With the default decay the group is re-admitted after enough
        # clean audits; either way it was quarantined at some point and
        # the books balance.
        assert (audit["quarantined_now"] >= 1
                or audit["groups_readmitted"] >= 1)
        assert audit["incidents"]
        incident = audit["incidents"][0]
        assert "read-set" in incident["mismatches"]
        assert incident["action"] == "rollback"

    def test_clean_run_audits_everything_quietly(self, setup):
        workload, recognized, expected, __ = setup
        result = MemoizingEngine(
            workload.program, config=workload.config, recognized=recognized,
            verify=VerifyConfig(rate=1.0)).run()
        assert result.final_state == expected
        audit = result.audit
        assert audit["sampled"] == result.stats.hits
        assert audit["sampled"] > 0
        assert audit["divergent"] == 0
        assert audit["incidents"] == []


# -- simulated backend: ParallelEngine -----------------------------------------

def test_parallel_engine_recovers_from_planted_entry():
    workload = build_collatz(count=220)
    program = workload.program
    # The simulated engine probes the cache only after the recognizer's
    # convergence charge has elapsed; charge two supersteps and plant
    # past them.
    config = workload.config.replace(converge_supersteps_charge=2.0)
    recognized = Recognizer(config).find(program)
    record = TrajectoryRecord(program, recognized, config)
    expected = sequential_final(program)
    cache = TrajectoryCache()
    for k in (12, 15, 18):
        cache.insert(plant_underapproximated_entry(
            program, recognized.ip,
            boundary_state(program, recognized.ip, recognized.stride, k),
            recognized.stride, expected))
    result = ParallelEngine(
        program, server32(8), config=config,
        recognized=recognized, record=record, initial_cache=cache,
        verify=VerifyConfig(rate=1.0)).run()
    # With every splice audited, the planted entry is refuted on the
    # spot, the pre-splice snapshot restored, and the run completes on
    # the true trajectory (the engine's own progress identity holds).
    assert result.final_state == expected
    audit = result.audit
    assert audit["divergent"] >= 1
    assert audit["rollbacks"] >= 1
    assert (result.stats.instructions_executed
            + result.stats.instructions_fast_forwarded
            == result.total_instructions)


# -- real multiprocess backend -------------------------------------------------

class TestRealBackend:
    @pytest.fixture(scope="class")
    def setup(self):
        workload = build_collatz(count=300)
        program = workload.program
        recognized = Recognizer(workload.config).find(program)
        expected = sequential_final(program)
        planted = plant_underapproximated_entry(
            program, recognized.ip,
            boundary_state(program, recognized.ip, recognized.stride, 3),
            recognized.stride, expected)
        return workload, recognized, expected, planted

    def test_unverified_run_silently_diverges(self, setup):
        workload, recognized, expected, planted = setup
        result = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, recognized=recognized,
            initial_cache=cache_with(planted)).run()
        assert result.halted
        assert result.final_state != expected

    def test_verified_run_detects_quarantines_rolls_back(self, setup):
        workload, recognized, expected, planted = setup
        result = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, recognized=recognized,
            initial_cache=cache_with(planted),
            verify=VerifyConfig(rate=1.0)).run()
        assert result.halted
        assert result.final_state == expected  # byte-identical recovery
        audit = result.audit
        assert audit["divergent"] >= 1
        assert audit["rollbacks"] >= 1
        assert audit["groups_quarantined"] >= 1
        assert any("read-set" in i["mismatches"]
                   for i in audit["incidents"])
        # Counters are mirrored into RuntimeStats for --json reports.
        assert result.runtime.audits_divergent == audit["divergent"]
        assert result.runtime.audit_rollbacks == audit["rollbacks"]
        assert result.runtime.incidents
        # Progress identity survives the rollback accounting.
        assert (result.stats.instructions_executed
                + result.stats.instructions_fast_forwarded
                == result.total_instructions)

    def test_strict_mode_verifies_synchronously(self, setup):
        workload, recognized, expected, planted = setup
        result = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, recognized=recognized,
            initial_cache=cache_with(planted),
            verify=VerifyConfig(strict=True)).run()
        assert result.halted
        assert result.final_state == expected
        audit = result.audit
        assert audit["strict"] is True
        assert audit["divergent"] >= 1
        assert all(i["mode"] == "sync" for i in audit["incidents"])

    def test_clean_run_audits_everything_quietly(self, setup):
        workload, recognized, expected, __ = setup
        result = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, recognized=recognized,
            verify=VerifyConfig(rate=1.0)).run()
        assert result.halted
        assert result.final_state == expected
        audit = result.audit
        assert audit["sampled"] > 0
        assert audit["divergent"] == 0
        assert audit["lost"] == 0
        assert audit["incidents"] == []
        assert result.runtime.audits_sampled == audit["sampled"]
