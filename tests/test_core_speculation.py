"""Speculative execution workers."""

from repro.asm import assemble
from repro.core.speculation import run_speculation
from repro.machine.layout import STATUS_OFF


def loop_program():
    return assemble("""
        .entry start
        start:
            mov eax, 0
        top:
            inc eax
            cmp eax, 20
            jl top
            store [done], eax
            hlt
        .data
        done: .word 0
    """, name="spec")


def at_boundary(program):
    machine = program.make_machine()
    top = program.symbol("top")
    machine.run(max_instructions=10_000, break_ips=frozenset((top,)))
    return machine, top


def test_single_crossing_superstep():
    program = loop_program()
    machine, top = at_boundary(program)
    result = run_speculation(machine.context, bytes(machine.state.buf),
                             top, 1, 1000)
    assert result.ok
    assert result.entry.occurrences == 1
    assert result.entry.length == 3  # inc, cmp, jl


def test_multi_crossing_stride():
    program = loop_program()
    machine, top = at_boundary(program)
    result = run_speculation(machine.context, bytes(machine.state.buf),
                             top, 4, 1000)
    assert result.ok
    assert result.entry.occurrences == 4
    assert result.entry.length == 12


def test_start_buffer_not_modified():
    program = loop_program()
    machine, top = at_boundary(program)
    start = bytes(machine.state.buf)
    run_speculation(machine.context, start, top, 2, 1000)
    assert bytes(machine.state.buf) == start


def test_budget_exhaustion_yields_no_entry():
    program = loop_program()
    machine, top = at_boundary(program)
    result = run_speculation(machine.context, bytes(machine.state.buf),
                             top, 1, 2)  # 2 instructions: cannot cross
    assert not result.ok
    assert result.fault == "budget exhausted"
    assert result.instructions == 2


def test_halt_terminates_speculation_with_entry():
    program = loop_program()
    machine, top = at_boundary(program)
    # Ask for far more crossings than remain: ends at HLT.
    result = run_speculation(machine.context, bytes(machine.state.buf),
                             top, 10_000, 100_000)
    assert result.ok
    assert result.halted
    # The entry's end projection includes the halted status byte.
    assert STATUS_OFF in result.entry.end_indices.tolist()


def test_garbage_state_faults_cleanly():
    program = loop_program()
    machine, top = at_boundary(program)
    garbage = bytearray(machine.state.buf)
    # Point EIP into unmapped low memory.
    garbage[32:36] = (0).to_bytes(4, "little")
    result = run_speculation(machine.context, bytes(garbage), top, 1, 1000)
    assert not result.ok
    assert result.fault is not None


def test_already_halted_state_yields_no_entry():
    program = loop_program()
    machine = program.make_machine()
    machine.run(max_instructions=100_000)
    assert machine.halted
    result = run_speculation(machine.context, bytes(machine.state.buf),
                             program.symbol("top"), 1, 1000)
    assert not result.ok
    assert result.instructions == 0
