"""Mini-C lexer, parser, and semantic analysis (error paths)."""

import pytest

from repro.errors import MiniCError
from repro.minic.lexer import IDENT, KW, NUMBER, OP, tokenize
from repro.minic.parser import parse
from repro.minic.sema import analyze
from repro.minic.types import INT, ArrayType, PtrType, StructType, assignable


class TestLexer:
    def test_kinds_and_values(self):
        tokens = tokenize("int x = 0x1F + 2; // note")
        kinds = [t.kind for t in tokens]
        assert kinds == [KW, IDENT, OP, NUMBER, OP, NUMBER, OP, "eof"]
        assert tokens[3].value == 31

    def test_multichar_operators(self):
        tokens = tokenize("a <<= b >> c != d -> e ++")
        ops = [t.value for t in tokens if t.kind == OP]
        assert ops == ["<<=", ">>", "!=", "->", "++"]

    def test_block_comment_and_line_numbers(self):
        tokens = tokenize("a /* multi\nline */ b\nc")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3

    def test_bad_character(self):
        with pytest.raises(MiniCError):
            tokenize("int a = `;")


class TestParser:
    def test_precedence(self):
        unit = parse("int main() { return 1 + 2 * 3; }")
        expr = unit.functions[0].body.statements[0].value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_assignment_right_associative(self):
        unit = parse("int main() { int a; int b; a = b = 1; return a; }")
        assign = unit.functions[0].body.statements[2].expr
        assert assign.op == "="
        assert assign.value.op == "="

    def test_dangling_else(self):
        unit = parse("int main() { if (1) if (2) return 1; else return 2; "
                     "return 0; }")
        outer = unit.functions[0].body.statements[0]
        assert outer.else_body is None
        assert outer.then_body.else_body is not None

    def test_missing_semicolon(self):
        with pytest.raises(MiniCError):
            parse("int main() { return 1 }")

    def test_struct_parsing(self):
        unit = parse("struct n { int v; struct n *next; };\n"
                     "struct n pool[4];\nint main() { return 0; }")
        assert unit.structs[0].name == "n"
        assert len(unit.structs[0].members) == 2


class TestTypes:
    def test_sizes(self):
        assert INT.size == 4
        assert PtrType(INT).size == 4
        assert ArrayType(INT, 10).size == 40
        struct = StructType("s")
        struct.add_member("a", INT)
        struct.add_member("b", ArrayType(INT, 3))
        struct.finish()
        assert struct.size == 16
        assert struct.member("b")[0] == 4

    def test_assignability(self):
        assert assignable(INT, INT)
        assert assignable(PtrType(INT), INT)  # NULL-style
        assert assignable(PtrType(INT), PtrType(INT))
        assert not assignable(PtrType(INT), PtrType(PtrType(INT)))
        assert assignable(PtrType(INT), ArrayType(INT, 4))  # decay

    def test_array_decay(self):
        assert ArrayType(INT, 4).decay() == PtrType(INT)


class TestSemanticErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("int main() { return x; }", "undeclared"),
        ("int main() { int x; int x; return 0; }", "redeclaration"),
        ("int f() { return 0; } int f() { return 1; } "
         "int main() { return 0; }", "redefinition"),
        ("int main() { return f(); }", "undefined function"),
        ("int f(int a) { return a; } int main() { return f(); }",
         "argument"),
        ("int main() { break; }", "outside a loop"),
        ("void f() { return 1; } int main() { return 0; }", "void"),
        ("int main() { int a[3]; a = 0; return 0; }", "aggregate"),
        ("int main() { 5 = 3; return 0; }", "lvalue"),
        ("int main() { int x; return *x; }", "dereference"),
        ("int main() { int *p; return p % 2; }", "int operands"),
        ("struct s { int v; }; int main() { struct s x; return 0; }",
         "pool"),
        ("int g() { return 1; } int main() { int *p; p = g; return 0; }",
         "undeclared"),
        ("int main() { int a[0]; return 0; }", "positive"),
        ("struct s { int v; }; int main() { struct s *p; return p->w; }",
         "no member"),
        ("int main() { int x; return x.field; }", "non-struct"),
    ])
    def test_rejects(self, source, fragment):
        with pytest.raises(MiniCError) as err:
            analyze(parse(source))
        assert fragment in str(err.value)

    def test_missing_main(self):
        with pytest.raises(MiniCError):
            analyze(parse("int f() { return 0; }"))

    def test_struct_self_reference_via_pointer_ok(self):
        analyze(parse("struct n { struct n *next; int v; };\n"
                      "struct n pool[2];\nint main() { return 0; }"))

    def test_struct_direct_self_reference_rejected(self):
        with pytest.raises(MiniCError):
            analyze(parse("struct n { struct n inner; };\n"
                          "int main() { return 0; }"))

    def test_frame_offsets(self):
        unit = parse("int f(int a, int b) { int x; int y; return a; }\n"
                     "int main() { return 0; }")
        info = analyze(unit)
        fn = unit.functions[0]
        params = {name: None for __, name in fn.params}
        assert info.frame_sizes["f"] == 8
        assert set(params) == {"a", "b"}
