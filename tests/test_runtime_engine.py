"""RealParallelEngine: byte-identical results from real-core speculation."""

import os
import signal

import pytest

from repro.asm import assemble
from repro.bench import build_collatz, build_ising
from repro.core.recognizer import Recognizer
from repro.runtime import RealParallelEngine, RuntimeConfig


def sequential_state(program, limit=50_000_000):
    machine = program.make_machine()
    machine.run(max_instructions=limit)
    assert machine.halted
    return bytes(machine.state.buf)


#: Always wait for an in-flight speculation of the current state — on a
#: loaded CI core this converts every on-trajectory prediction into a
#: deterministic hit instead of a timing-dependent one.
DETERMINISTIC = RuntimeConfig(n_workers=2, inflight_wait_bias=1e9)


@pytest.fixture(scope="module", params=["collatz", "ising"])
def workload(request):
    if request.param == "collatz":
        return build_collatz(count=300)
    return build_ising(nodes=48, spins=6)


@pytest.fixture(scope="module")
def recognized(workload):
    found = Recognizer(workload.config).find(workload.program)
    assert found is not None
    return found


class TestDifferential:
    def test_byte_identical_with_real_worker_fast_forwards(
            self, workload, recognized):
        expected = sequential_state(workload.program)
        engine = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, recognized=recognized)
        result = engine.run()
        assert result.halted
        assert result.final_state == expected
        # The run must have been driven by the machinery, not luck:
        # entries were produced by real worker processes, shipped over
        # the wire, and at least one fast-forwarded the main thread.
        assert result.runtime.entries_shipped > 0
        assert result.runtime.entries_used > 0
        assert result.stats.hits > 0
        assert result.stats.instructions_fast_forwarded > 0
        # Progress identity: executed + fast-forwarded == the work done.
        assert result.total_instructions == (
            result.stats.instructions_executed
            + result.stats.instructions_fast_forwarded)
        assert result.runtime.tasks_wasted == (
            result.runtime.entries_shipped - result.runtime.entries_used)

    def test_superstep_scale_preserves_result(self, workload, recognized):
        expected = sequential_state(workload.program)
        engine = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC.replace(superstep_scale=8),
            recognized=recognized)
        result = engine.run()
        assert result.halted
        assert result.final_state == expected


class TestCrashMidRun:
    def test_worker_killed_mid_run_still_byte_identical(self):
        workload = build_collatz(count=300)
        expected = sequential_state(workload.program)
        killed = []
        from repro.runtime.pool import WorkerPool
        with WorkerPool(workload.program, DETERMINISTIC) as pool:
            def hook(engine, superstep):
                # Past warmup, kill a worker that still owes results —
                # and keep killing at each boundary until the crash
                # ledger shows a death caught work in flight. A single
                # asynchronous kill races with result delivery: a
                # victim that already flushed every in-flight result
                # to the pipe dies as a quiet respawn with nothing
                # left to crash, which on a loaded host can happen
                # every time at one fixed boundary.
                if superstep >= 3 and pool.stats.tasks_crashed == 0:
                    for worker in pool._live():
                        if worker.inflight:
                            os.kill(worker.proc.pid, signal.SIGKILL)
                            killed.append(worker.proc.pid)
                            break

            engine = RealParallelEngine(
                workload.program, config=workload.config,
                runtime_config=DETERMINISTIC, pool=pool,
                boundary_hook=hook)
            result = engine.run()
        assert killed, "hook never fired"
        assert result.halted
        assert result.final_state == expected
        assert result.runtime.workers_respawned >= 1
        assert result.runtime.tasks_crashed >= 1


class TestDegradedPaths:
    def test_unrecognizable_program_runs_plainly(self):
        program = assemble("""
            .entry start
            start:
                mov eax, 7
                store [out], eax
                hlt
            .data
            out: .word 0
        """, name="tiny")
        engine = RealParallelEngine(program,
                                    runtime_config=RuntimeConfig(n_workers=1))
        result = engine.run()
        assert result.halted
        assert result.recognized is None
        assert result.final_state == sequential_state(program)
        assert result.stats.hits == 0

    def test_warm_cache_reuse_across_runs(self):
        workload = build_collatz(count=300)
        expected = sequential_state(workload.program)
        recognized = Recognizer(workload.config).find(workload.program)
        first = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, recognized=recognized).run()
        assert first.runtime.entries_shipped > 0
        second = RealParallelEngine(
            workload.program, config=workload.config,
            runtime_config=DETERMINISTIC, recognized=recognized,
            initial_cache=first.cache).run()
        assert second.final_state == expected
        # Preloaded entries serve hits without re-dispatching that work.
        assert second.stats.hits > 0
        assert second.runtime.tasks_dispatched < first.runtime.tasks_dispatched
