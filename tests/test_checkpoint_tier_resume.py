"""Checkpoints must be portable across interpreter tiers.

A durable checkpoint records machine state, not the tier that computed
it: a snapshot taken while the block-cache fast path was enabled
(``REPRO_FAST_PATH=1``) must restore and finish identically on the
plain reference interpreter, and vice versa. Anything else would mean
the tiers disagree about machine state — exactly the class of bug the
verify subsystem audits for at the cache-entry level.
"""

import pytest

from repro.bench import build_collatz
from repro.cli import main
from repro.core import checkpoint as ck
from repro.core.config import EngineConfig
from repro.runtime import RealParallelEngine, RuntimeConfig

DETERMINISTIC = RuntimeConfig(n_workers=2, inflight_wait_bias=1e9)


def sequential_state(program, limit=50_000_000):
    machine = program.make_machine()
    machine.run(max_instructions=limit)
    assert machine.halted
    return bytes(machine.state.buf)


@pytest.fixture(scope="module")
def workload():
    return build_collatz(count=300)


@pytest.mark.parametrize("first_tier,second_tier",
                         [(True, False), (False, True)],
                         ids=["fast-then-reference", "reference-then-fast"])
def test_real_backend_checkpoint_crosses_tiers(workload, tmp_path,
                                               first_tier, second_tier):
    expected = sequential_state(workload.program)
    config = EngineConfig(fast_path=first_tier)
    cp = ck.Checkpointer(tmp_path, every_instructions=20_000,
                         program=workload.program.name)
    first = RealParallelEngine(
        workload.program, config=config, runtime_config=DETERMINISTIC,
        checkpointer=cp).run()
    assert first.halted
    assert first.final_state == expected
    assert first.runtime.checkpoints_written >= 1

    snapshot = ck.load_latest(tmp_path)
    assert snapshot is not None
    assert 0 < snapshot.instruction_count < first.total_instructions

    resumed = RealParallelEngine(
        workload.program, config=EngineConfig(fast_path=second_tier),
        runtime_config=DETERMINISTIC, resume_from=snapshot).run()
    assert resumed.halted
    assert resumed.final_state == expected
    assert resumed.total_instructions < first.total_instructions


@pytest.mark.parametrize("first_env,second_env", [("1", "0"), ("0", "1")],
                         ids=["fast-then-reference", "reference-then-fast"])
def test_cli_resume_crosses_tiers(tmp_path, monkeypatch, first_env,
                                  second_env):
    """``repro run --resume`` through the env-var form of the switch."""
    source = tmp_path / "kernel.c"
    source.write_text("""
        int total;
        int main() {
            int i;
            for (i = 1; i <= 2000; i++) total += i * i;
            return total;
        }
    """)
    ckdir = str(tmp_path / "ck")
    state_full = tmp_path / "full.bin"
    state_resumed = tmp_path / "resumed.bin"

    monkeypatch.setenv("REPRO_FAST_PATH", first_env)
    assert main(["run", str(source), "--checkpoint-dir", ckdir,
                 "--checkpoint-every", "2000",
                 "--state-out", str(state_full)]) == 0
    assert ck.checkpoint_paths(ckdir)

    monkeypatch.setenv("REPRO_FAST_PATH", second_env)
    assert main(["run", str(source), "--checkpoint-dir", ckdir, "--resume",
                 "--state-out", str(state_resumed)]) == 0
    assert state_full.read_bytes() == state_resumed.read_bytes()
