"""Transition-function semantics: arithmetic, flags, control, memory."""

import pytest
from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.errors import CodeWriteError, IllegalInstruction, MachineError
from repro.isa.registers import Flag, Reg
from repro.machine import DepVector, Machine

_M = 0xFFFFFFFF


def run_asm(body, data="", max_instructions=100_000, dep=False):
    """Assemble a snippet (appending hlt), run it, return the machine."""
    source = ".entry start\nstart:\n%s\n    hlt\n" % body
    if data:
        source += ".data\n%s\n" % data
    program = assemble(source, name="snippet")
    machine = program.make_machine()
    vector = DepVector(program.layout.size) if dep else None
    machine.run(max_instructions=max_instructions, dep=vector)
    assert machine.halted
    return (machine, vector) if dep else machine


def s32(v):
    v &= _M
    return v - (1 << 32) if v >= 1 << 31 else v


class TestDataMovement:
    def test_mov(self):
        m = run_asm("mov eax, 123\n mov ebx, eax")
        assert m.state.get_reg(Reg.EBX) == 123

    def test_mov_negative(self):
        m = run_asm("mov eax, -7")
        assert m.state.get_reg_signed(Reg.EAX) == -7

    def test_xchg(self):
        m = run_asm("mov eax, 1\n mov ebx, 2\n xchg eax, ebx")
        assert m.state.get_reg(Reg.EAX) == 2
        assert m.state.get_reg(Reg.EBX) == 1

    def test_load_store_roundtrip(self):
        m = run_asm("mov eax, 77\n store [slot], eax\n load ebx, [slot]",
                    data="slot: .word 0")
        assert m.state.get_reg(Reg.EBX) == 77

    def test_addressing_modes(self):
        m = run_asm("""
            mov ebx, arr
            mov esi, 2
            load eax, [ebx+esi*4]      ; arr[2]
            load ecx, [ebx+4]          ; arr[1]
            load edx, [arr]            ; arr[0]
            mov edi, 8
            load ebp, [ebx+edi]        ; arr[2] via base+index
        """, data="arr: .word 10, 20, 30")
        assert m.state.get_reg(Reg.EAX) == 30
        assert m.state.get_reg(Reg.ECX) == 20
        assert m.state.get_reg(Reg.EDX) == 10
        assert m.state.get_reg(Reg.EBP) == 30

    def test_lea(self):
        m = run_asm("mov ebx, 100\n mov esi, 3\n lea eax, [ebx+esi*4+8]")
        assert m.state.get_reg(Reg.EAX) == 120

    def test_byte_loads(self):
        m = run_asm("""
            load8u eax, [bytes+1]
            load8s ebx, [bytes+1]
            mov ecx, 258
            store8 [bytes], ecx
            load8u edx, [bytes]
        """, data="bytes: .byte 1, 0xFF")
        assert m.state.get_reg(Reg.EAX) == 0xFF
        assert m.state.get_reg_signed(Reg.EBX) == -1
        assert m.state.get_reg(Reg.EDX) == 258 & 0xFF

    def test_push_pop(self):
        m = run_asm("mov eax, 5\n push eax\n push 9\n pop ebx\n pop ecx")
        assert m.state.get_reg(Reg.EBX) == 9
        assert m.state.get_reg(Reg.ECX) == 5


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 3, 4, 7),
        ("add", 0xFFFFFFFF, 1, 0),
        ("sub", 10, 3, 7),
        ("sub", 0, 1, _M),
        ("imul", 6, 7, 42),
        ("imul", -3, 5, (-15) & _M),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
    ])
    def test_binary_rr(self, op, a, b, expected):
        m = run_asm("mov eax, %d\n mov ebx, %d\n %s eax, ebx"
                    % (s32(a), s32(b), op))
        assert m.state.get_reg(Reg.EAX) == expected

    def test_immediate_forms(self):
        m = run_asm("mov eax, 10\n add eax, -3\n sub eax, 2\n imul eax, 4\n"
                    " and eax, 0xFF\n or eax, 0x100\n xor eax, 1")
        assert m.state.get_reg(Reg.EAX) == ((20 & 0xFF) | 0x100) ^ 1

    def test_inc_dec_neg_not(self):
        m = run_asm("mov eax, 5\n inc eax\n mov ebx, 5\n dec ebx\n"
                    " mov ecx, 5\n neg ecx\n mov edx, 5\n not edx")
        assert m.state.get_reg(Reg.EAX) == 6
        assert m.state.get_reg(Reg.EBX) == 4
        assert m.state.get_reg_signed(Reg.ECX) == -5
        assert m.state.get_reg(Reg.EDX) == (~5) & _M

    def test_idiv_signed_truncation(self):
        m = run_asm("mov eax, -7\n mov ecx, 2\n idiv ecx")
        assert m.state.get_reg_signed(Reg.EAX) == -3  # trunc toward zero
        assert m.state.get_reg_signed(Reg.EDX) == -1

    def test_udiv(self):
        m = run_asm("mov eax, -1\n mov ecx, 2\n udiv ecx")
        assert m.state.get_reg(Reg.EAX) == 0x7FFFFFFF
        assert m.state.get_reg(Reg.EDX) == 1

    def test_division_by_zero_raises(self):
        source = ".entry start\nstart:\n mov eax, 1\n mov ecx, 0\n idiv ecx\n hlt\n"
        program = assemble(source)
        machine = program.make_machine()
        with pytest.raises(MachineError):
            machine.run(max_instructions=100)

    def test_shifts(self):
        m = run_asm("mov eax, 1\n shl eax, 4\n"
                    " mov ebx, 0x80000000\n sar ebx, 31\n"
                    " mov ecx, 0x80000000\n shr ecx, 31\n"
                    " mov edx, 3\n mov esi, 2\n shl edx, esi")
        assert m.state.get_reg(Reg.EAX) == 16
        assert m.state.get_reg(Reg.EBX) == _M  # arithmetic: sign fills
        assert m.state.get_reg(Reg.ECX) == 1
        assert m.state.get_reg(Reg.EDX) == 12

    def test_adc_sbb(self):
        m = run_asm("""
            mov eax, 0xFFFFFFFF
            mov ebx, 1
            add eax, ebx        ; sets CF
            mov ecx, 0
            mov edx, 0
            adc ecx, edx        ; ecx = 0 + 0 + CF = 1
        """)
        assert m.state.get_reg(Reg.ECX) == 1


class TestFlags:
    def test_zero_flag(self):
        m = run_asm("mov eax, 1\n sub eax, 1")
        assert m.state.get_flag(Flag.ZF)

    def test_sign_flag(self):
        m = run_asm("mov eax, 0\n sub eax, 1")
        assert m.state.get_flag(Flag.SF)

    def test_carry_on_unsigned_overflow(self):
        m = run_asm("mov eax, 0xFFFFFFFF\n add eax, 1")
        assert m.state.get_flag(Flag.CF)
        assert m.state.get_flag(Flag.ZF)

    def test_overflow_on_signed_overflow(self):
        m = run_asm("mov eax, 0x7FFFFFFF\n add eax, 1")
        assert m.state.get_flag(Flag.OF)
        assert not m.state.get_flag(Flag.CF)

    def test_cmp_does_not_modify_operands(self):
        m = run_asm("mov eax, 3\n cmp eax, 9")
        assert m.state.get_reg(Reg.EAX) == 3

    def test_inc_preserves_carry(self):
        m = run_asm("mov eax, 0xFFFFFFFF\n add eax, 1\n mov ebx, 1\n inc ebx")
        assert m.state.get_flag(Flag.CF)

    @given(a=st.integers(0, _M), b=st.integers(0, _M))
    def test_add_flags_model(self, a, b):
        m = run_asm("mov eax, %d\n mov ebx, %d\n add eax, ebx"
                    % (s32(a), s32(b)))
        result = (a + b) & _M
        assert m.state.get_reg(Reg.EAX) == result
        assert m.state.get_flag(Flag.CF) == (a + b > _M)
        assert m.state.get_flag(Flag.ZF) == (result == 0)
        assert m.state.get_flag(Flag.SF) == bool(result & 0x80000000)
        overflow = not (-(1 << 31) <= s32(a) + s32(b) < (1 << 31))
        assert m.state.get_flag(Flag.OF) == overflow

    @given(a=st.integers(0, _M), b=st.integers(0, _M))
    def test_sub_flags_model(self, a, b):
        m = run_asm("mov eax, %d\n mov ebx, %d\n sub eax, ebx"
                    % (s32(a), s32(b)))
        result = (a - b) & _M
        assert m.state.get_reg(Reg.EAX) == result
        assert m.state.get_flag(Flag.CF) == (b > a)
        overflow = not (-(1 << 31) <= s32(a) - s32(b) < (1 << 31))
        assert m.state.get_flag(Flag.OF) == overflow

    @given(a=st.integers(-(1 << 31), (1 << 31) - 1),
           b=st.integers(-(1 << 31), (1 << 31) - 1))
    def test_imul_wraps_mod_2_32(self, a, b):
        m = run_asm("mov eax, %d\n mov ebx, %d\n imul eax, ebx" % (a, b))
        assert m.state.get_reg(Reg.EAX) == (a * b) & _M


class TestControlFlow:
    @pytest.mark.parametrize("jcc,a,b,taken", [
        ("jz", 5, 5, True), ("jz", 5, 6, False),
        ("jnz", 5, 6, True), ("jnz", 5, 5, False),
        ("jl", -1, 0, True), ("jl", 0, -1, False),
        ("jle", 3, 3, True), ("jle", 4, 3, False),
        ("jg", 1, 0, True), ("jg", 0, 0, False),
        ("jge", 0, 0, True), ("jge", -2, -1, False),
        ("jb", 1, 2, True), ("jb", 0xFFFFFFFF - 1, 1, False),
        ("jbe", 2, 2, True), ("jbe", 3, 2, False),
        ("ja", 3, 2, True), ("ja", 2, 2, False),
        ("jae", 2, 2, True), ("jae", 1, 2, False),
        ("js", -3, 0, True), ("js", 3, 0, False),
        ("jns", 3, 0, True), ("jns", -3, 0, False),
    ])
    def test_conditions(self, jcc, a, b, taken):
        m = run_asm("""
            mov eax, %d
            mov ebx, %d
            cmp eax, ebx
            %s yes
            mov ecx, 0
            jmp done
        yes:
            mov ecx, 1
        done:
        """ % (s32(a & _M), s32(b & _M), jcc))
        assert m.state.get_reg(Reg.ECX) == (1 if taken else 0)

    def test_call_ret(self):
        m = run_asm("""
            mov eax, 1
            call fn
            add eax, 100
            jmp done
        fn:
            add eax, 10
            ret
        done:
        """)
        assert m.state.get_reg(Reg.EAX) == 111

    def test_indirect_jump_and_call(self):
        m = run_asm("""
            mov eax, fn
            callr eax
            mov ebx, tail
            jmpr ebx
            mov ecx, 666      ; skipped
        tail:
            jmp done
        fn:
            mov ecx, 42
            ret
        done:
        """)
        assert m.state.get_reg(Reg.ECX) == 42

    def test_setcc(self):
        m = run_asm("""
            mov eax, 3
            cmp eax, 5
            setl ebx
            setg ecx
            setz edx
            setnz esi
        """)
        assert m.state.get_reg(Reg.EBX) == 1
        assert m.state.get_reg(Reg.ECX) == 0
        assert m.state.get_reg(Reg.EDX) == 0
        assert m.state.get_reg(Reg.ESI) == 1

    def test_hlt_is_fixed_point(self):
        program = assemble(".entry start\nstart:\n hlt\n")
        machine = program.make_machine()
        machine.run(max_instructions=10)
        eip_after = machine.state.eip
        machine.run(max_instructions=10)
        assert machine.state.eip == eip_after
        assert machine.halted


class TestMemoryProtection:
    def test_store_into_code_raises(self):
        program = assemble("""
            .entry start
            start:
                mov eax, 1
                store [start], eax
                hlt
        """)
        machine = program.make_machine()
        with pytest.raises(CodeWriteError):
            machine.run(max_instructions=10)

    def test_illegal_instruction(self):
        program = assemble("""
            .entry start
            start:
                mov eax, data
                jmpr eax
                hlt
            .data
            data: .word 0xEEEEEEEE, 0
        """)
        machine = program.make_machine()
        with pytest.raises(IllegalInstruction):
            machine.run(max_instructions=10)
