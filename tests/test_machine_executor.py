"""Machine run loops: budgets, breakpoints, traces."""

import pytest

from repro.errors import MachineError
from repro.machine.executor import (
    STOP_BREAKPOINT,
    STOP_HALTED,
    STOP_LIMIT,
    Machine,
)


def test_run_to_halt(counting_program):
    machine = counting_program.make_machine()
    result = machine.run(max_instructions=10_000)
    assert result.reason == STOP_HALTED
    assert machine.halted
    assert machine.state.read_i32(counting_program.symbol("result")) == 10


def test_instruction_budget(counting_program):
    machine = counting_program.make_machine()
    result = machine.run(max_instructions=5)
    assert result.reason == STOP_LIMIT
    assert result.instructions == 5
    assert machine.instruction_count == 5


def test_breakpoint_stops_at_ip(counting_program):
    loop_ip = counting_program.symbol("loop")
    machine = counting_program.make_machine()
    result = machine.run(max_instructions=10_000,
                         break_ips=frozenset((loop_ip,)))
    assert result.reason == STOP_BREAKPOINT
    assert result.eip == loop_ip
    # Each further run crosses the loop once.
    result = machine.run(max_instructions=10_000,
                         break_ips=frozenset((loop_ip,)))
    assert result.reason == STOP_BREAKPOINT


def test_run_on_halted_machine_is_noop(counting_program):
    machine = counting_program.make_machine()
    machine.run(max_instructions=10_000)
    result = machine.run(max_instructions=10)
    assert result.reason == STOP_HALTED
    assert result.instructions == 0


def test_run_to_halt_raises_on_budget(counting_program):
    machine = counting_program.make_machine()
    with pytest.raises(MachineError):
        machine.run_to_halt(max_instructions=3)


def test_ip_trace(counting_program):
    machine = counting_program.make_machine()
    trace = machine.ip_trace(12)
    assert trace[0] == counting_program.entry
    loop_ip = counting_program.symbol("loop")
    assert trace.count(loop_ip) >= 2
    # Trace stops at halt even with budget left.
    machine2 = counting_program.make_machine()
    full = machine2.ip_trace(100_000)
    assert len(full) < 100_000


def test_step_counts(counting_program):
    machine = counting_program.make_machine()
    machine.step()
    machine.step()
    assert machine.instruction_count == 2
