"""Reproducibility: identical inputs give identical experiments."""

import pytest

from repro.bench import build_ising
from repro.cluster import CostModel, server32
from repro.core.engine import ParallelEngine
from repro.core.oracle import TrajectoryRecord
from repro.core.recognizer import Recognizer


@pytest.fixture(scope="module")
def workload():
    return build_ising(nodes=64, spins=6)


def test_recognition_is_deterministic(workload):
    a = Recognizer(workload.config).find(workload.program)
    b = Recognizer(workload.config).find(workload.program)
    assert a.ip == b.ip
    assert a.stride == b.stride
    assert a.mean_gap == b.mean_gap


def test_record_is_deterministic(workload):
    recognized = Recognizer(workload.config).find(workload.program)
    a = TrajectoryRecord(workload.program, recognized, workload.config)
    b = TrajectoryRecord(workload.program, recognized, workload.config)
    assert a.total_instructions == b.total_instructions
    assert a.boundary_positions == b.boundary_positions
    assert [v[2] for v in a.views] == [v[2] for v in b.views]


def test_engine_runs_are_deterministic(workload):
    config = workload.config.replace(converge_supersteps_charge=2.0)
    recognized = Recognizer(config).find(workload.program)
    record = TrajectoryRecord(workload.program, recognized, config)
    factor = recognized.superstep_instructions / 2.3e6 / 5.217
    platform = server32(8, CostModel().scaled(factor))

    def one_run():
        return ParallelEngine(workload.program, platform, config=config,
                              recognized=recognized, record=record).run()

    a, b = one_run(), one_run()
    assert a.scaling == b.scaling
    assert a.stats.hits == b.stats.hits
    assert a.stats.misses_late == b.stats.misses_late
    assert a.stats.misses_nomatch == b.stats.misses_nomatch
    assert a.makespan_seconds == b.makespan_seconds
