"""Shared fixtures: small compiled programs used across test modules,
plus per-test isolation (REPRO_* env, /dev/shm hygiene) and a seeded
test-order shuffle for the CI isolation leg."""

import os
import random

import pytest

from repro.asm import assemble
from repro.minic import compile_source
from repro.runtime import shm

#: The REPRO_* environment as it stood when the suite started. CI legs
#: legitimately export knobs (REPRO_FAST_PATH, REPRO_TRANSPORT); tests
#: are restored to *this* baseline, not to an empty environment.
REPRO_ENV_BASELINE = {key: value for key, value in os.environ.items()
                      if key.startswith("REPRO_")}


def pytest_addoption(parser):
    parser.addoption(
        "--repro-shuffle", type=int, default=None, metavar="SEED",
        help="run tests in a seeded random order (catches order-"
             "dependent state leaks; the CI isolation leg sets this)")


def pytest_collection_modifyitems(config, items):
    seed = config.getoption("--repro-shuffle")
    if seed is not None:
        random.Random(seed).shuffle(items)


@pytest.fixture(autouse=True)
def _repro_isolation():
    """Per-test isolation: restore the REPRO_* env to the session
    baseline and fail any test that leaks a /dev/shm segment.

    Env restoration is silent (it *is* the isolation — a polluting test
    still fails its own assertions if it relied on the leak); segment
    leaks fail loudly because they are resource bugs, not state bugs,
    and the sweep here keeps one bad test from failing every later one.
    """
    yield
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in REPRO_ENV_BASELINE:
            del os.environ[key]
    os.environ.update(REPRO_ENV_BASELINE)
    leaked = shm.live_segment_names()
    if leaked:
        shm.sweep_created_segments()
        pytest.fail("test leaked /dev/shm segments: %s" % ", ".join(leaked))


@pytest.fixture(scope="session")
def counting_program():
    """Tight counted loop: eax ends at 10, result stored to memory."""
    return assemble("""
        .entry start
        start:
            mov eax, 0
        loop:
            inc eax
            cmp eax, 10
            jl loop
            store [result], eax
            hlt
        .data
        result: .word 0
    """, name="counting")


@pytest.fixture(scope="session")
def sum_to_n_source():
    return """
    int result;
    int main() {
        int i;
        int total = 0;
        for (i = 1; i <= 100; i++) {
            total += i;
        }
        result = total;
        return total;
    }
    """


@pytest.fixture(scope="session")
def sum_program(sum_to_n_source):
    return compile_source(sum_to_n_source, name="sum100")


def run_minic(source, max_instructions=2_000_000, globals_to_read=()):
    """Compile, run to halt, and return requested global values."""
    program = compile_source(source, name="t")
    machine = program.make_machine()
    machine.run(max_instructions=max_instructions)
    assert machine.halted, "program did not halt"
    values = {}
    for name in globals_to_read:
        values[name] = machine.state.read_i32(program.symbol("g_" + name))
    values["__return"] = machine.state.get_reg_signed(0)
    return values
