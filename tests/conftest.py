"""Shared fixtures: small compiled programs used across test modules."""

import pytest

from repro.asm import assemble
from repro.minic import compile_source


@pytest.fixture(scope="session")
def counting_program():
    """Tight counted loop: eax ends at 10, result stored to memory."""
    return assemble("""
        .entry start
        start:
            mov eax, 0
        loop:
            inc eax
            cmp eax, 10
            jl loop
            store [result], eax
            hlt
        .data
        result: .word 0
    """, name="counting")


@pytest.fixture(scope="session")
def sum_to_n_source():
    return """
    int result;
    int main() {
        int i;
        int total = 0;
        for (i = 1; i <= 100; i++) {
            total += i;
        }
        result = total;
        return total;
    }
    """


@pytest.fixture(scope="session")
def sum_program(sum_to_n_source):
    return compile_source(sum_to_n_source, name="sum100")


def run_minic(source, max_instructions=2_000_000, globals_to_read=()):
    """Compile, run to halt, and return requested global values."""
    program = compile_source(source, name="t")
    machine = program.make_machine()
    machine.run(max_instructions=max_instructions)
    assert machine.halted, "program did not halt"
    values = {}
    for name in globals_to_read:
        values[name] = machine.state.read_i32(program.symbol("g_" + name))
    values["__return"] = machine.state.get_reg_signed(0)
    return values
