"""Autoscaler policies, elastic pool membership, and conservation."""

import os
import random
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.runtime import shm
from repro.runtime.autoscaler import (
    AutoscaleSignals,
    make_autoscaler,
    resolve_autoscaler,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.pool import TASK_STALE, WorkerPool


def sig(step, active=2, ff=0, executed=0, hits=0, queries=0,
        backpressure=0, utility=0.0, stride=600, parked=0):
    return AutoscaleSignals(step, active, parked, 2, 0, utility, stride,
                            hits, queries, executed, ff, 0, 0,
                            backpressure)


class TestReactivePolicy:
    def test_cold_run_with_no_utility_sheds_a_worker(self):
        scaler = make_autoscaler("react", max_workers=4)
        assert scaler.observe(sig(0, active=2, utility=0.0)) == 1

    def test_cold_run_with_utility_holds(self):
        scaler = make_autoscaler("react", max_workers=4)
        assert scaler.observe(sig(0, active=2, utility=10_000.0)) is None

    def test_high_payoff_plus_backpressure_grows(self):
        scaler = make_autoscaler("react", max_workers=4, cooldown=1)
        scaler.observe(sig(0, utility=10_000.0))
        target = scaler.observe(sig(1, active=2, ff=900, executed=100,
                                    backpressure=3, utility=10_000.0))
        assert target == 3

    def test_high_payoff_without_backpressure_holds(self):
        scaler = make_autoscaler("react", max_workers=4, cooldown=1)
        scaler.observe(sig(0, utility=10_000.0))
        assert scaler.observe(sig(1, ff=900, executed=100,
                                  utility=10_000.0)) is None

    def test_low_payoff_underwater_utility_shrinks(self):
        scaler = make_autoscaler("react", max_workers=4, cooldown=1)
        scaler.observe(sig(0, utility=10_000.0))
        target = scaler.observe(sig(1, active=2, ff=10, executed=990,
                                    utility=0.0))
        assert target == 1

    def test_measured_payoff_outranks_forecast_utility(self):
        # A confident allocator (huge expected utility) holds the pool
        # only until the window carries three real payoff samples; a
        # flat-zero measured payoff then shrinks regardless.
        scaler = make_autoscaler("react", max_workers=4, cooldown=1)
        scaler.observe(sig(0, utility=1e9))
        assert scaler.observe(sig(1, active=2, executed=1000,
                                  utility=1e9)) is None
        assert scaler.observe(sig(2, active=2, executed=2000,
                                  utility=1e9)) is None
        assert scaler.observe(sig(3, active=2, executed=3000,
                                  utility=1e9)) == 1

    def test_grow_clamps_at_max_workers(self):
        scaler = make_autoscaler("react", max_workers=2, cooldown=1)
        scaler.observe(sig(0, utility=10_000.0))
        # active already at the ceiling: the clamped target equals the
        # current width, so no decision is emitted at all.
        assert scaler.observe(sig(1, active=2, ff=900, executed=100,
                                  backpressure=1,
                                  utility=10_000.0)) is None
        assert scaler.decisions == []

    def test_shrink_clamps_at_min_workers(self):
        scaler = make_autoscaler("react", min_workers=1, max_workers=4,
                                 cooldown=1)
        assert scaler.observe(sig(0, active=1, utility=0.0)) is None

    def test_cooldown_rate_limits_decisions(self):
        scaler = make_autoscaler("react", max_workers=4, cooldown=8)
        assert scaler.observe(sig(0, active=3, utility=0.0)) == 2
        # Within the cooldown every boundary is ignored outright.
        for step in range(1, 8):
            assert scaler.observe(sig(step, active=2, utility=0.0)) is None
        assert scaler.observe(sig(8, active=2, utility=0.0)) == 1

    def test_decisions_are_recorded(self):
        scaler = make_autoscaler("react", max_workers=4)
        scaler.observe(sig(5, active=2, utility=0.0))
        (decision,) = scaler.decisions
        assert decision["policy"] == "react"
        assert decision["superstep"] == 5
        assert decision["from"] == 2
        assert decision["target"] == 1


class TestHistogramPolicy:
    def test_needs_three_payoff_samples(self):
        scaler = make_autoscaler("hist", max_workers=4, cooldown=1)
        for step in range(3):
            assert scaler.observe(
                sig(step, ff=step * 100, executed=step * 100)) is None

    def feed(self, scaler, payoff_series, active=2):
        """Feed cumulative counters whose deltas give ``payoff_series``."""
        ff = executed = 0
        target = None
        for step, payoff in enumerate([0.0] + list(payoff_series)):
            ff += int(payoff * 1000)
            executed += int((1.0 - payoff) * 1000)
            target = scaler.observe(sig(step, active=active, ff=ff,
                                        executed=executed))
        return target

    def test_all_payoffs_above_floor_saturates(self):
        scaler = make_autoscaler("hist", max_workers=4, cooldown=1)
        assert self.feed(scaler, [0.8, 0.9, 0.8, 0.9]) == 4

    def test_all_payoffs_below_floor_collapses(self):
        scaler = make_autoscaler("hist", min_workers=0, max_workers=4,
                                 cooldown=1)
        assert self.feed(scaler, [0.05, 0.02, 0.04, 0.01]) == 0

    def test_mixed_distribution_holds_the_middle(self):
        scaler = make_autoscaler("hist", min_workers=0, max_workers=4,
                                 cooldown=1)
        assert self.feed(scaler, [0.9, 0.05, 0.9, 0.05], active=1) == 2


class TestRegressionPolicy:
    def feed(self, scaler, payoff_series, active=2):
        ff = executed = 0
        target = None
        for step, payoff in enumerate([0.0] + list(payoff_series)):
            ff += int(payoff * 1000)
            executed += int((1.0 - payoff) * 1000)
            out = scaler.observe(sig(step, active=active, ff=ff,
                                     executed=executed))
            if out is not None:
                target = out
        return target

    def test_needs_four_payoff_samples(self):
        scaler = make_autoscaler("reg", max_workers=4, cooldown=1)
        assert self.feed(scaler, [0.5, 0.5, 0.5]) is None

    def test_rising_trend_provisions_ahead(self):
        scaler = make_autoscaler("reg", max_workers=4, cooldown=1)
        target = self.feed(scaler, [0.1, 0.3, 0.5, 0.7], active=1)
        assert target == 4  # forecast extrapolates past the last sample

    def test_falling_trend_sheds_capacity(self):
        scaler = make_autoscaler("reg", min_workers=0, max_workers=4,
                                 cooldown=1)
        target = self.feed(scaler, [0.7, 0.5, 0.3, 0.1], active=4)
        assert target == 0


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_autoscaler("bogus")

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            make_autoscaler("react", min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            make_autoscaler("react", max_workers=0)

    def test_resolve_off_returns_none(self):
        assert resolve_autoscaler(RuntimeConfig(n_workers=2)) is None
        assert resolve_autoscaler(
            RuntimeConfig(n_workers=2, autoscale="off")) is None

    def test_resolve_builds_from_runtime_config(self):
        scaler = resolve_autoscaler(RuntimeConfig(
            n_workers=2, autoscale="hist", autoscale_min_workers=1,
            autoscale_max_workers=6, autoscale_cooldown=3,
            autoscale_window=9))
        assert scaler.name == "hist"
        assert (scaler.min_workers, scaler.max_workers) == (1, 6)
        assert scaler.cooldown == 3
        assert scaler.window.size == 9

    def test_resolve_max_defaults_to_pool_width(self):
        scaler = resolve_autoscaler(
            RuntimeConfig(n_workers=3, autoscale="react"))
        assert scaler.max_workers == 3

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            RuntimeConfig(autoscale="sometimes")


# -- elastic pool membership --------------------------------------------------


@pytest.fixture(scope="module")
def loop_program():
    return assemble("""
        .entry start
        start:
            mov eax, 0
        top:
            load ecx, [counter]
            add ecx, 3
            store [counter], ecx
            inc eax
            cmp eax, 50
            jl top
            hlt
        .data
        counter: .word 0
    """, name="autoscale-loop")


def boundary_state(program):
    machine = program.make_machine()
    top = program.symbol("top")
    machine.run(max_instructions=100_000, break_ips=frozenset((top,)))
    return top, bytes(machine.state.buf)


class TestElasticMembership:
    def test_grow_appends_live_workers(self, loop_program):
        with WorkerPool(loop_program, RuntimeConfig(n_workers=1)) as pool:
            assert pool.grow(2) == 2
            assert pool.active_workers == 3
            assert pool.n_workers == 3
            assert pool.stats.workers_grown == 2

    def test_retire_parks_and_unlinks_rings(self, loop_program):
        config = RuntimeConfig(n_workers=2, transport="shm")
        with WorkerPool(loop_program, config) as pool:
            before = shm.live_segment_names()
            assert len(before) == 4  # two rings per worker
            assert pool.retire(1) == 1
            assert pool.active_workers == 1
            assert pool.parked_workers == 1
            assert pool.stats.workers_parked == 1
            # The parked worker's two segments are gone immediately —
            # not at shutdown: a long run must not accumulate them.
            assert len(shm.live_segment_names()) == 2

    def test_grow_refills_parked_slot_first(self, loop_program):
        with WorkerPool(loop_program, RuntimeConfig(n_workers=2)) as pool:
            pool.retire(1)
            assert pool.parked_workers == 1
            assert pool.grow(1) == 1
            # Slot numbering stays dense: no third slot was appended.
            assert pool.n_workers == 2
            assert pool.parked_workers == 0
            assert pool.active_workers == 2

    def test_retired_inflight_surfaces_as_stale(self, loop_program):
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=1, queue_depth=4,
                               task_timeout_seconds=None)
        with WorkerPool(loop_program, config) as pool:
            submitted = 0
            for __ in range(3):
                if pool.submit(rip, 1, 10_000, start) is not None:
                    submitted += 1
            assert submitted
            assert pool.retire(1) == 1
            outcomes = pool.poll(timeout=1.0)
            stale = [o for o in outcomes if o.status == TASK_STALE]
            # Whatever had not answered yet comes back stale (never
            # executed as far as the engine is concerned).
            assert len(outcomes) == submitted
            assert len(stale) == pool.stats.tasks_parked

    def test_resize_moves_toward_target(self, loop_program):
        with WorkerPool(loop_program, RuntimeConfig(n_workers=2)) as pool:
            assert pool.resize(4) == (2, 0)
            assert pool.active_workers == 4
            assert pool.resize(1) == (0, 3)
            assert pool.active_workers == 1
            assert pool.resize(1) == (0, 0)
            assert pool.autoscale_target == 1

    def test_resize_to_zero_stops_dispatch(self, loop_program):
        rip, start = boundary_state(loop_program)
        with WorkerPool(loop_program, RuntimeConfig(n_workers=2)) as pool:
            pool.resize(0)
            assert pool.active_workers == 0
            assert pool.submit(rip, 1, 10_000, start) is None
            assert not pool.speculation_allowed()
            # Deliberate shrink is not a degradation: regrowing resumes
            # speculation at the very next boundary, no cooldown debt.
            assert pool.stats.pool_degradations == 0
            pool.resize(2)
            assert pool.speculation_allowed()

    def test_grow_retire_chaos_leaks_nothing(self, loop_program):
        """Seeded worker-kills landing mid-resize must never leak a
        /dev/shm segment or lose a task outcome."""
        rng = random.Random(0xA5C)
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=2, transport="shm",
                               queue_depth=2, task_timeout_seconds=None,
                               respawn_limit=100)
        pool = WorkerPool(loop_program, config)
        outcomes = []
        try:
            for __ in range(12):
                for __ in range(3):
                    pool.submit(rip, 1, 10_000, start)
                pids = pool.worker_pids()
                if pids and rng.random() < 0.5:
                    os.kill(rng.choice(pids), signal.SIGKILL)
                pool.resize(rng.randint(0, 4))
                outcomes.extend(pool.poll(timeout=0.05))
            deadline = time.monotonic() + 20.0
            while pool.inflight_count() and time.monotonic() < deadline:
                outcomes.extend(pool.poll(timeout=0.2))
        finally:
            pool.shutdown()
        assert shm.live_segment_names() == []
        stats = pool.stats
        assert len(outcomes) == stats.tasks_dispatched
        assert stats.tasks_dispatched == (
            stats.tasks_completed + stats.tasks_crashed
            + stats.tasks_timed_out + stats.tasks_parked)


class TestConservationProperty:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(st.integers(min_value=0, max_value=11),
                        max_size=8))
    def test_every_dispatched_task_has_one_outcome(self, loop_program,
                                                   ops):
        """Counter conservation across arbitrary grow/retire sequences:
        dispatched == completed + crashed + timed-out + parked, and the
        outcome list the engine would see matches exactly."""
        rip, start = boundary_state(loop_program)
        config = RuntimeConfig(n_workers=2, queue_depth=2,
                               task_timeout_seconds=None)
        pool = WorkerPool(loop_program, config)
        outcomes = []
        try:
            for op in ops:
                kind = op % 3
                if kind == 0:
                    pool.submit(rip, 1, 10_000, start)
                elif kind == 1:
                    pool.resize(op // 3)  # 0..3
                else:
                    outcomes.extend(pool.poll(timeout=0.02))
            deadline = time.monotonic() + 20.0
            while pool.inflight_count() and time.monotonic() < deadline:
                outcomes.extend(pool.poll(timeout=0.2))
        finally:
            pool.shutdown()
        stats = pool.stats
        assert len(outcomes) == stats.tasks_dispatched
        assert stats.tasks_dispatched == (
            stats.tasks_completed + stats.tasks_crashed
            + stats.tasks_timed_out + stats.tasks_parked)
        # No faults in this test, so membership is pure bookkeeping:
        # the live width is the initial two plus net growth.
        assert pool.active_workers == \
            2 + stats.workers_grown - stats.workers_parked


# -- engine integration -------------------------------------------------------


class TestEngineIntegration:
    def build(self):
        from repro.bench.collatz import build_collatz
        return build_collatz(count=120)

    def run(self, policy, **kwargs):
        from repro.runtime import RealParallelEngine
        workload = self.build()
        rc = RuntimeConfig(n_workers=2, max_instructions=3_000_000,
                           autoscale=policy, **kwargs)
        engine = RealParallelEngine(workload.program,
                                    config=workload.config,
                                    runtime_config=rc)
        return engine.run()

    def sequential_state(self):
        workload = self.build()
        machine = workload.program.make_machine()
        machine.run(max_instructions=3_000_000)
        return bytes(machine.state.buf)

    @pytest.mark.parametrize("policy", ["react", "hist", "reg"])
    def test_policies_preserve_final_state(self, policy):
        result = self.run(policy, autoscale_max_workers=3,
                          autoscale_cooldown=2, autoscale_window=8)
        assert result.halted
        assert result.final_state == self.sequential_state()
        assert shm.live_segment_names() == []

    def test_decisions_surface_in_runtime_stats(self):
        result = self.run("react", autoscale_cooldown=1)
        runtime = result.runtime.as_dict()
        assert runtime["autoscale_resizes"] >= 1
        assert runtime["autoscale_decisions"]
        assert runtime["autoscale_decisions"][0]["policy"] == "react"

    def test_off_records_nothing(self):
        result = self.run("off")
        runtime = result.runtime.as_dict()
        assert runtime["autoscale_resizes"] == 0
        assert runtime["autoscale_decisions"] == []
