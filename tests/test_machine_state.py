"""StateVector accessors and layout."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError, SegmentationFault
from repro.isa.registers import Flag, Reg
from repro.machine import StateLayout, StateVector
from repro.machine.layout import MEM_OFF, RESERVED_LOW


def make_state(mem_size=4096):
    return StateVector(StateLayout(mem_size))


class TestLayout:
    def test_size_includes_header(self):
        layout = StateLayout(4096)
        assert layout.size == MEM_OFF + 4096
        assert layout.n_bits == layout.size * 8

    def test_rejects_bad_sizes(self):
        with pytest.raises(MachineError):
            StateLayout(0)
        with pytest.raises(MachineError):
            StateLayout(1023)  # not 4-aligned

    def test_vec_index_roundtrip(self):
        layout = StateLayout(4096)
        assert layout.mem_addr(layout.vec_index(100)) == 100

    def test_header_index_has_no_mem_addr(self):
        with pytest.raises(MachineError):
            StateLayout(4096).mem_addr(4)


class TestRegisters:
    def test_set_get(self):
        state = make_state()
        state.set_reg(Reg.EBX, 0xDEADBEEF)
        assert state.get_reg(Reg.EBX) == 0xDEADBEEF

    def test_wraparound(self):
        state = make_state()
        state.set_reg(Reg.EAX, -1)
        assert state.get_reg(Reg.EAX) == 0xFFFFFFFF
        assert state.get_reg_signed(Reg.EAX) == -1

    @given(value=st.integers(0, 0xFFFFFFFF), reg=st.sampled_from(sorted(Reg)))
    def test_register_roundtrip(self, value, reg):
        state = make_state()
        state.set_reg(reg, value)
        assert state.get_reg(reg) == value

    def test_eip_and_flags(self):
        state = make_state()
        state.eip = 0x40
        assert state.eip == 0x40
        state.set_flag(Flag.ZF, True)
        assert state.get_flag(Flag.ZF)
        assert not state.get_flag(Flag.CF)
        state.set_flag(Flag.ZF, False)
        assert state.eflags == 0

    def test_halted_flag(self):
        state = make_state()
        assert not state.halted
        state.status = 1
        assert state.halted


class TestMemory:
    def test_u32_roundtrip_little_endian(self):
        state = make_state()
        state.write_u32(0x100, 0x01020304)
        assert state.read_u32(0x100) == 0x01020304
        assert state.read_u8(0x100) == 0x04
        assert state.read_u8(0x103) == 0x01

    def test_signed_read(self):
        state = make_state()
        state.write_u32(0x100, 0xFFFFFFFE)
        assert state.read_i32(0x100) == -2

    def test_reserved_low_faults(self):
        state = make_state()
        with pytest.raises(SegmentationFault):
            state.read_u32(0)
        with pytest.raises(SegmentationFault):
            state.read_u32(RESERVED_LOW - 1)
        state.read_u32(RESERVED_LOW)  # first legal address

    def test_high_bound_faults(self):
        state = make_state(4096)
        state.write_u32(4092, 1)
        with pytest.raises(SegmentationFault):
            state.write_u32(4093, 1)

    def test_bytes_roundtrip(self):
        state = make_state()
        state.write_bytes(0x200, b"hello")
        assert state.read_bytes(0x200, 5) == b"hello"

    def test_read_words(self):
        state = make_state()
        state.write_u32(0x100, 7)
        state.write_u32(0x104, 0xFFFFFFFF)
        assert state.read_words(0x100, 2) == [7, -1]


class TestIdentity:
    def test_clone_is_independent(self):
        state = make_state()
        state.write_u32(0x100, 42)
        copy = state.clone()
        copy.write_u32(0x100, 99)
        assert state.read_u32(0x100) == 42

    def test_equality(self):
        a, b = make_state(), make_state()
        assert a == b
        b.set_reg(Reg.EAX, 1)
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(make_state())

    def test_differing_indices(self):
        a, b = make_state(), make_state()
        b.set_reg(Reg.EAX, 0xFF)
        assert a.differing_indices(b) == [0]
