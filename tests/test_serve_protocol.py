"""Serve protocol: framing, bounds, and failure modes."""

import socket
import struct

import pytest

from repro.serve import protocol


def socket_pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            protocol.send_message(a, {"verb": "ping", "n": 7})
            message = protocol.recv_message(b)
            assert message == {"verb": "ping", "n": 7}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_order(self):
        a, b = socket_pair()
        try:
            for i in range(5):
                protocol.send_message(a, {"i": i})
            for i in range(5):
                assert protocol.recv_message(b) == {"i": i}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        try:
            a.close()
            assert protocol.recv_message(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_is_protocol_error(self):
        a, b = socket_pair()
        try:
            frame = protocol.encode_message({"verb": "ping"})
            a.sendall(frame[:len(frame) - 3])  # truncate the body
            a.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_oversized_length_rejected_without_allocation(self):
        a, b = socket_pair()
        try:
            a.sendall(struct.pack("!I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_zero_length_rejected(self):
        a, b = socket_pair()
        try:
            a.sendall(struct.pack("!I", 0))
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversized_send_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_message(
                {"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})


class TestBody:
    def test_non_object_body_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"[1, 2, 3]")

    def test_undecodable_body_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"\xff\xfe not json")

    def test_responses(self):
        ok = protocol.ok_response(x=1)
        assert ok["ok"] is True and ok["x"] == 1
        err = protocol.error_response(ValueError("boom"), code="internal")
        assert err["ok"] is False
        assert err["code"] == "internal"
        assert "boom" in err["error"]


class TestDaemonRunning:
    def test_no_socket_means_not_running(self, tmp_path):
        assert not protocol.daemon_running(str(tmp_path / "missing.sock"))

    def test_stale_file_means_not_running(self, tmp_path):
        stale = tmp_path / "stale.sock"
        stale.write_bytes(b"")
        assert not protocol.daemon_running(str(stale))
