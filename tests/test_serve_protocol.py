"""Serve protocol: framing, bounds, and failure modes."""

import socket
import struct

import pytest

from repro.serve import ServeClient, ServeConfig, SpeculationDaemon
from repro.serve import protocol


def socket_pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            protocol.send_message(a, {"verb": "ping", "n": 7})
            message = protocol.recv_message(b)
            assert message == {"verb": "ping", "n": 7}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_order(self):
        a, b = socket_pair()
        try:
            for i in range(5):
                protocol.send_message(a, {"i": i})
            for i in range(5):
                assert protocol.recv_message(b) == {"i": i}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        try:
            a.close()
            assert protocol.recv_message(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_is_protocol_error(self):
        a, b = socket_pair()
        try:
            frame = protocol.encode_message({"verb": "ping"})
            a.sendall(frame[:len(frame) - 3])  # truncate the body
            a.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_oversized_length_rejected_without_allocation(self):
        a, b = socket_pair()
        try:
            a.sendall(struct.pack("!I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_zero_length_rejected(self):
        a, b = socket_pair()
        try:
            a.sendall(struct.pack("!I", 0))
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversized_send_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_message(
                {"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})


class TestBody:
    def test_non_object_body_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"[1, 2, 3]")

    def test_undecodable_body_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"\xff\xfe not json")

    def test_responses(self):
        ok = protocol.ok_response(x=1)
        assert ok["ok"] is True and ok["x"] == 1
        err = protocol.error_response(ValueError("boom"), code="internal")
        assert err["ok"] is False
        assert err["code"] == "internal"
        assert "boom" in err["error"]


class TestDaemonRunning:
    def test_no_socket_means_not_running(self, tmp_path):
        assert not protocol.daemon_running(str(tmp_path / "missing.sock"))

    def test_stale_file_means_not_running(self, tmp_path):
        stale = tmp_path / "stale.sock"
        stale.write_bytes(b"")
        assert not protocol.daemon_running(str(stale))


@pytest.fixture
def daemon(tmp_path):
    config = ServeConfig(socket_path=str(tmp_path / "serve.sock"))
    instance = SpeculationDaemon(config).start()
    yield instance
    instance.close()


class TestDaemonHardening:
    """Hostile bytes on the wire: every shape of malformed input gets a
    per-connection error (or a clean close), never a daemon crash or a
    stuck accept loop."""

    def assert_daemon_alive(self, daemon):
        with ServeClient(daemon.config.socket_path, client="probe") as c:
            assert c.ping()["ok"]

    def test_garbage_length_prefix(self, daemon):
        sock = protocol.connect(daemon.config.socket_path, timeout=10.0)
        try:
            sock.sendall(b"GET ")  # an ASCII prefix reads as a huge length
            response = protocol.recv_message(sock)
            assert response["ok"] is False
            assert response["code"] == "protocol"
            # The poisoned connection is closed after the error frame.
            assert protocol.recv_message(sock) is None
        finally:
            sock.close()
        assert daemon.protocol_errors >= 1
        self.assert_daemon_alive(daemon)

    def test_garbage_trailing_the_prefix_never_crashes(self, daemon):
        # With unread hostile bytes still queued the error frame may be
        # lost to a reset — either way the *daemon* stays healthy.
        sock = protocol.connect(daemon.config.socket_path, timeout=10.0)
        try:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
            try:
                response = protocol.recv_message(sock)
                assert response is None or response["ok"] is False
            except (OSError, protocol.ProtocolError):
                pass
        finally:
            sock.close()
        self.assert_daemon_alive(daemon)

    def test_over_cap_frame_rejected_without_allocation(self, daemon):
        sock = protocol.connect(daemon.config.socket_path, timeout=10.0)
        try:
            sock.sendall(struct.pack("!I", protocol.MAX_FRAME_BYTES + 1))
            response = protocol.recv_message(sock)
            assert response["ok"] is False
            assert response["code"] == "protocol"
        finally:
            sock.close()
        self.assert_daemon_alive(daemon)

    def test_truncated_frame_then_close(self, daemon):
        sock = protocol.connect(daemon.config.socket_path, timeout=10.0)
        frame = protocol.encode_message({"verb": "ping"})
        sock.sendall(frame[:len(frame) - 3])
        sock.close()  # EOF mid-frame on the daemon side
        self.assert_daemon_alive(daemon)

    def test_non_object_body_gets_error_response(self, daemon):
        sock = protocol.connect(daemon.config.socket_path, timeout=10.0)
        try:
            body = b"[1, 2, 3]"
            sock.sendall(struct.pack("!I", len(body)) + body)
            response = protocol.recv_message(sock)
            assert response["ok"] is False
            assert response["code"] == "protocol"
        finally:
            sock.close()
        self.assert_daemon_alive(daemon)

    def test_half_open_socket_does_not_wedge_accept(self, daemon):
        # A client that connects and never sends a byte must not block
        # the accept loop (connections are served on their own threads
        # with a read timeout, not inline in accept).
        idlers = [protocol.connect(daemon.config.socket_path, timeout=10.0)
                  for __ in range(4)]
        try:
            self.assert_daemon_alive(daemon)
            with ServeClient(daemon.config.socket_path, client="live") as c:
                assert c.stats()["queue"]["queued"] == 0
        finally:
            for sock in idlers:
                sock.close()

    def test_burst_of_bad_connections_is_contained(self, daemon):
        for __ in range(8):
            sock = protocol.connect(daemon.config.socket_path, timeout=10.0)
            sock.sendall(b"\xff\xff\xff\xff")
            sock.close()
        self.assert_daemon_alive(daemon)
