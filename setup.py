"""Setup shim.

The environment this repo is developed in has no network access and no
``wheel`` package, so ``pip install -e .`` (PEP 660) cannot build an
editable wheel. ``python setup.py develop`` provides the equivalent
editable install using setuptools alone; with ``wheel`` available,
``pip install -e .`` works as usual.
"""

from setuptools import setup

setup()
