"""Configuration for the speculation-as-a-service daemon."""

import os
import tempfile


def default_socket_path():
    """``REPRO_SERVE_SOCKET`` or a per-user path under the temp dir."""
    env = os.environ.get("REPRO_SERVE_SOCKET")
    if env:
        return env
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), "repro-serve-%d.sock" % uid)


class ServeConfig:
    """Tunables for :class:`~repro.serve.daemon.SpeculationDaemon`.

    Kept separate from :class:`~repro.runtime.config.RuntimeConfig`
    (one job's execution substrate) the same way that is kept separate
    from ``EngineConfig``: these knobs describe the *service* — socket,
    worker budget across all tenants, fairness bounds, cache
    persistence cadence — and a one-shot run never reads them.
    """

    def __init__(self,
                 socket_path=None,
                 # Total live workers across every warm pool. The
                 # resource manager admits a job only when its pool fits
                 # the budget, retiring idle pools LRU to make room —
                 # the daemon's capacity is workers, not jobs.
                 worker_budget=4,
                 # Workers per newly created pool, unless the submit
                 # requests otherwise (a warm pool keeps its width; the
                 # request is a preference, the warm pool wins).
                 workers_per_job=2,
                 # Concurrent running jobs (each on its own pool; jobs
                 # sharing an image serialize on their shared pool).
                 max_concurrent_jobs=2,
                 # Fairness bounds (see serve/queue.py).
                 max_running_per_client=1,
                 max_queued_per_client=8,
                 # Shared-cache persistence: directory for shard files
                 # (None = memory only) and how many finished jobs may
                 # elapse between flushes (1 = flush after every job;
                 # shutdown always flushes).
                 cache_dir=None,
                 flush_every_jobs=1,
                 cache_capacity_bytes=None,
                 # Crash-only job journal: every accepted submission is
                 # WAL'd here and replayed on restart. Defaults beside
                 # the cache shards when a cache_dir is given; None with
                 # no cache_dir means a memory-only (non-durable)
                 # daemon. journal_fsync=False trades durability of the
                 # last few records for append latency.
                 journal_dir=None,
                 journal_fsync=True,
                 result_store_bytes=256 * 1024 * 1024,
                 # Watchdog: per-job wall-clock deadline (None = no
                 # cap), how long heartbeats may stop before the job is
                 # condemned, grace between escalation rungs, and the
                 # supervision tick.
                 job_deadline_seconds=None,
                 no_progress_seconds=20.0,
                 kill_grace_seconds=5.0,
                 watchdog_interval_seconds=0.5,
                 # Self-check: probe cadence and the shm headroom below
                 # which the daemon flips into degraded mode (sequential
                 # execution, cache write-through off). None follows
                 # REPRO_SHM_HEADROOM_BYTES (default 64 MiB); 0 disables
                 # the check.
                 selfcheck_interval_seconds=2.0,
                 min_shm_headroom_bytes=None,
                 # Resource governance (see runtime/resources.py): the
                 # admission-time floors behind load shedding. A submit
                 # arriving while free disk under the journal/cache
                 # directory is below min_disk_free_bytes, fd headroom
                 # is below min_fd_headroom, or max_queued_jobs jobs are
                 # already queued is refused with the retryable
                 # "overloaded" error code instead of being accepted
                 # and failed later. None follows REPRO_DISK_FLOOR_BYTES
                 # / REPRO_FD_HEADROOM / REPRO_MAX_QUEUED_JOBS; 0
                 # disables the corresponding check.
                 min_disk_free_bytes=None,
                 min_fd_headroom=None,
                 max_queued_jobs=None,
                 # Serve-tier chaos: a FaultPlan (instance or spec
                 # string) whose resource faults the *daemon* consumes
                 # at its own seams (disk_full at journal/cache writes,
                 # fd_exhaust at admission). Deliberately separate from
                 # REPRO_FAULT_PLAN, which the per-job pools inside the
                 # daemon would also read — one plan must not be applied
                 # twice at two layers. None follows
                 # REPRO_SERVE_FAULT_PLAN.
                 fault_plan=None,
                 # Lifecycle: how long a drain waits for running jobs
                 # before cancelling them at their next boundary, and
                 # how long a finished job waits for its pool's
                 # straggler speculations before force-clearing them.
                 drain_seconds=10.0,
                 quiesce_seconds=5.0,
                 # Per-job defaults (submit options override).
                 max_instructions=500_000_000,
                 superstep_scale=1,
                 task_timeout_seconds=30.0,
                 transport=None,
                 # Elastic autoscaling policy for job pools ("off",
                 # "react", "hist", "reg"). When on, each job's engine
                 # may shrink its pool below the lease width — the freed
                 # workers return to the shared budget, so other warm
                 # namespaces can admit jobs sooner. The lease width
                 # stays the per-pool ceiling.
                 autoscale="off",
                 # Socket accept backlog.
                 backlog=16):
        self.socket_path = socket_path or default_socket_path()
        self.worker_budget = worker_budget
        self.workers_per_job = workers_per_job
        self.max_concurrent_jobs = max_concurrent_jobs
        self.max_running_per_client = max_running_per_client
        self.max_queued_per_client = max_queued_per_client
        self.cache_dir = cache_dir
        self.flush_every_jobs = max(1, int(flush_every_jobs))
        self.cache_capacity_bytes = cache_capacity_bytes
        if journal_dir is None and cache_dir is not None:
            journal_dir = os.path.join(cache_dir, "journal")
        self.journal_dir = journal_dir
        self.journal_fsync = journal_fsync
        self.result_store_bytes = result_store_bytes
        self.job_deadline_seconds = job_deadline_seconds
        self.no_progress_seconds = no_progress_seconds
        self.kill_grace_seconds = kill_grace_seconds
        self.watchdog_interval_seconds = watchdog_interval_seconds
        self.selfcheck_interval_seconds = selfcheck_interval_seconds
        from repro.runtime import resources
        if min_shm_headroom_bytes is None:
            min_shm_headroom_bytes = resources.default_shm_headroom_bytes()
        self.min_shm_headroom_bytes = min_shm_headroom_bytes
        if min_disk_free_bytes is None:
            min_disk_free_bytes = resources.default_disk_floor_bytes()
        self.min_disk_free_bytes = min_disk_free_bytes
        if min_fd_headroom is None:
            min_fd_headroom = resources.default_fd_headroom()
        self.min_fd_headroom = min_fd_headroom
        if max_queued_jobs is None:
            max_queued_jobs = resources.default_max_queued_jobs()
        self.max_queued_jobs = max_queued_jobs
        self.fault_plan = fault_plan
        self.drain_seconds = drain_seconds
        self.quiesce_seconds = quiesce_seconds
        self.max_instructions = max_instructions
        self.superstep_scale = superstep_scale
        self.task_timeout_seconds = task_timeout_seconds
        self.transport = transport
        if autoscale not in ("off", "react", "hist", "reg"):
            raise ValueError("autoscale must be off/react/hist/reg, "
                             "got %r" % (autoscale,))
        self.autoscale = autoscale
        self.backlog = backlog

    def resolve_fault_plan(self):
        """The effective serve-tier plan: the configured one, or the
        ``REPRO_SERVE_FAULT_PLAN`` spec."""
        from repro.runtime.faults import FaultPlan, resolve_fault_plan
        if self.fault_plan is not None:
            return resolve_fault_plan(self.fault_plan)
        spec = os.environ.get("REPRO_SERVE_FAULT_PLAN")
        return FaultPlan.parse(spec) if spec else None

    def replace(self, **kwargs):
        """A copy with the given fields overridden."""
        fields = dict(self.__dict__)
        fields.update(kwargs)
        return ServeConfig(**fields)

    def __repr__(self):
        inner = ", ".join("%s=%r" % kv for kv in sorted(self.__dict__.items()))
        return "ServeConfig(%s)" % inner
