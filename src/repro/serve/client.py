"""Thin client for the speculation daemon.

One :class:`ServeClient` wraps one socket connection and speaks the
:mod:`repro.serve.protocol` verbs as methods. It is deliberately dumb:
no retries, no local state beyond the socket — the daemon owns every
job's truth, and a client that reconnects can poll any job by id.
``repro submit`` and ``repro jobs`` are built on this; so are the
integration tests, which drive two clients concurrently against one
daemon.
"""

import base64
import getpass
import os
import socket
import time

from repro.errors import ReproError
from repro.serve import protocol
from repro.serve.config import default_socket_path


class ServeClientError(ReproError):
    """The daemon refused a request or the connection failed."""

    def __init__(self, message, code="error"):
        super().__init__(message)
        self.code = code


def default_client_name():
    """Stable-ish per-user default for the fairness bookkeeping."""
    try:
        user = getpass.getuser()
    except (KeyError, OSError):
        user = "uid%d" % os.getuid() if hasattr(os, "getuid") else "client"
    return "%s@%d" % (user, os.getpid())


class ServeClient:
    """One connection to a running daemon.

    Usable as a context manager; every method raises
    :class:`ServeClientError` (with the daemon's ``code``) on a refused
    request, and plain ``OSError`` if the socket dies.
    """

    def __init__(self, socket_path=None, client=None, timeout=30.0):
        self.socket_path = socket_path or default_socket_path()
        self.client = client or default_client_name()
        self.timeout = timeout
        try:
            self._sock = protocol.connect(self.socket_path, timeout=timeout)
        except OSError as exc:
            raise ServeClientError(
                "no daemon at %s (%s) — start one with `repro serve`"
                % (self.socket_path, exc), code="no-daemon")

    # -- plumbing ------------------------------------------------------------

    def request(self, verb, **fields):
        """One round trip; returns the ok-response payload dict."""
        fields["verb"] = verb
        fields["protocol"] = protocol.PROTOCOL_VERSION
        protocol.send_message(self._sock, fields)
        while True:
            try:
                response = protocol.recv_message(self._sock)
            except socket.timeout:
                raise ServeClientError(
                    "daemon did not answer %r within %.0fs"
                    % (verb, self.timeout), code="timeout")
            break
        if response is None:
            raise ServeClientError("daemon closed the connection",
                                   code="disconnected")
        if not response.get("ok"):
            raise ServeClientError(response.get("error", "request refused"),
                                   code=response.get("code", "error"))
        return response

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- verbs ---------------------------------------------------------------

    def ping(self):
        return self.request(protocol.VERB_PING)

    def submit(self, program, **options):
        """Submit a :class:`~repro.loader.image.Program`; returns the
        submit payload (``job_id``, ``namespace``, ``warm_entries``)."""
        return self.request(protocol.VERB_SUBMIT,
                            client=self.client,
                            program=program.to_dict(),
                            options=options)

    def poll(self, job_id):
        """Current summary row for one job."""
        return self.request(protocol.VERB_POLL, job_id=job_id)["job"]

    def wait(self, job_id, timeout=120.0, interval=0.05):
        """Poll until the job is terminal; returns its final summary."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.poll(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServeClientError("job %s still %s after %.0fs"
                                       % (job_id, job["state"], timeout),
                                       code="timeout")
            time.sleep(interval)

    def result(self, job_id, include_state=True):
        """Full result payload of a DONE job."""
        response = self.request(protocol.VERB_RESULT, job_id=job_id,
                                include_state=include_state)
        return response["result"]

    def final_state(self, job_id):
        """The job's final machine state, as raw bytes — the
        byte-identical-to-sequential artifact."""
        result = self.result(job_id, include_state=True)
        return base64.b64decode(result["final_state"])

    def run(self, program, timeout=120.0, **options):
        """Submit + wait + fetch: the synchronous convenience path
        ``repro submit --wait`` uses. Returns the full result payload."""
        job_id = self.submit(program, **options)["job_id"]
        job = self.wait(job_id, timeout=timeout)
        if job["state"] != "done":
            raise ServeClientError("job %s %s: %s"
                                   % (job_id, job["state"], job.get("error")),
                                   code="job-" + job["state"])
        return self.result(job_id)

    def cancel(self, job_id):
        return self.request(protocol.VERB_CANCEL, job_id=job_id)

    def stats(self):
        return self.request(protocol.VERB_STATS)["stats"]

    def jobs(self):
        return self.request(protocol.VERB_JOBS)["jobs"]

    def shutdown(self, drain=True):
        """Ask the daemon to stop (drains running jobs by default)."""
        return self.request(protocol.VERB_SHUTDOWN, drain=drain)
