"""Fault-hardened client for the speculation daemon.

One :class:`ServeClient` wraps one socket connection and speaks the
:mod:`repro.serve.protocol` verbs as methods. The daemon owns every
job's truth; the client's job is to keep a request alive across the
failures a long-lived service actually has:

* **busy** (per-client admission control), **overloaded** (resource
  governor load shedding) and **connect errors** retry with bounded
  exponential backoff plus jitter, so a thundering herd of clients
  does not re-synchronize against a recovering daemon;
* a **dead or restarted daemon** is survived transparently: every
  retryable verb reconnects and resends. All retried verbs are
  idempotent by construction — ``submit`` auto-generates an
  idempotency token, so a resend after an ambiguous failure dedups
  onto the original job instead of double-submitting, and the same
  token lets ``poll``/``result`` find the job on a *replayed* daemon
  that was SIGKILLed and restarted mid-run;
* a **timed-out round trip** poisons the connection (a stale response
  could arrive later and desync request/response pairing), so the
  socket is dropped and rebuilt before any retry.

``retries=0`` restores the deliberately-dumb PR 6 behavior — one
attempt, every failure surfaced — which the protocol-robustness tests
use to observe raw daemon behavior.
"""

import base64
import getpass
import os
import random
import socket
import time
import uuid

from repro.errors import ReproError
from repro.serve import protocol
from repro.serve.config import default_socket_path

#: Response codes that are never retried: the daemon answered
#: authoritatively and asking again cannot change the answer.
_FATAL_CODES = frozenset((
    "bad-request", "bad-program", "bad-verb", "not-found", "not-done",
    "draining", "result-evicted", "internal", "protocol",
))


class ServeClientError(ReproError):
    """The daemon refused a request or the connection failed."""

    def __init__(self, message, code="error"):
        super().__init__(message)
        self.code = code


def default_client_name():
    """Stable-ish per-user default for the fairness bookkeeping."""
    try:
        user = getpass.getuser()
    except (KeyError, OSError):
        user = "uid%d" % os.getuid() if hasattr(os, "getuid") else "client"
    return "%s@%d" % (user, os.getpid())


class ServeClient:
    """One logical connection to a daemon, resilient to its restarts.

    Usable as a context manager; every method raises
    :class:`ServeClientError` (with the daemon's ``code``) once its
    retry budget is spent. ``timeout`` bounds one round trip;
    ``retries`` bounds how many times a retryable request is re-sent on
    busy/connect/disconnect failures, with delays growing
    ``backoff_base * 2^attempt`` up to ``backoff_max``, jittered to
    50–100% of nominal.
    """

    def __init__(self, socket_path=None, client=None, timeout=30.0,
                 retries=5, backoff_base=0.05, backoff_max=2.0,
                 jitter_seed=None, rng=None):
        self.socket_path = socket_path or default_socket_path()
        self.client = client or default_client_name()
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.reconnects = 0
        self.retried_requests = 0
        self.last_token = None
        # Backoff jitter is seedable (or the RNG injectable outright)
        # so seeded chaos runs reproduce their reconnect timing; the
        # default stays entropy-seeded — real fleets *should* desync.
        self._rng = rng if rng is not None else random.Random(jitter_seed)
        self._sock = None
        self._connect()  # fail fast when there is no daemon at all

    # -- plumbing ------------------------------------------------------------

    def _connect(self):
        sock = None
        try:
            sock = protocol.connect(self.socket_path, timeout=self.timeout)
        except OSError as exc:
            raise ServeClientError(
                "no daemon at %s (%s) — start one with `repro serve`"
                % (self.socket_path, exc), code="no-daemon")
        self._sock = sock

    def _drop_connection(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _backoff(self, attempt):
        delay = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        return delay * (0.5 + self._rng.random() / 2.0)

    def _round_trip(self, fields):
        if self._sock is None:
            self._connect()
            self.reconnects += 1
        protocol.send_message(self._sock, fields)
        response = protocol.recv_message(self._sock)
        if response is None:
            raise ServeClientError("daemon closed the connection",
                                   code="disconnected")
        if not response.get("ok"):
            raise ServeClientError(response.get("error", "request refused"),
                                   code=response.get("code", "error"))
        return response

    def request(self, verb, _retryable=True, **fields):
        """One request, retried across busy responses, connect errors,
        daemon restarts, and timed-out round trips (retryable verbs are
        all idempotent — see the module docstring). Returns the
        ok-response payload dict."""
        fields["verb"] = verb
        fields["protocol"] = protocol.PROTOCOL_VERSION
        attempt = 0
        while True:
            reconnect = True
            try:
                return self._round_trip(dict(fields))
            except socket.timeout:
                # A late response would desync the stream: poison the
                # connection whether or not we retry.
                self._drop_connection()
                error = ServeClientError(
                    "daemon did not answer %r within %.0fs"
                    % (verb, self.timeout), code="timeout")
            except (OSError, protocol.ProtocolError) as exc:
                self._drop_connection()
                error = ServeClientError(
                    "connection to %s failed: %s"
                    % (self.socket_path, exc), code="connection")
            except ServeClientError as exc:
                if exc.code in ("disconnected", "no-daemon", "connection"):
                    self._drop_connection()
                elif exc.code in ("busy", "overloaded"):
                    # Daemon healthy, just saturated (per-client bound)
                    # or shedding load (resource governor): back off on
                    # the same connection and retry.
                    reconnect = False
                else:
                    raise  # authoritative refusal: retrying cannot help
                error = exc
            if not _retryable or attempt >= self.retries:
                raise error
            if not reconnect:
                pass  # keep the healthy connection for the retry
            self.retried_requests += 1
            time.sleep(self._backoff(attempt))
            attempt += 1

    def close(self):
        self._drop_connection()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- verbs ---------------------------------------------------------------

    def ping(self):
        return self.request(protocol.VERB_PING)

    def status(self):
        """The daemon's health probe: journal, watchdog, degraded-mode
        state (``repro serve --status``)."""
        return self.request(protocol.VERB_STATUS)["status"]

    def submit(self, program, token=None, **options):
        """Submit a :class:`~repro.loader.image.Program`; returns the
        submit payload (``job_id``, ``namespace``, ``warm_entries``,
        ``deduped``, plus the ``token`` used).

        Every submit carries an idempotency token (auto-generated when
        not supplied), which makes the verb safely retryable: a resend
        after an ambiguous failure — or against a restarted daemon that
        replayed its journal — dedups onto the original job.
        """
        token = token or uuid.uuid4().hex
        response = self.request(protocol.VERB_SUBMIT,
                                client=self.client,
                                program=program.to_dict(),
                                options=options,
                                token=token)
        self.last_token = token
        response.setdefault("token", token)
        return response

    def poll(self, job_id=None, token=None):
        """Current summary row for one job, by id or by token (tokens
        survive a daemon restart even if the id was never learned)."""
        return self.request(protocol.VERB_POLL, job_id=job_id,
                            token=token)["job"]

    def wait(self, job_id=None, timeout=120.0, interval=0.05, token=None):
        """Poll until the job is terminal; returns its final summary.
        Individual polls ride the retry machinery, so a daemon restart
        mid-wait is just a longer gap between samples."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.poll(job_id, token=token)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServeClientError("job %s still %s after %.0fs"
                                       % (job_id or token, job["state"],
                                          timeout),
                                       code="timeout")
            time.sleep(interval)

    def result(self, job_id=None, include_state=True, token=None):
        """Full result payload of a DONE job."""
        response = self.request(protocol.VERB_RESULT, job_id=job_id,
                                token=token, include_state=include_state)
        return response["result"]

    def final_state(self, job_id=None, token=None):
        """The job's final machine state, as raw bytes — the
        byte-identical-to-sequential artifact."""
        result = self.result(job_id, include_state=True, token=token)
        return base64.b64decode(result["final_state"])

    def run(self, program, timeout=120.0, token=None, **options):
        """Submit + wait + fetch: the synchronous convenience path
        ``repro submit --wait`` uses. Returns the full result payload.
        Survives a daemon restart mid-run: the token re-finds (or
        re-creates) the job on whatever daemon answers next."""
        submitted = self.submit(program, token=token, **options)
        job_id = submitted["job_id"]
        used_token = submitted.get("token")
        job = self.wait(job_id, timeout=timeout, token=used_token)
        if job["state"] != "done":
            raise ServeClientError("job %s %s: %s"
                                   % (job_id, job["state"], job.get("error")),
                                   code="job-" + job["state"])
        return self.result(job_id, token=used_token)

    def cancel(self, job_id=None, token=None):
        return self.request(protocol.VERB_CANCEL, job_id=job_id,
                            token=token)

    def stats(self):
        return self.request(protocol.VERB_STATS)["stats"]

    def jobs(self):
        return self.request(protocol.VERB_JOBS)["jobs"]

    def shutdown(self, drain=True):
        """Ask the daemon to stop (drains running jobs by default)."""
        return self.request(protocol.VERB_SHUTDOWN, drain=drain,
                            _retryable=False)
