"""Central job queue and admission control for the daemon.

The split follows the queue/resource-manager pattern of distributed
speculation services (ParSplice's splicer feeds segment producers
through a central task queue; see PAPERS.md): the **queue** decides
*which* job runs next — fair round-robin across clients, FIFO within a
client — while the daemon's resource manager decides *whether* it can
run now (a warm pool free for its image, worker budget available).
Admission control bounds each client's backlog and concurrency so one
chatty client cannot starve the rest of a fixed worker budget.

A :class:`Job` is the unit of work: one program image executed to halt
under the byte-identical-to-sequential guarantee, against the shared
trajectory-cache namespace of its image hash. Jobs move
``QUEUED -> RUNNING -> DONE | FAILED | CANCELLED``; a queued job
cancels by dequeue, a running one by a flag the engine's boundary hook
checks (speculative work is disposable, so abandoning it at a superstep
boundary is always safe).
"""

import threading
import time
from collections import OrderedDict, deque

from repro.errors import ReproError

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)


class QueueError(ReproError):
    """The queue was misused."""


class BacklogFull(ReproError):
    """Admission control refused a submit (per-client backlog bound)."""


class JobCancelled(ReproError):
    """Raised inside a job's engine at a boundary after a cancel."""


class Job:
    """One submitted execution and everything learned about it."""

    __slots__ = ("job_id", "client", "program", "namespace", "options",
                 "state", "submitted_at", "started_at", "finished_at",
                 "result", "error", "cancel_event", "wall_seconds",
                 "token", "incidents", "restored")

    def __init__(self, job_id, client, program, namespace, options=None,
                 token=None):
        self.job_id = job_id
        self.client = client
        self.program = program  # loader.image.Program
        self.namespace = namespace  # program.image_hash()
        self.options = dict(options or {})
        self.state = JOB_QUEUED
        self.submitted_at = time.time()
        self.started_at = None
        self.finished_at = None
        self.result = None  # full payload once DONE
        self.error = None
        self.cancel_event = threading.Event()
        self.wall_seconds = None
        # Client-supplied idempotency token: a resubmission carrying
        # the same token dedups onto this job, across daemon restarts.
        self.token = token
        self.incidents = []  # structured watchdog incidents, if any
        self.restored = False  # replayed from the journal after a crash

    # -- transitions (caller holds whatever lock guards the job) -------------

    def mark_running(self):
        if self.state != JOB_QUEUED:
            raise QueueError("job %s cannot start from state %s"
                             % (self.job_id, self.state))
        self.state = JOB_RUNNING
        self.started_at = time.time()

    def finish(self, state, result=None, error=None):
        if self.state in TERMINAL_STATES:
            raise QueueError("job %s already terminal (%s)"
                             % (self.job_id, self.state))
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.time()
        if self.started_at is not None:
            self.wall_seconds = self.finished_at - self.started_at

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    def summary(self):
        """One row for the ``jobs`` verb — small by construction (no
        state bytes, no per-splice detail; ``result`` has those)."""
        out = {
            "job_id": self.job_id,
            "client": self.client,
            "program": self.program.name,
            "namespace": self.namespace,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "token": self.token,
        }
        if self.restored:
            out["restored"] = True
        if self.incidents:
            out["incidents"] = list(self.incidents)
        if self.result is not None:
            for key in ("halted", "total_instructions", "hits",
                        "first_splice_seconds", "warm_entries",
                        "merged_entries"):
                out[key] = self.result.get(key)
        return out

    def __repr__(self):
        return "Job(%s, %s, %s, %s)" % (self.job_id, self.client,
                                        self.program.name, self.state)


class CentralQueue:
    """Fair round-robin scheduling with per-client admission bounds.

    ``max_queued_per_client`` bounds the backlog a client may build up
    (submit beyond it raises :class:`BacklogFull` — backpressure the
    client sees immediately). ``max_running_per_client`` bounds a
    client's concurrent running jobs, so fairness holds even when one
    client's jobs are long.
    """

    def __init__(self, max_queued_per_client=8, max_running_per_client=1):
        self.max_queued_per_client = max_queued_per_client
        self.max_running_per_client = max_running_per_client
        self._lock = threading.RLock()
        # Insertion-ordered so round-robin order is deterministic:
        # clients scan in first-seen order starting after the client
        # scheduled last.
        self._backlogs = OrderedDict()  # client -> deque of Jobs
        self._running = {}  # client -> running job count
        self._last_client = None
        self.jobs_submitted = 0
        self.jobs_rejected = 0

    # -- admission -----------------------------------------------------------

    def submit(self, job):
        with self._lock:
            backlog = self._backlogs.setdefault(job.client, deque())
            if len(backlog) >= self.max_queued_per_client:
                self.jobs_rejected += 1
                raise BacklogFull(
                    "client %r already has %d queued jobs (bound %d)"
                    % (job.client, len(backlog), self.max_queued_per_client))
            backlog.append(job)
            self.jobs_submitted += 1

    # -- scheduling ----------------------------------------------------------

    def _client_order(self):
        """Clients in round-robin order, starting after the last pick."""
        clients = list(self._backlogs)
        if self._last_client in clients:
            pivot = clients.index(self._last_client) + 1
            clients = clients[pivot:] + clients[:pivot]
        return clients

    def next_runnable(self, runnable=None):
        """Pop and mark RUNNING the next fairly-chosen runnable job.

        ``runnable(job) -> bool`` is the resource manager's veto (pool
        busy for that image, worker budget exhausted). Within a client
        the backlog is FIFO — but a head-of-line job vetoed on
        *resources* does not block the client's later jobs targeting a
        different image, so one saturated pool cannot idle the rest of
        the budget. Returns ``None`` when nothing can run right now.
        """
        with self._lock:
            for client in self._client_order():
                if self._running.get(client, 0) >= \
                        self.max_running_per_client:
                    continue
                backlog = self._backlogs.get(client)
                if not backlog:
                    continue
                for job in list(backlog):
                    if job.cancel_event.is_set():
                        continue  # cancelled while queued; reaped below
                    if runnable is not None and not runnable(job):
                        continue
                    backlog.remove(job)
                    job.mark_running()
                    self._running[client] = self._running.get(client, 0) + 1
                    self._last_client = client
                    return job
            return None

    def note_finished(self, job):
        """A RUNNING job reached a terminal state — release its slot."""
        with self._lock:
            count = self._running.get(job.client, 0)
            self._running[job.client] = max(0, count - 1)

    # -- cancellation and shutdown -------------------------------------------

    def cancel_queued(self, job):
        """Remove a still-queued job. Returns True if it was dequeued."""
        with self._lock:
            backlog = self._backlogs.get(job.client)
            if backlog and job in backlog:
                backlog.remove(job)
                return True
            return False

    def drain_queued(self):
        """Remove and return every queued job (daemon shutdown)."""
        with self._lock:
            drained = []
            for backlog in self._backlogs.values():
                drained.extend(backlog)
                backlog.clear()
            return drained

    # -- introspection -------------------------------------------------------

    def queued_count(self, client=None):
        with self._lock:
            if client is not None:
                return len(self._backlogs.get(client, ()))
            return sum(len(b) for b in self._backlogs.values())

    def running_count(self, client=None):
        with self._lock:
            if client is not None:
                return self._running.get(client, 0)
            return sum(self._running.values())

    def stats_dict(self):
        with self._lock:
            return {
                "queued": self.queued_count(),
                "running": self.running_count(),
                "jobs_submitted": self.jobs_submitted,
                "jobs_rejected": self.jobs_rejected,
                "per_client": {
                    client: {"queued": len(backlog),
                             "running": self._running.get(client, 0)}
                    for client, backlog in self._backlogs.items()
                },
            }
