"""The daemon's request protocol: length-prefixed JSON over a socket.

One frame is a 4-byte big-endian length followed by a UTF-8 JSON
object. Requests carry a ``verb`` plus verb-specific fields; responses
carry ``ok`` (bool) plus either payload fields or ``error``/``code``.
JSON because every field here is control-plane metadata measured in
kilobytes (program images travel base64-encoded inside the JSON, and
the largest are a few KB); the data plane — states and cache entries
between engine and workers — stays on the binary shm/pipe transport.

The length prefix is bounded (:data:`MAX_FRAME_BYTES`) on both ends so
a corrupt or malicious peer cannot make either side allocate
gigabytes, mirroring ``RuntimeConfig.max_frame_bytes`` on the worker
wire. A peer that violates the framing is hung up on — the daemon
never lets one bad connection poison another client's session.

Verbs
-----

``submit``   program image + options (+ idempotency ``token``) ->
             ``job_id``, ``namespace``; a token the daemon has already
             seen dedups onto the original job (``deduped: true``)
``poll``     job_id *or* token -> state summary (queued/running/...)
``result``   job_id *or* token -> full result payload
``cancel``   job_id *or* token -> dequeue a queued job / flag a
             running one
``stats``    -> daemon, per-client, pool, queue, and cache-store stats
``jobs``     -> one summary row per job this daemon has seen
``ping``     -> liveness
``status``   -> health probe: journal, watchdog, degraded-mode state
``shutdown`` -> drain and stop the daemon

Error codes split into two classes the client acts on differently:
**retryable** — ``busy`` (per-client admission bound), ``overloaded``
(the resource governor shed the request at admission because a
memory/disk/shm/fd budget is exhausted; back off and retry, the
condition clears when pressure lifts), ``timeout``, ``connection``,
``disconnected``, ``no-daemon`` — and **authoritative** refusals
(``bad-request``, ``bad-program``, ``not-found``, ``draining``, ...)
where asking again cannot change the answer.

Version 2 added ``token`` fields, ``status``, and journal replay; the
daemon still answers version-1 clients (it never rejects on the
``protocol`` field), so a mixed fleet keeps working across an upgrade.
"""

import json
import socket
import struct

from repro.errors import ReproError

#: Protocol revision (advisory: responses echo it; requests carrying an
#: older one are still served).
PROTOCOL_VERSION = 2

#: Hard ceiling on one frame. Program images are a few KB of base64 and
#: final states a few KB more; 64 MiB is generous headroom, not a quota.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct("!I")

VERB_SUBMIT = "submit"
VERB_POLL = "poll"
VERB_RESULT = "result"
VERB_CANCEL = "cancel"
VERB_STATS = "stats"
VERB_JOBS = "jobs"
VERB_PING = "ping"
VERB_STATUS = "status"
VERB_SHUTDOWN = "shutdown"

VERBS = (VERB_SUBMIT, VERB_POLL, VERB_RESULT, VERB_CANCEL, VERB_STATS,
         VERB_JOBS, VERB_PING, VERB_STATUS, VERB_SHUTDOWN)


class ProtocolError(ReproError):
    """A frame violated the serve protocol."""


def encode_message(obj):
    """One frame: length prefix + JSON body."""
    body = json.dumps(obj, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError("message of %d bytes exceeds the %d-byte frame "
                            "limit" % (len(body), MAX_FRAME_BYTES))
    return _LENGTH.pack(len(body)) + body


def decode_body(body):
    try:
        obj = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("undecodable frame body: %s" % exc)
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object, got %s"
                            % type(obj).__name__)
    return obj


def _recv_exact(sock, n):
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame edge."""
    chunks = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(n - got)
        except InterruptedError:
            continue
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError("connection closed mid-frame (%d of %d "
                                "bytes)" % (got, n))
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_message(sock, obj):
    sock.sendall(encode_message(obj))


def recv_message(sock, max_bytes=MAX_FRAME_BYTES):
    """Read one frame; ``None`` when the peer closed between frames.

    ``socket.timeout`` propagates — the daemon uses short socket
    timeouts to stay responsive to shutdown while a connection idles.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length == 0 or length > max_bytes:
        raise ProtocolError("frame length %d outside (0, %d]"
                            % (length, max_bytes))
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed before frame body")
    return decode_body(body)


def ok_response(**fields):
    fields["ok"] = True
    return fields


def error_response(message, code="error"):
    return {"ok": False, "error": str(message), "code": code}


def connect(socket_path, timeout=None):
    """Open a client connection to a daemon socket."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(socket_path)
    except OSError:
        sock.close()
        raise
    return sock


def daemon_running(socket_path):
    """Is something accepting connections on ``socket_path``?"""
    try:
        sock = connect(socket_path, timeout=1.0)
    except OSError:
        return False
    sock.close()
    return True
