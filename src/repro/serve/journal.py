"""Durable job journal: the daemon's crash-only write-ahead log.

The daemon from PR 6 kept every job in memory, so a SIGKILL (OOM
killer, node reboot) lost the queue, the running work, and every
finished result a client had not yet fetched. Crash-recoverable
speculation services (ParSplice keeps its coordinator state in a
persistent segment database; see PAPERS.md) treat the coordinator as
replayable state instead — and our cache tier already works that way
(:mod:`repro.core.cache_store` flushes atomically and quarantines
damage). This module extends the same discipline to the job layer.

Every accepted submission is appended here *before* the client sees a
``job_id``; every state transition (queued → running → done / failed /
cancelled), watchdog incident, and degraded-mode flip follows. On
restart the daemon replays the log: jobs that were queued or running
at crash time are re-queued (speculative work is disposable, so
re-running from the program image is always correct — the guarantee is
byte-identical-to-sequential, not at-most-once execution), terminal
jobs come back as queryable history, and resubmissions carrying the
same client idempotency token dedup onto the original job.

Format (``journal.ascj``)::

    [4B magic "ASCJ" | u16 version]
    repeat: [4B tag "JREC" | u64 length | JSON payload | u32 CRC32]

Records reuse :func:`repro.core.cache_io.encode_section` — the exact
frame shape checkpoints use — so a torn or bit-rotted tail is detected
the same way everywhere: replay stops at the first record that fails
structurally or on CRC, truncates the file back to the last good
record, and continues from there. A header that does not validate at
all (not our file) is moved aside to ``journal.ascj.corrupt`` and the
journal starts fresh rather than refusing to serve.

Results are *not* inlined in the log (a final state is tens of KB and
would be rewritten on every replay); finished payloads live in a
bounded on-disk result store (``results/<job_id>.json``, atomic
tmp+rename writes, pruned oldest-first) so a client's token poll can
fetch a result across a daemon restart without re-running the job.
"""

import errno
import json
import os
import struct
import threading
import time

from repro.core import cache_io
from repro.errors import EngineError, ReproError
from repro.runtime.resources import is_enospc

_MAGIC = b"ASCJ"
_VERSION = 1
_HEADER = struct.Struct("<4sH")

#: The one section tag; the payload JSON's ``type`` field discriminates.
RECORD_TAG = b"JREC"

#: Hard ceiling on one record; program images are a few KB of base64.
MAX_RECORD_BYTES = 16 * 1024 * 1024

REC_SUBMIT = "submit"
REC_STATE = "state"
REC_INCIDENT = "incident"
REC_MODE = "mode"

_JOURNAL_NAME = "journal.ascj"
_RESULTS_DIR = "results"


class JournalError(ReproError):
    """The journal was misused (damage is *recovered*, never raised)."""


class ReplayedJob:
    """One job reconstructed from the log: its last known state plus
    enough to either re-queue it (program image, options) or answer
    history queries (summary fields, token)."""

    __slots__ = ("job_id", "client", "token", "namespace", "program_dict",
                 "options", "state", "error", "submitted_at", "finished_at",
                 "incidents", "summary_extra")

    def __init__(self, job_id, client, token, namespace, program_dict,
                 options, submitted_at):
        self.job_id = job_id
        self.client = client
        self.token = token
        self.namespace = namespace
        self.program_dict = program_dict
        self.options = options
        self.state = "queued"
        self.error = None
        self.submitted_at = submitted_at
        self.finished_at = None
        self.incidents = []
        self.summary_extra = {}

    @property
    def interrupted(self):
        """Was this job non-terminal when the daemon died?"""
        return self.state in ("queued", "running")


class JobJournal:
    """Append-only CRC'd WAL plus a bounded on-disk result store.

    Thread-safe: connection threads, job threads, and the watchdog all
    append under one lock. ``fsync=True`` (the default) makes every
    record durable before the append returns — a submit the client was
    acked for survives any crash after that point.
    """

    def __init__(self, directory, fsync=True,
                 result_store_bytes=256 * 1024 * 1024):
        self.directory = os.fspath(directory)
        self.path = os.path.join(self.directory, _JOURNAL_NAME)
        self.results_dir = os.path.join(self.directory, _RESULTS_DIR)
        self.fsync = fsync
        self.result_store_bytes = result_store_bytes
        os.makedirs(self.results_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = 0
        self.records_appended = 0
        self.records_replayed = 0
        self.truncated_bytes = 0
        # -- disk-pressure state (see _append / store_result) ----------
        self.enospc_events = 0
        self.results_pruned_for_space = 0
        self.records_dropped = 0
        self.results_dropped = 0
        self.journal_suspended = False
        self.journal_resumes = 0
        self._pending_enospc = 0  # injected faults (tests / repro chaos)
        self.mode = "normal"  # last journaled degraded-mode state
        self.jobs = {}  # job_id -> ReplayedJob, insertion-ordered
        self._replay()
        self._handle = open(self.path, "ab")
        if self._handle.tell() == 0:
            self._handle.write(_HEADER.pack(_MAGIC, _VERSION))
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    # -- replay --------------------------------------------------------------

    def _replay(self):
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        if len(data) < _HEADER.size:
            # Shorter than a header: a crash during the very first
            # write. Nothing recoverable; start fresh.
            self.truncated_bytes += len(data)
            os.truncate(self.path, 0)
            return
        magic, version = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC or version != _VERSION:
            # Not our file (or a future format): move it aside and
            # start fresh — crash-only means we never refuse to boot.
            os.replace(self.path, self.path + ".corrupt")
            return
        pos = _HEADER.size
        while pos < len(data):
            try:
                tag, payload, end = cache_io.decode_section(
                    data, pos, max_payload=MAX_RECORD_BYTES)
                if tag != RECORD_TAG:
                    raise EngineError("unknown journal record tag %r" % tag)
                record = json.loads(payload.decode("utf-8"))
                if not isinstance(record, dict):
                    raise EngineError("journal record is not an object")
            except (EngineError, ValueError, UnicodeDecodeError):
                # Torn tail: everything before `pos` is trustworthy,
                # nothing after it is. Truncate and carry on.
                self.truncated_bytes += len(data) - pos
                os.truncate(self.path, pos)
                break
            self._apply(record)
            self.records_replayed += 1
            self._seq = max(self._seq, int(record.get("seq", 0)))
            pos = end

    def _apply(self, record):
        kind = record.get("type")
        if kind == REC_SUBMIT:
            job = ReplayedJob(
                record["job_id"], record.get("client", "anonymous"),
                record.get("token"), record.get("namespace"),
                record.get("program"), record.get("options") or {},
                record.get("time"))
            self.jobs[job.job_id] = job
        elif kind == REC_STATE:
            job = self.jobs.get(record.get("job_id"))
            if job is not None:
                job.state = record.get("state", job.state)
                job.error = record.get("error")
                if job.state in ("done", "failed", "cancelled"):
                    job.finished_at = record.get("time")
                extra = record.get("extra")
                if extra:
                    job.summary_extra.update(extra)
        elif kind == REC_INCIDENT:
            job = self.jobs.get(record.get("job_id"))
            if job is not None:
                job.incidents.append(record.get("incident") or {})
        elif kind == REC_MODE:
            self.mode = record.get("mode", self.mode)
        # Unknown types from a newer minor revision are skipped: the
        # CRC already proved they are intact, just not for us.

    def interrupted_jobs(self):
        """Replayed jobs that were queued/running at crash time, in
        submission order — the daemon re-queues exactly these."""
        return [job for job in self.jobs.values() if job.interrupted]

    def max_job_number(self):
        """Highest numeric suffix among replayed ``j<N>`` ids (0 when
        none) — the daemon resumes its id counter past it so a replayed
        job and a fresh one can never collide."""
        highest = 0
        for job_id in self.jobs:
            digits = job_id[1:] if job_id[:1] == "j" else job_id
            if digits.isdigit():
                highest = max(highest, int(digits))
        return highest

    # -- appends -------------------------------------------------------------

    def inject_enospc(self, n=1):
        """Arm ``n`` deterministic disk-full faults: the next ``n``
        journal/result writes raise ``ENOSPC`` before touching the
        filesystem — the hook behind the ``disk_full`` chaos fault kind
        and the satellite ENOSPC tests."""
        with self._lock:
            self._pending_enospc += int(n)

    def _take_injected_locked(self):
        """Consume one armed fault (caller holds the lock)."""
        if self._pending_enospc > 0:
            self._pending_enospc -= 1
            raise OSError(errno.ENOSPC, "injected disk-full", self.path)

    def _recover_tail(self, good_end):
        """After a write failed partway: drop any half-flushed buffer
        by reopening the handle, then truncate the file back to the
        last record boundary. Every record appended *before* this one
        stays replayable; the failed record simply never happened."""
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            os.truncate(self.path, good_end)
        except OSError:
            pass
        self._handle = open(self.path, "ab")

    def _prune_for_space(self, needed):
        """Free at least ``needed`` bytes by dropping the oldest stored
        results (a pruned result means a post-restart fetch re-runs the
        job — correct, just slower). Returns the number removed."""
        entries = []
        try:
            names = os.listdir(self.results_dir)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.results_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        pruned = freed = 0
        for __, size, path in entries:
            try:
                os.unlink(path)
            except OSError:
                continue
            pruned += 1
            freed += size
            if freed >= needed:
                break
        self.results_pruned_for_space += pruned
        return pruned

    def _append(self, record):
        """Append one record, degrading under disk pressure.

        The ladder mirrors the cache store: on ``ENOSPC`` rewind the
        torn tail (the log stays structurally clean), prune the oldest
        stored results to make room, retry once; if the disk is still
        full, drop the record and mark the journal **suspended** —
        served results stay correct, only crash-replay fidelity
        degrades, and the first successful append after space returns
        clears the flag. Never raises for disk pressure."""
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            record["time"] = time.time()
            payload = json.dumps(record, separators=(",", ":"),
                                 sort_keys=True).encode("utf-8")
            if len(payload) > MAX_RECORD_BYTES:
                raise JournalError("journal record of %d bytes exceeds the "
                                   "%d-byte cap"
                                   % (len(payload), MAX_RECORD_BYTES))
            frame = cache_io.encode_section(RECORD_TAG, payload)
            for attempt in (0, 1):
                good_end = self._handle.tell()
                try:
                    self._take_injected_locked()
                    self._handle.write(frame)
                    self._handle.flush()
                    if self.fsync:
                        os.fsync(self._handle.fileno())
                except OSError as exc:
                    if not is_enospc(exc):
                        raise
                    self.enospc_events += 1
                    self._recover_tail(good_end)
                    if attempt == 0 and self._prune_for_space(len(frame)):
                        continue
                    self.journal_suspended = True
                    self.records_dropped += 1
                    return
                self.records_appended += 1
                if self.journal_suspended:
                    self.journal_suspended = False
                    self.journal_resumes += 1
                return

    def record_submit(self, job, token):
        """Durably log an accepted submission (before the client ack)."""
        self._append({
            "type": REC_SUBMIT, "job_id": job.job_id, "client": job.client,
            "token": token, "namespace": job.namespace,
            "program": job.program.to_dict(), "options": dict(job.options),
        })

    def record_state(self, job_id, state, error=None, extra=None):
        record = {"type": REC_STATE, "job_id": job_id, "state": state}
        if error is not None:
            record["error"] = str(error)
        if extra:
            record["extra"] = extra
        self._append(record)

    def record_incident(self, job_id, incident):
        self._append({"type": REC_INCIDENT, "job_id": job_id,
                      "incident": incident})

    def record_mode(self, mode, reason=None):
        self.mode = mode
        record = {"type": REC_MODE, "mode": mode}
        if reason is not None:
            record["reason"] = str(reason)
        self._append(record)

    # -- result store --------------------------------------------------------

    def _result_path(self, job_id):
        return os.path.join(self.results_dir, "%s.json" % job_id)

    def store_result(self, job_id, payload):
        """Atomically persist one finished payload, then prune the
        store oldest-first back under ``result_store_bytes``.

        Under ``ENOSPC`` the same ladder as :meth:`_append`: the temp
        file never survives (``write_atomic`` removes it), the oldest
        stored results are pruned to make room, one retry; if the disk
        is still full the result is dropped from the *store* only —
        the in-memory copy still serves every fetch until a restart,
        after which the job re-runs (correct, just slower). Returns
        True when the payload reached disk."""
        path = self._result_path(job_id)
        blob = json.dumps(payload, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")
        for attempt in (0, 1):
            try:
                with self._lock:
                    self._take_injected_locked()
                cache_io.write_atomic(path, blob, fsync=self.fsync)
            except OSError as exc:
                if not is_enospc(exc):
                    raise
                self.enospc_events += 1
                if attempt == 0 and self._prune_for_space(len(blob)):
                    continue
                self.results_dropped += 1
                return False
            self._prune_results()
            return True
        return False

    def load_result(self, job_id):
        """A stored payload, or ``None`` (missing, pruned, or torn —
        a torn file means the job must be treated as never finished)."""
        try:
            with open(self._result_path(job_id), encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def _prune_results(self):
        if self.result_store_bytes is None:
            return
        entries = []
        total = 0
        try:
            names = os.listdir(self.results_dir)
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.results_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort()
        for __, size, path in entries:
            if total <= self.result_store_bytes:
                break
            try:
                os.unlink(path)
                total -= size
            except OSError:
                pass

    # -- lifecycle / reporting -----------------------------------------------

    def close(self):
        with self._lock:
            try:
                self._handle.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def stats_dict(self):
        result_files = 0
        result_bytes = 0
        try:
            for name in os.listdir(self.results_dir):
                if name.endswith(".json"):
                    result_files += 1
                    try:
                        result_bytes += os.stat(
                            os.path.join(self.results_dir, name)).st_size
                    except OSError:
                        pass
        except OSError:
            pass
        return {
            "path": self.path,
            "mode": self.mode,
            "records_appended": self.records_appended,
            "records_replayed": self.records_replayed,
            "truncated_bytes": self.truncated_bytes,
            "jobs_replayed": len(self.jobs),
            "result_files": result_files,
            "result_bytes": result_bytes,
            "enospc_events": self.enospc_events,
            "results_pruned_for_space": self.results_pruned_for_space,
            "records_dropped": self.records_dropped,
            "results_dropped": self.results_dropped,
            "journal_suspended": self.journal_suspended,
            "journal_resumes": self.journal_resumes,
        }
