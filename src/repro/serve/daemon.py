"""The resident speculation daemon behind ``repro serve``.

One process owns what every one-shot ``repro run`` pays for and throws
away: warm :class:`~repro.runtime.pool.WorkerPool` processes (spawned
once, their block caches hot across jobs) and a shared, sharded,
persistent :class:`~repro.core.cache_store.SharedCacheStore` of
trajectory-cache entries keyed by program image hash. Clients talk to
it over a unix-domain socket (:mod:`repro.serve.protocol`); each
``submit`` becomes a :class:`~repro.serve.queue.Job` that executes a
full :class:`~repro.runtime.engine.RealParallelEngine` run — the same
byte-identical-to-sequential guarantee as the CLI, per job — against
its namespace's warm cache, and merges what it learned back for the
next run of that image, whoever submits it.

Three thread families, one lock:

* **connection threads** (one per client socket) parse requests and
  mutate queue/job state under the daemon lock — every handler is
  quick; nothing blocking runs under the lock except pool retirement;
* the **scheduler thread** picks the next fairly-chosen job whose
  resources fit (see below) and hands it a job thread;
* **job threads** run the engine *outside* the lock — one job per pool
  at a time, so no engine ever shares a pool concurrently.

Resource management: pools are per image hash (workers load one
program image at spawn), and the daemon multiplexes every tenant onto
a fixed **worker budget**. A job whose image already has a warm pool
waits only for that pool to go idle; a job needing a new pool is
admitted when the budget has room, retiring idle pools
least-recently-used to make it. Fairness across clients and per-client
bounds live in :class:`~repro.serve.queue.CentralQueue`.

Failure containment: a job that raises is marked FAILED, its pool is
retired (never handed to another job), its pool's in-flight stragglers
are absorbed by :meth:`~repro.runtime.pool.WorkerPool.quiesce`, and
the shared store is only ever touched through signature-deduplicated
merges — a crashed job cannot poison the daemon, another client's
namespace, or the queue. Lifecycle: SIGTERM requests a drain (running
jobs finish, or are cancelled at their next boundary after
``drain_seconds``), shards flush, pools shut down, shm segments are
swept, and the socket is unlinked; every step is idempotent under a
second SIGTERM racing the first (the second escalates the drain to an
immediate cancel instead of re-running cleanup).
"""

import base64
import hashlib
import itertools
import os
import socket
import threading
import time

from repro.core.cache_store import SharedCacheStore
from repro.core.config import EngineConfig
from repro.errors import ReproError
from repro.loader.image import Program
from repro.runtime import RealParallelEngine, RuntimeConfig, WorkerPool
from repro.runtime import shm
from repro.serve import protocol
from repro.serve.config import ServeConfig
from repro.serve.queue import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    BacklogFull,
    CentralQueue,
    Job,
    JobCancelled,
)

#: Submit options the daemon understands; anything else is rejected at
#: submit time so a typo fails fast instead of silently running with
#: defaults.
_JOB_OPTIONS = frozenset((
    "workers", "max_instructions", "superstep_scale", "transport",
    "inflight_wait_bias", "verify_rate", "strict_verify", "engine",
))

#: Terminal jobs retained for ``jobs``/``result`` queries.
_JOB_HISTORY = 256


class ServeError(ReproError):
    """The daemon could not start or was misused."""


class _PoolLease:
    """One warm pool and its scheduling state (guarded by the daemon
    lock; the pool object itself is only touched by the job thread
    holding ``busy``)."""

    __slots__ = ("namespace", "program_name", "n_workers", "transport",
                 "pool", "busy", "jobs_served", "last_used", "recognized")

    def __init__(self, namespace, program_name, n_workers, transport):
        self.namespace = namespace
        self.program_name = program_name
        self.n_workers = n_workers
        self.transport = transport
        self.pool = None  # created lazily by the first job thread
        self.busy = True  # born acquired
        self.jobs_served = 0
        self.last_used = time.monotonic()
        # engine-config repr -> RecognizedIP: recognition is
        # deterministic per (program, config), so later jobs skip the
        # recognizer's observation run entirely — part of the warm win.
        self.recognized = {}


class SpeculationDaemon:
    """Speculation-as-a-service over a unix socket."""

    def __init__(self, config=None):
        self.config = config or ServeConfig()
        self.store = SharedCacheStore(
            self.config.cache_dir,
            capacity_bytes=self.config.cache_capacity_bytes)
        self.queue = CentralQueue(
            max_queued_per_client=self.config.max_queued_per_client,
            max_running_per_client=self.config.max_running_per_client)
        self._lock = threading.RLock()
        self._jobs = {}  # job_id -> Job (bounded history)
        self._job_order = []  # insertion order, for pruning
        self._pools = {}  # namespace -> _PoolLease
        self._clients = {}  # client name -> aggregate dict
        self._job_ids = itertools.count(1)
        self._stop = threading.Event()
        self._work = threading.Event()  # scheduler wake-up
        self._close_lock = threading.Lock()
        self._closed = False
        self._listener = None
        self._socket_bound = False
        self._accept_thread = None
        self._scheduler_thread = None
        self._conn_threads = []
        self._job_threads = {}  # job_id -> Thread
        self.started_at = None
        # -- service counters ------------------------------------------
        self.connections_accepted = 0
        self.requests_served = 0
        self.protocol_errors = 0
        self.pools_created = 0
        self.pools_retired = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self._jobs_since_flush = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Bind the socket and start the accept + scheduler threads."""
        path = self.config.socket_path
        if os.path.exists(path):
            if protocol.daemon_running(path):
                raise ServeError("a daemon is already serving %s" % path)
            os.unlink(path)  # stale socket from an unclean exit
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(path)
        except OSError as exc:
            listener.close()
            raise ServeError("cannot bind %s: %s" % (path, exc))
        os.chmod(path, 0o600)
        listener.listen(self.config.backlog)
        listener.settimeout(0.2)
        self._listener = listener
        self._socket_bound = True
        self.started_at = time.time()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True)
        self._accept_thread.start()
        self._scheduler_thread = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-sched",
            daemon=True)
        self._scheduler_thread.start()
        return self

    def serve_forever(self):
        """Run until :meth:`request_stop` (SIGTERM handler, shutdown
        verb, or KeyboardInterrupt); always cleans up. Starts the
        daemon first unless the caller already did."""
        if self._listener is None:
            self.start()
        try:
            while not self._stop.is_set():
                self._stop.wait(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def request_stop(self, drain=True):
        """Ask the daemon to stop. Safe from signal handlers.

        The first request starts a drain (running jobs finish). A
        repeated request — or ``drain=False`` — escalates: every
        running job is cancelled at its next superstep boundary. Never
        raises, no matter how often it fires.
        """
        if self._stop.is_set() or not drain:
            with self._lock:
                running = [job for job in self._jobs.values()
                           if job.state == JOB_RUNNING]
            for job in running:
                job.cancel_event.set()
        self._stop.set()
        self._work.set()

    def close(self):
        """Full teardown: drain, flush, shut pools down, unlink the
        socket, sweep shm. Idempotent — the SIGTERM path, the shutdown
        verb, atexit, and an explicit call may all land here."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        self._work.set()
        for thread in (self._accept_thread, self._scheduler_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        # Drain: give running jobs their window, then cancel the rest.
        deadline = time.monotonic() + self.config.drain_seconds
        while time.monotonic() < deadline:
            with self._lock:
                threads = [t for t in self._job_threads.values()
                           if t.is_alive()]
            if not threads:
                break
            time.sleep(0.05)
        with self._lock:
            running = [job for job in self._jobs.values()
                       if job.state == JOB_RUNNING]
        for job in running:
            job.cancel_event.set()
        with self._lock:
            threads = list(self._job_threads.values())
        for thread in threads:
            thread.join(timeout=self.config.drain_seconds + 10.0)
        # Queued jobs never ran; tell their owners why.
        for job in self.queue.drain_queued():
            if not job.terminal:
                job.finish(JOB_CANCELLED, error="daemon shutdown")
                self.jobs_cancelled += 1
        with self._lock:
            leases = list(self._pools.values())
            self._pools.clear()
        for lease in leases:
            if lease.pool is not None:
                lease.pool.shutdown()
            self.pools_retired += 1
        self.store.flush(force=True)
        # Belt and braces: the pools' shutdowns unlink their rings; the
        # sweep reaps anything an interrupted path left registered.
        # Idempotent, like everything else on this path.
        shm.sweep_created_segments()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._socket_bound:
            self._socket_bound = False
            try:
                os.unlink(self.config.socket_path)
            except FileNotFoundError:
                pass
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- accept / connection handling ----------------------------------------

    def _accept_loop(self):
        while not self._stop.is_set():
            try:
                conn, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections_accepted += 1
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True,
                                      name="repro-serve-conn")
            thread.start()
            self._conn_threads.append(thread)
            self._conn_threads = [t for t in self._conn_threads
                                  if t.is_alive()]

    def _serve_connection(self, conn):
        conn.settimeout(0.5)
        try:
            while not self._stop.is_set():
                try:
                    request = protocol.recv_message(conn)
                except socket.timeout:
                    continue
                except protocol.ProtocolError as exc:
                    self.protocol_errors += 1
                    try:
                        protocol.send_message(
                            conn, protocol.error_response(exc, "protocol"))
                    except OSError:
                        pass
                    return
                if request is None:
                    return  # peer hung up cleanly
                try:
                    response = self._handle(request)
                except Exception as exc:  # a request never kills the daemon
                    response = protocol.error_response(exc, "internal")
                try:
                    protocol.send_message(conn, response)
                except (OSError, protocol.ProtocolError):
                    return
                self.requests_served += 1
                if request.get("verb") == protocol.VERB_SHUTDOWN \
                        and response.get("ok"):
                    self.request_stop(drain=bool(request.get("drain", True)))
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- request dispatch ----------------------------------------------------

    def _handle(self, request):
        verb = request.get("verb")
        if verb == protocol.VERB_PING:
            return protocol.ok_response(
                pong=True, uptime_seconds=time.time() - self.started_at,
                protocol=protocol.PROTOCOL_VERSION)
        if verb == protocol.VERB_SUBMIT:
            return self._handle_submit(request)
        if verb == protocol.VERB_POLL:
            return self._handle_poll(request)
        if verb == protocol.VERB_RESULT:
            return self._handle_result(request)
        if verb == protocol.VERB_CANCEL:
            return self._handle_cancel(request)
        if verb == protocol.VERB_STATS:
            return protocol.ok_response(stats=self.stats_dict())
        if verb == protocol.VERB_JOBS:
            with self._lock:
                rows = [self._jobs[jid].summary() for jid in self._job_order]
            return protocol.ok_response(jobs=rows)
        if verb == protocol.VERB_SHUTDOWN:
            return protocol.ok_response(stopping=True)
        return protocol.error_response("unknown verb %r" % (verb,),
                                       "bad-verb")

    def _handle_submit(self, request):
        if self._stop.is_set():
            return protocol.error_response("daemon is draining", "draining")
        client = str(request.get("client") or "anonymous")
        options = request.get("options") or {}
        if not isinstance(options, dict):
            return protocol.error_response("options must be an object",
                                           "bad-request")
        unknown = set(options) - _JOB_OPTIONS
        if unknown:
            return protocol.error_response(
                "unknown submit options: %s" % ", ".join(sorted(unknown)),
                "bad-request")
        engine_overrides = options.get("engine") or {}
        bad = set(engine_overrides) - set(EngineConfig().__dict__)
        if bad:
            return protocol.error_response(
                "unknown engine options: %s" % ", ".join(sorted(bad)),
                "bad-request")
        try:
            program = Program.from_dict(request.get("program") or {})
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            return protocol.error_response("bad program image: %s" % exc,
                                           "bad-program")
        namespace = program.image_hash()
        with self._lock:
            job = Job("j%d" % next(self._job_ids), client, program,
                      namespace, options)
            try:
                self.queue.submit(job)
            except BacklogFull as exc:
                return protocol.error_response(exc, "busy")
            self._remember_job(job)
            aggregate = self._client_aggregate(client)
            aggregate["jobs_submitted"] += 1
        self._work.set()
        return protocol.ok_response(
            job_id=job.job_id, namespace=namespace,
            warm_entries=self.store.entry_count(namespace),
            queued=self.queue.queued_count())

    def _handle_poll(self, request):
        job = self._find_job(request)
        if job is None:
            return protocol.error_response("unknown job", "not-found")
        payload = job.summary()
        return protocol.ok_response(job=payload)

    def _handle_result(self, request):
        job = self._find_job(request)
        if job is None:
            return protocol.error_response("unknown job", "not-found")
        if job.state != JOB_DONE:
            return protocol.error_response(
                "job %s is %s%s" % (job.job_id, job.state,
                                    ": %s" % job.error if job.error else ""),
                "not-done")
        result = dict(job.result)
        if not request.get("include_state", True):
            result.pop("final_state", None)
        return protocol.ok_response(job_id=job.job_id, result=result)

    def _handle_cancel(self, request):
        job = self._find_job(request)
        if job is None:
            return protocol.error_response("unknown job", "not-found")
        with self._lock:
            if job.terminal:
                return protocol.ok_response(job_id=job.job_id,
                                            state=job.state,
                                            cancelled=False)
            job.cancel_event.set()
            if job.state == JOB_QUEUED and self.queue.cancel_queued(job):
                job.finish(JOB_CANCELLED, error="cancelled while queued")
                self.jobs_cancelled += 1
                self._client_aggregate(job.client)["jobs_cancelled"] += 1
                return protocol.ok_response(job_id=job.job_id,
                                            state=job.state, cancelled=True)
        # Running: the boundary hook will raise at the next superstep.
        return protocol.ok_response(job_id=job.job_id, state=JOB_RUNNING,
                                    cancelled=True)

    def _find_job(self, request):
        job_id = request.get("job_id")
        with self._lock:
            return self._jobs.get(job_id)

    def _remember_job(self, job):
        self._jobs[job.job_id] = job
        self._job_order.append(job.job_id)
        # Bound history: drop the oldest *terminal* jobs beyond the cap.
        if len(self._job_order) > _JOB_HISTORY:
            for job_id in list(self._job_order):
                if len(self._job_order) <= _JOB_HISTORY:
                    break
                old = self._jobs[job_id]
                if old.terminal:
                    self._job_order.remove(job_id)
                    del self._jobs[job_id]

    def _client_aggregate(self, client):
        aggregate = self._clients.get(client)
        if aggregate is None:
            aggregate = {"jobs_submitted": 0, "jobs_done": 0,
                         "jobs_failed": 0, "jobs_cancelled": 0,
                         "runtime": {}, "stats": {}}
            self._clients[client] = aggregate
        return aggregate

    @staticmethod
    def _accumulate(into, delta):
        for key, value in delta.items():
            if isinstance(value, (int, float)):
                into[key] = into.get(key, 0) + value

    # -- scheduling ----------------------------------------------------------

    def _scheduler_loop(self):
        while not self._stop.is_set():
            self._work.wait(timeout=0.1)
            self._work.clear()
            while not self._stop.is_set():
                with self._lock:
                    if len(self._job_threads) >= \
                            self.config.max_concurrent_jobs:
                        break
                    job = self.queue.next_runnable(self._runnable)
                    if job is None:
                        break
                    lease = self._acquire_lease(job)
                    thread = threading.Thread(
                        target=self._run_job, args=(job, lease),
                        name="repro-serve-job-%s" % job.job_id, daemon=True)
                    self._job_threads[job.job_id] = thread
                thread.start()

    def _runnable(self, job):
        """Resource-manager veto, called under the daemon lock."""
        lease = self._pools.get(job.namespace)
        if lease is not None:
            return not lease.busy  # same image serializes on its pool
        needed = self._job_workers(job)
        committed = sum(l.n_workers for l in self._pools.values()
                        if l.busy)
        return committed + needed <= self.config.worker_budget

    def _job_workers(self, job):
        workers = job.options.get("workers") or self.config.workers_per_job
        return max(1, min(int(workers), self.config.worker_budget))

    def _acquire_lease(self, job):
        """Reserve (or create) the pool lease for a job. Lock held."""
        lease = self._pools.get(job.namespace)
        if lease is not None:
            lease.busy = True
            return lease
        needed = self._job_workers(job)
        # Retire idle pools LRU until the new one fits the budget.
        total = sum(l.n_workers for l in self._pools.values())
        idle = sorted((l for l in self._pools.values() if not l.busy),
                      key=lambda l: l.last_used)
        while total + needed > self.config.worker_budget and idle:
            victim = idle.pop(0)
            del self._pools[victim.namespace]
            total -= victim.n_workers
            if victim.pool is not None:
                victim.pool.shutdown()
            self.pools_retired += 1
        lease = _PoolLease(job.namespace, job.program.name, needed,
                           job.options.get("transport")
                           or self.config.transport)
        self._pools[job.namespace] = lease
        return lease

    # -- job execution (job thread; daemon lock NOT held) --------------------

    def _pool_runtime_config(self, lease):
        return RuntimeConfig(
            n_workers=lease.n_workers,
            task_timeout_seconds=self.config.task_timeout_seconds,
            transport=lease.transport)

    def _job_runtime_config(self, job, lease):
        options = job.options
        return RuntimeConfig(
            n_workers=lease.n_workers,
            superstep_scale=int(options.get("superstep_scale")
                                or self.config.superstep_scale),
            max_instructions=int(options.get("max_instructions")
                                 or self.config.max_instructions),
            inflight_wait_bias=float(options.get("inflight_wait_bias", 1.0)),
            task_timeout_seconds=self.config.task_timeout_seconds,
            transport=lease.transport)

    @staticmethod
    def _engine_config(job):
        overrides = dict(job.options.get("engine") or {})
        if "logistic_learning_rates" in overrides:
            overrides["logistic_learning_rates"] = tuple(
                overrides["logistic_learning_rates"])
        return EngineConfig(**overrides)

    @staticmethod
    def _verify_config(job):
        from repro.verify import VerifyConfig
        if job.options.get("strict_verify"):
            return VerifyConfig(strict=True)
        rate = job.options.get("verify_rate")
        if rate is not None:
            return VerifyConfig(rate=float(rate))
        return None

    def _run_job(self, job, lease):
        pool_poisoned = False
        runtime_delta = None
        stats_dict = None
        try:
            if lease.pool is None:
                lease.pool = WorkerPool(job.program,
                                        self._pool_runtime_config(lease))
                self.pools_created += 1
            pool = lease.pool
            engine_config = self._engine_config(job)
            config_key = repr(engine_config)
            warm = self.store.snapshot(job.namespace)
            runtime_snapshot = pool.stats.snapshot()

            def boundary_hook(engine, superstep):
                if job.cancel_event.is_set():
                    raise JobCancelled("job %s cancelled" % job.job_id)

            engine = RealParallelEngine(
                job.program, config=engine_config,
                runtime_config=self._job_runtime_config(job, lease),
                recognized=lease.recognized.get(config_key),
                pool=pool, initial_cache=warm,
                boundary_hook=boundary_hook,
                verify=self._verify_config(job))
            result = engine.run()
            if engine.recognized is not None:
                lease.recognized[config_key] = engine.recognized
            # Absorb stragglers so the next job on this pool starts
            # clean; their OK entries are valid facts about this image.
            leftovers = pool.quiesce(self.config.quiesce_seconds)
            learned = itertools.chain(
                result.cache.entries(),
                (o.entry for o in leftovers if o.ok and not o.task.audit))
            merged = self.store.merge(job.namespace, learned)
            runtime_delta = pool.stats.delta_since(runtime_snapshot)
            stats_dict = result.stats.as_dict()
            state = result.final_state
            payload = {
                "job_id": job.job_id,
                "client": job.client,
                "program": job.program.name,
                "namespace": job.namespace,
                "backend": "serve",
                "halted": result.halted,
                "wall_seconds": result.wall_seconds,
                "total_instructions": result.total_instructions,
                "first_splice_seconds": result.stats.first_splice_seconds,
                "hits": result.stats.hits,
                "n_workers": pool.n_workers,
                "transport": pool.config.transport,
                "warm_entries": len(warm),
                "merged_entries": merged,
                "stats": stats_dict,
                "runtime": runtime_delta,
                "cache": result.cache.stats_dict(),
                "audit": result.audit,
                "final_state": base64.b64encode(state).decode("ascii"),
                "state_sha256": hashlib.sha256(state).hexdigest(),
            }
            with self._lock:
                job.finish(JOB_DONE, result=payload)
                self.jobs_done += 1
        except JobCancelled as exc:
            self._absorb_stragglers(job, lease)
            with self._lock:
                if not job.terminal:
                    job.finish(JOB_CANCELLED, error=str(exc))
                self.jobs_cancelled += 1
        except Exception as exc:  # the job fails; the daemon must not
            pool_poisoned = True
            with self._lock:
                if not job.terminal:
                    job.finish(JOB_FAILED,
                               error="%s: %s" % (type(exc).__name__, exc))
                self.jobs_failed += 1
        finally:
            self._release_lease(job, lease, pool_poisoned, runtime_delta,
                                stats_dict)

    def _absorb_stragglers(self, job, lease):
        """Bank whatever a cancelled job's workers still finished."""
        if lease.pool is None:
            return
        try:
            leftovers = lease.pool.quiesce(self.config.quiesce_seconds)
            self.store.merge(job.namespace,
                             (o.entry for o in leftovers
                              if o.ok and not o.task.audit))
        except Exception:
            pass  # cleanup must not mask the cancellation

    def _release_lease(self, job, lease, pool_poisoned, runtime_delta,
                       stats_dict):
        retired = None
        with self._lock:
            self.queue.note_finished(job)
            self._job_threads.pop(job.job_id, None)
            lease.busy = False
            lease.jobs_served += 1
            lease.last_used = time.monotonic()
            if pool_poisoned and self._pools.get(job.namespace) is lease:
                # A failed job's pool is never handed to another job:
                # whatever broke it must not leak across tenants.
                del self._pools[job.namespace]
                retired = lease.pool
                self.pools_retired += 1
            aggregate = self._client_aggregate(job.client)
            key = {JOB_DONE: "jobs_done", JOB_FAILED: "jobs_failed",
                   JOB_CANCELLED: "jobs_cancelled"}.get(job.state)
            if key:
                aggregate[key] += 1
            if runtime_delta is not None:
                self._accumulate(aggregate["runtime"], runtime_delta)
            if stats_dict is not None:
                self._accumulate(aggregate["stats"], stats_dict)
            self._jobs_since_flush += 1
            flush_due = self._jobs_since_flush >= self.config.flush_every_jobs
            if flush_due:
                self._jobs_since_flush = 0
        if retired is not None:
            retired.shutdown()
        if flush_due:
            self.store.flush()
        self._work.set()

    # -- reporting -----------------------------------------------------------

    def stats_dict(self):
        """The ``stats`` verb: service, per-client, pool, queue, cache."""
        with self._lock:
            by_state = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            pools = [{
                "namespace": lease.namespace,
                "program": lease.program_name,
                "workers": lease.n_workers,
                "transport": lease.transport,
                "busy": lease.busy,
                "jobs_served": lease.jobs_served,
                "idle_seconds": (0.0 if lease.busy
                                 else time.monotonic() - lease.last_used),
            } for lease in sorted(self._pools.values(),
                                  key=lambda l: l.namespace)]
            clients = {name: {
                "jobs_submitted": agg["jobs_submitted"],
                "jobs_done": agg["jobs_done"],
                "jobs_failed": agg["jobs_failed"],
                "jobs_cancelled": agg["jobs_cancelled"],
                "runtime": dict(agg["runtime"]),
                "stats": dict(agg["stats"]),
            } for name, agg in sorted(self._clients.items())}
            return {
                "socket": self.config.socket_path,
                "uptime_seconds": (time.time() - self.started_at
                                   if self.started_at else 0.0),
                "draining": self._stop.is_set(),
                "worker_budget": self.config.worker_budget,
                "workers_committed": sum(l.n_workers
                                         for l in self._pools.values()),
                "connections_accepted": self.connections_accepted,
                "requests_served": self.requests_served,
                "protocol_errors": self.protocol_errors,
                "jobs": dict(by_state, total=len(self._jobs),
                             done=self.jobs_done, failed=self.jobs_failed,
                             cancelled=self.jobs_cancelled),
                "clients": clients,
                "pools": pools,
                "pools_created": self.pools_created,
                "pools_retired": self.pools_retired,
                "queue": self.queue.stats_dict(),
                "cache": self.store.stats_dict(),
            }
