"""The resident speculation daemon behind ``repro serve``.

One process owns what every one-shot ``repro run`` pays for and throws
away: warm :class:`~repro.runtime.pool.WorkerPool` processes (spawned
once, their block caches hot across jobs) and a shared, sharded,
persistent :class:`~repro.core.cache_store.SharedCacheStore` of
trajectory-cache entries keyed by program image hash. Clients talk to
it over a unix-domain socket (:mod:`repro.serve.protocol`); each
``submit`` becomes a :class:`~repro.serve.queue.Job` that executes a
full :class:`~repro.runtime.engine.RealParallelEngine` run — the same
byte-identical-to-sequential guarantee as the CLI, per job — against
its namespace's warm cache, and merges what it learned back for the
next run of that image, whoever submits it.

Three thread families, one lock:

* **connection threads** (one per client socket) parse requests and
  mutate queue/job state under the daemon lock — every handler is
  quick; nothing blocking runs under the lock except pool retirement;
* the **scheduler thread** picks the next fairly-chosen job whose
  resources fit (see below) and hands it a job thread;
* **job threads** run the engine *outside* the lock — one job per pool
  at a time, so no engine ever shares a pool concurrently.

Resource management: pools are per image hash (workers load one
program image at spawn), and the daemon multiplexes every tenant onto
a fixed **worker budget**. A job whose image already has a warm pool
waits only for that pool to go idle; a job needing a new pool is
admitted when the budget has room, retiring idle pools
least-recently-used to make it. Fairness across clients and per-client
bounds live in :class:`~repro.serve.queue.CentralQueue`.

Failure containment: a job that raises is marked FAILED, its pool is
retired (never handed to another job), its pool's in-flight stragglers
are absorbed by :meth:`~repro.runtime.pool.WorkerPool.quiesce`, and
the shared store is only ever touched through signature-deduplicated
merges — a crashed job cannot poison the daemon, another client's
namespace, or the queue. Lifecycle: SIGTERM requests a drain (running
jobs finish, or are cancelled at their next boundary after
``drain_seconds``), shards flush, pools shut down, shm segments are
swept, and the socket is unlinked; every step is idempotent under a
second SIGTERM racing the first (the second escalates the drain to an
immediate cancel instead of re-running cleanup).

Crash-only operation (PR 8): when ``journal_dir`` is configured every
accepted submission is WAL'd (:mod:`repro.serve.journal`) before the
client is acked, state transitions follow, and a daemon restarted
after a SIGKILL replays the log — re-queuing interrupted jobs,
deduping resubmissions by idempotency token, and serving finished
results from the on-disk store. Mutual exclusion on the socket path is
a pidfile + ``flock`` (held for the daemon's lifetime), so two
concurrent starts cannot both win and a *stale* socket file is, by
construction, safe to unlink once the lock is held. A watchdog thread
(:mod:`repro.serve.watchdog`) reaps jobs that blow their deadline or
stop heartbeating, and a periodic self-check flips the daemon into
journaled **degraded mode** — sequential execution, cache
write-through disabled — instead of crashing when /dev/shm or the
cache store gives out.
"""

import base64
import hashlib
import itertools
import os
import socket
import threading
import time

try:
    import fcntl
except ImportError:  # non-POSIX: single-start races are the user's
    fcntl = None

from repro.core.cache_store import SharedCacheStore
from repro.core.config import EngineConfig
from repro.errors import ReproError
from repro.loader.image import Program
from repro.runtime import RealParallelEngine, RuntimeConfig, WorkerPool
from repro.runtime import shm
from repro.runtime.resources import ResourceGovernor
from repro.serve import protocol
from repro.serve.config import ServeConfig
from repro.serve.journal import JobJournal
from repro.serve.watchdog import SelfCheck, Watchdog, WatchdogTimeout
from repro.serve.queue import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    BacklogFull,
    CentralQueue,
    Job,
    JobCancelled,
)

#: Submit options the daemon understands; anything else is rejected at
#: submit time so a typo fails fast instead of silently running with
#: defaults.
_JOB_OPTIONS = frozenset((
    "workers", "max_instructions", "superstep_scale", "transport",
    "inflight_wait_bias", "verify_rate", "strict_verify", "engine",
    "deadline_seconds",
))

#: Terminal jobs retained for ``jobs``/``result`` queries.
_JOB_HISTORY = 256

#: Start-lock fds to close in forked children. ``flock`` lives on the
#: open file *description*, which fork shares: a pool worker inheriting
#: the pidfile fd keeps the lock alive after the daemon is SIGKILLed,
#: wedging every restart until the orphan notices and exits. Closing
#: the child's copy at fork ties the lock's lifetime to the daemon
#: process alone.
_FORK_CLOSE_FDS = set()
_fork_guard_installed = []


def _install_fork_guard():
    if _fork_guard_installed or not hasattr(os, "register_at_fork"):
        return

    def _drop_inherited_locks():
        for fd in list(_FORK_CLOSE_FDS):
            try:
                os.close(fd)
            except OSError:
                pass
        _FORK_CLOSE_FDS.clear()

    os.register_at_fork(after_in_child=_drop_inherited_locks)
    _fork_guard_installed.append(True)


class ServeError(ReproError):
    """The daemon could not start or was misused."""


class _PoolLease:
    """One warm pool and its scheduling state (guarded by the daemon
    lock; the pool object itself is only touched by the job thread
    holding ``busy``)."""

    __slots__ = ("namespace", "program_name", "n_workers", "transport",
                 "pool", "busy", "jobs_served", "last_used", "recognized")

    def __init__(self, namespace, program_name, n_workers, transport):
        self.namespace = namespace
        self.program_name = program_name
        self.n_workers = n_workers
        self.transport = transport
        self.pool = None  # created lazily by the first job thread
        self.busy = True  # born acquired
        self.jobs_served = 0
        self.last_used = time.monotonic()
        # engine-config repr -> RecognizedIP: recognition is
        # deterministic per (program, config), so later jobs skip the
        # recognizer's observation run entirely — part of the warm win.
        self.recognized = {}


class SpeculationDaemon:
    """Speculation-as-a-service over a unix socket."""

    def __init__(self, config=None):
        self.config = config or ServeConfig()
        self.store = SharedCacheStore(
            self.config.cache_dir,
            capacity_bytes=self.config.cache_capacity_bytes)
        self.queue = CentralQueue(
            max_queued_per_client=self.config.max_queued_per_client,
            max_running_per_client=self.config.max_running_per_client)
        self._lock = threading.RLock()
        self._jobs = {}  # job_id -> Job (bounded history)
        self._job_order = []  # insertion order, for pruning
        self._pools = {}  # namespace -> _PoolLease
        self._clients = {}  # client name -> aggregate dict
        self._job_ids = itertools.count(1)
        self._tokens = {}  # idempotency token -> job_id
        self._stop = threading.Event()
        self._work = threading.Event()  # scheduler wake-up
        self._close_lock = threading.Lock()
        self._closed = False
        self._listener = None
        self._socket_bound = False
        self._lock_file = None  # pidfile holding the start flock
        self._accept_thread = None
        self._scheduler_thread = None
        self._watchdog_thread = None
        self._conn_threads = []
        self._open_conns = set()  # live per-connection sockets
        self._job_threads = {}  # job_id -> Thread
        self.started_at = None
        # -- service counters ------------------------------------------
        self.connections_accepted = 0
        self.requests_served = 0
        self.protocol_errors = 0
        self.pools_created = 0
        self.pools_retired = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.jobs_replayed = 0
        self.jobs_requeued = 0
        self.jobs_deduped = 0
        self.jobs_degraded = 0
        self.jobs_shed = 0
        self.journal_errors = 0
        self.serve_faults_injected = 0
        self._jobs_since_flush = 0
        # -- resource governance ---------------------------------------
        # Admission-time load shedding: a submit arriving while a
        # queue/fd/disk budget is exhausted is refused with the
        # retryable "overloaded" code instead of being accepted and
        # failed later. Shm pressure is deliberately NOT an admission
        # floor — it has a gentler rung on the ladder (the self-check
        # flips the daemon into sequential degraded mode, which still
        # serves byte-identical results without rings). The disk probe
        # watches the durability directory (journal beats cache:
        # losing WAL appends is the worse failure).
        self.governor = ResourceGovernor(
            shm_headroom_floor=0,
            disk_floor_bytes=self.config.min_disk_free_bytes,
            fd_headroom_floor=self.config.min_fd_headroom,
            max_queued_jobs=self.config.max_queued_jobs,
            disk_path=(self.config.journal_dir or self.config.cache_dir))
        # Serve-tier chaos plan (disk_full / fd_exhaust), consumed at
        # the daemon's own seams — distinct from REPRO_FAULT_PLAN,
        # which the per-job pools read.
        self.serve_fault_plan = self.config.resolve_fault_plan()
        # -- crash-only machinery --------------------------------------
        self.watchdog = Watchdog(
            deadline_seconds=self.config.job_deadline_seconds,
            no_progress_seconds=self.config.no_progress_seconds,
            kill_grace_seconds=self.config.kill_grace_seconds)
        self.selfcheck = SelfCheck(
            min_shm_headroom_bytes=self.config.min_shm_headroom_bytes)
        self.degraded = False
        self.degraded_reason = None
        self.journal = None
        if self.config.journal_dir:
            self.journal = JobJournal(
                self.config.journal_dir,
                fsync=self.config.journal_fsync,
                result_store_bytes=self.config.result_store_bytes)
            self._replay_journal()

    # -- journal replay ------------------------------------------------------

    def _replay_journal(self):
        """Rebuild job state from the WAL (constructor-time, no locks
        contended yet). Interrupted jobs are re-queued — re-running a
        journaled submission from its program image is always correct
        because the guarantee is byte-identical-to-sequential, not
        at-most-once execution. Terminal jobs come back as queryable
        history; their payloads load lazily from the result store."""
        self._job_ids = itertools.count(self.journal.max_job_number() + 1)
        for replayed in self.journal.jobs.values():
            try:
                program = Program.from_dict(replayed.program_dict or {})
            except (ReproError, KeyError, TypeError, ValueError):
                continue  # image record damaged; nothing to re-run
            job = Job(replayed.job_id, replayed.client, program,
                      replayed.namespace or program.image_hash(),
                      replayed.options, token=replayed.token)
            job.restored = True
            if replayed.submitted_at:
                job.submitted_at = replayed.submitted_at
            job.incidents = list(replayed.incidents)
            if replayed.interrupted:
                try:
                    self.queue.submit(job)
                except BacklogFull:
                    job.state = JOB_FAILED
                    job.error = "backlog full at replay"
                else:
                    self.jobs_requeued += 1
                    if replayed.state == JOB_RUNNING:
                        # Journal the reset so a second crash replays
                        # the same queued state, not a phantom run.
                        self._journal("record_state", job.job_id,
                                      JOB_QUEUED)
            else:
                job.state = replayed.state
                job.error = replayed.error
                job.finished_at = replayed.finished_at
            self._remember_job(job)
            if job.token:
                self._tokens[job.token] = job.job_id
            self.jobs_replayed += 1
        if self.journal.mode == "degraded":
            # The previous incarnation died degraded; start optimistic
            # and let the first self-check re-demote if resources are
            # still exhausted. Journaled so the log stays consistent.
            self._journal("record_mode", "normal",
                          "restart: self-check re-evaluates")

    def _journal(self, method, *args, **kwargs):
        """Append one journal record; a failing journal (disk full,
        yanked volume) must degrade the daemon, not kill a job thread
        or a connection handler."""
        if self.journal is None:
            return
        try:
            getattr(self.journal, method)(*args, **kwargs)
        except Exception as exc:
            self.journal_errors += 1
            self.selfcheck.note_flush_failure(exc)

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Bind the socket and start the accept, scheduler, and
        watchdog threads.

        Mutual exclusion is a pidfile + ``flock`` beside the socket,
        not the old probe-and-unlink dance — probing then unlinking
        races a concurrent start (both probe a dead socket, both
        unlink, both bind; last binder silently steals the path). The
        lock is taken non-blocking and held for the daemon's lifetime:
        exactly one of two concurrent starts wins, the loser exits with
        the winner's pid, and with the lock held any *existing* socket
        file is stale by construction and safe to remove.
        """
        path = self.config.socket_path
        self._acquire_start_lock(path)
        if os.path.exists(path):
            os.unlink(path)  # stale: the flock proves no daemon owns it
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(path)
        except OSError as exc:
            listener.close()
            raise ServeError("cannot bind %s: %s" % (path, exc))
        os.chmod(path, 0o600)
        listener.listen(self.config.backlog)
        listener.settimeout(0.2)
        self._listener = listener
        self._socket_bound = True
        self.started_at = time.time()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True)
        self._accept_thread.start()
        self._scheduler_thread = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-sched",
            daemon=True)
        self._scheduler_thread.start()
        self._watchdog_thread = threading.Thread(
            target=self._watchdog_loop, name="repro-serve-watchdog",
            daemon=True)
        self._watchdog_thread.start()
        if self.queue.queued_count():
            self._work.set()  # replayed jobs are ready to run
        return self

    def _acquire_start_lock(self, path):
        if fcntl is None:
            return  # non-POSIX: no flock; fall back to bind errors
        _install_fork_guard()
        lock_path = path + ".lock"
        for __ in range(16):
            lock_file = open(lock_path, "a+")
            try:
                fcntl.flock(lock_file.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                lock_file.seek(0)
                holder = lock_file.read(64).strip() or "unknown pid"
                lock_file.close()
                raise ServeError(
                    "a daemon (pid %s) already owns %s — stop it first, "
                    "or serve a different socket path" % (holder, path))
            # Guard the unlink race: a stopping daemon may have
            # unlinked the pidfile between our open and our flock, in
            # which case we hold a lock on an orphaned inode that no
            # later starter will ever contend on. Re-check identity.
            try:
                on_disk = os.stat(lock_path)
            except FileNotFoundError:
                on_disk = None
            if on_disk is not None and \
                    on_disk.st_ino == os.fstat(lock_file.fileno()).st_ino:
                lock_file.seek(0)
                lock_file.truncate()
                lock_file.write("%d\n" % os.getpid())
                lock_file.flush()
                self._lock_file = lock_file
                _FORK_CLOSE_FDS.add(lock_file.fileno())
                return
            lock_file.close()  # stale inode; take the fresh one
        raise ServeError("could not acquire the start lock at %s"
                         % lock_path)

    # -- watchdog / self-check -----------------------------------------------

    def _watchdog_loop(self):
        last_selfcheck = 0.0
        while not self._stop.is_set():
            self._stop.wait(self.config.watchdog_interval_seconds)
            if self._stop.is_set():
                break
            try:
                for incident in self.watchdog.step():
                    self._note_incident(incident)
            except Exception:
                pass  # supervision must never kill the supervisor
            now = time.monotonic()
            if now - last_selfcheck >= self.config.selfcheck_interval_seconds:
                last_selfcheck = now
                try:
                    self._run_selfcheck()
                except Exception:
                    pass

    def _note_incident(self, incident):
        """Attach a watchdog incident to its job and journal it."""
        job_id = incident.get("job_id")
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.incidents.append(incident)
        self._journal("record_incident", job_id, incident)

    def _run_selfcheck(self):
        healthy, reason = self.selfcheck.verdict()
        if self.degraded and healthy:
            self._set_degraded(False, "self-check healthy")
        elif not self.degraded and not healthy:
            self._set_degraded(True, reason)
        self._retry_suspended_durability()

    def _retry_suspended_durability(self):
        """Durability self-healing on the self-check cadence: a cache
        store or journal that suspended write-through under ``ENOSPC``
        retries here, so recovery needs only freed disk space — not a
        lucky client write. A still-full disk just re-suspends (these
        paths never raise for disk pressure)."""
        if self.store.write_through_suspended:
            try:
                self.store.flush(force=True)
            except Exception as exc:
                self.selfcheck.note_flush_failure(exc)
        if self.journal is not None and self.journal.journal_suspended:
            # A mode record with the current mode is a semantic no-op
            # on replay but a real durability probe: its success lifts
            # the suspension.
            self._journal("record_mode", self.journal.mode,
                          "durability probe")

    def _set_degraded(self, degraded, reason):
        """Flip the journaled degraded/normal mode. Degraded jobs run
        sequentially (no pools, no shm) and the cache store stops
        write-through flushing — the daemon sheds resource pressure
        instead of crashing into it."""
        with self._lock:
            if self.degraded == degraded:
                return
            self.degraded = degraded
            self.degraded_reason = reason if degraded else None
        self._journal("record_mode",
                      "degraded" if degraded else "normal", reason)
        self._work.set()

    def serve_forever(self):
        """Run until :meth:`request_stop` (SIGTERM handler, shutdown
        verb, or KeyboardInterrupt); always cleans up. Starts the
        daemon first unless the caller already did."""
        if self._listener is None:
            self.start()
        try:
            while not self._stop.is_set():
                self._stop.wait(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def request_stop(self, drain=True):
        """Ask the daemon to stop. Safe from signal handlers.

        The first request starts a drain (running jobs finish). A
        repeated request — or ``drain=False`` — escalates: every
        running job is cancelled at its next superstep boundary. Never
        raises, no matter how often it fires.
        """
        if self._stop.is_set() or not drain:
            with self._lock:
                running = [job for job in self._jobs.values()
                           if job.state == JOB_RUNNING]
            for job in running:
                job.cancel_event.set()
        self._stop.set()
        self._work.set()

    def close(self):
        """Full teardown: drain, flush, shut pools down, unlink the
        socket, sweep shm. Idempotent — the SIGTERM path, the shutdown
        verb, atexit, and an explicit call may all land here."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        self._work.set()
        for thread in (self._accept_thread, self._scheduler_thread,
                       self._watchdog_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        # Sever live connections: a handler parked in its recv timeout
        # could otherwise answer one more request after close() returns
        # — a closed daemon must go silent, not trail off.
        with self._lock:
            conns = list(self._open_conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for thread in self._conn_threads:
            thread.join(timeout=2.0)
        # Drain: give running jobs their window, then cancel the rest.
        deadline = time.monotonic() + self.config.drain_seconds
        while time.monotonic() < deadline:
            with self._lock:
                threads = [t for t in self._job_threads.values()
                           if t.is_alive()]
            if not threads:
                break
            time.sleep(0.05)
        with self._lock:
            running = [job for job in self._jobs.values()
                       if job.state == JOB_RUNNING]
        for job in running:
            job.cancel_event.set()
        with self._lock:
            threads = list(self._job_threads.values())
        for thread in threads:
            thread.join(timeout=self.config.drain_seconds + 10.0)
        # Queued jobs never ran; tell their owners why.
        for job in self.queue.drain_queued():
            if not job.terminal:
                job.finish(JOB_CANCELLED, error="daemon shutdown")
                self.jobs_cancelled += 1
        with self._lock:
            leases = list(self._pools.values())
            self._pools.clear()
        for lease in leases:
            if lease.pool is not None:
                lease.pool.shutdown()
            self.pools_retired += 1
        try:
            self.store.flush(force=True)
        except Exception:
            pass  # a dying disk must not block the rest of teardown
        # Belt and braces: the pools' shutdowns unlink their rings; the
        # sweep reaps anything an interrupted path left registered.
        # Idempotent, like everything else on this path.
        shm.sweep_created_segments()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._socket_bound:
            self._socket_bound = False
            try:
                os.unlink(self.config.socket_path)
            except FileNotFoundError:
                pass
            except OSError:
                pass
        if self.journal is not None:
            self.journal.close()
        if self._lock_file is not None:
            # Unlink before releasing: a racing start that flocks the
            # *old* inode after our unlink holds a lock nobody else
            # will ever see, but its bind still wins cleanly because
            # the socket is gone too.
            try:
                os.unlink(self.config.socket_path + ".lock")
            except OSError:
                pass
            _FORK_CLOSE_FDS.discard(self._lock_file.fileno())
            try:
                self._lock_file.close()  # closes the fd, dropping flock
            except OSError:
                pass
            self._lock_file = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- accept / connection handling ----------------------------------------

    def _accept_loop(self):
        while not self._stop.is_set():
            try:
                conn, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections_accepted += 1
            with self._lock:
                self._open_conns.add(conn)
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True,
                                      name="repro-serve-conn")
            thread.start()
            self._conn_threads.append(thread)
            self._conn_threads = [t for t in self._conn_threads
                                  if t.is_alive()]

    def _serve_connection(self, conn):
        conn.settimeout(0.5)
        try:
            while not self._stop.is_set():
                try:
                    request = protocol.recv_message(conn)
                except socket.timeout:
                    continue
                except protocol.ProtocolError as exc:
                    self.protocol_errors += 1
                    try:
                        protocol.send_message(
                            conn, protocol.error_response(exc, "protocol"))
                    except OSError:
                        pass
                    return
                if request is None:
                    return  # peer hung up cleanly
                try:
                    response = self._handle(request)
                except Exception as exc:  # a request never kills the daemon
                    response = protocol.error_response(exc, "internal")
                try:
                    protocol.send_message(conn, response)
                except (OSError, protocol.ProtocolError):
                    return
                self.requests_served += 1
                if request.get("verb") == protocol.VERB_SHUTDOWN \
                        and response.get("ok"):
                    self.request_stop(drain=bool(request.get("drain", True)))
                    return
        finally:
            with self._lock:
                self._open_conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # -- request dispatch ----------------------------------------------------

    def _handle(self, request):
        verb = request.get("verb")
        if verb == protocol.VERB_PING:
            return protocol.ok_response(
                pong=True, uptime_seconds=time.time() - self.started_at,
                protocol=protocol.PROTOCOL_VERSION,
                degraded=self.degraded,
                journaled=self.journal is not None)
        if verb == protocol.VERB_STATUS:
            return protocol.ok_response(status=self.status_dict())
        if verb == protocol.VERB_SUBMIT:
            return self._handle_submit(request)
        if verb == protocol.VERB_POLL:
            return self._handle_poll(request)
        if verb == protocol.VERB_RESULT:
            return self._handle_result(request)
        if verb == protocol.VERB_CANCEL:
            return self._handle_cancel(request)
        if verb == protocol.VERB_STATS:
            return protocol.ok_response(stats=self.stats_dict())
        if verb == protocol.VERB_JOBS:
            with self._lock:
                rows = [self._jobs[jid].summary() for jid in self._job_order]
            return protocol.ok_response(jobs=rows)
        if verb == protocol.VERB_SHUTDOWN:
            return protocol.ok_response(stopping=True)
        return protocol.error_response("unknown verb %r" % (verb,),
                                       "bad-verb")

    def _consume_serve_fault(self):
        """Consume one serve-tier resource fault, arming the matching
        deterministic failure: ``fd_exhaust`` forces the governor's fd
        check to bind at this admission; ``disk_full`` arms one injected
        ``ENOSPC`` in the journal and the cache store, so the next
        durability write walks the real prune/retry/suspend ladder."""
        plan = self.serve_fault_plan
        if plan is None:
            return
        kind = plan.next_resource_fault(allowed=("disk_full", "fd_exhaust"))
        if kind is None:
            return
        self.serve_faults_injected += 1
        if kind == "fd_exhaust":
            self.governor.force_pressure("fd", 1)
        else:  # disk_full
            if self.journal is not None:
                self.journal.inject_enospc(1)
            self.store.inject_enospc(1)

    def _admission_shed(self):
        """Load shedding at the front door: refuse *before* decoding
        the program image — an overloaded daemon must get cheaper per
        request, not more expensive. Returns an ``overloaded`` error
        response (retryable; the client backs off) or ``None``."""
        self._consume_serve_fault()
        reason = self.governor.admission_reason(
            queued_jobs=self.queue.queued_count())
        if reason is None:
            return None
        self.jobs_shed += 1
        return protocol.error_response(
            "daemon overloaded (%s); retry later" % reason, "overloaded")

    def _handle_submit(self, request):
        if self._stop.is_set():
            return protocol.error_response("daemon is draining", "draining")
        shed = self._admission_shed()
        if shed is not None:
            return shed
        client = str(request.get("client") or "anonymous")
        options = request.get("options") or {}
        if not isinstance(options, dict):
            return protocol.error_response("options must be an object",
                                           "bad-request")
        unknown = set(options) - _JOB_OPTIONS
        if unknown:
            return protocol.error_response(
                "unknown submit options: %s" % ", ".join(sorted(unknown)),
                "bad-request")
        engine_overrides = options.get("engine") or {}
        bad = set(engine_overrides) - set(EngineConfig().__dict__)
        if bad:
            return protocol.error_response(
                "unknown engine options: %s" % ", ".join(sorted(bad)),
                "bad-request")
        try:
            program = Program.from_dict(request.get("program") or {})
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            return protocol.error_response("bad program image: %s" % exc,
                                           "bad-program")
        token = request.get("token")
        if token is not None:
            token = str(token)
        namespace = program.image_hash()
        with self._lock:
            if token is not None and token in self._tokens:
                # Idempotent resubmission: the original job (possibly
                # replayed across a daemon restart) answers for it.
                existing = self._jobs.get(self._tokens[token])
                if existing is not None:
                    self.jobs_deduped += 1
                    return protocol.ok_response(
                        job_id=existing.job_id,
                        namespace=existing.namespace,
                        state=existing.state, deduped=True,
                        warm_entries=self.store.entry_count(
                            existing.namespace),
                        queued=self.queue.queued_count())
            job = Job("j%d" % next(self._job_ids), client, program,
                      namespace, options, token=token)
            try:
                self.queue.submit(job)
            except BacklogFull as exc:
                return protocol.error_response(exc, "busy")
            self._remember_job(job)
            if token is not None:
                self._tokens[token] = job.job_id
            aggregate = self._client_aggregate(client)
            aggregate["jobs_submitted"] += 1
        # WAL before the ack: once the client learns the job_id, the
        # submission survives any crash. (A crash in the window before
        # this append loses a job the client was never acked for — the
        # client's token retry re-creates it.)
        self._journal("record_submit", job, token)
        self._work.set()
        return protocol.ok_response(
            job_id=job.job_id, namespace=namespace, deduped=False,
            warm_entries=self.store.entry_count(namespace),
            queued=self.queue.queued_count())

    def _handle_poll(self, request):
        job = self._find_job(request)
        if job is None:
            return protocol.error_response("unknown job", "not-found")
        payload = job.summary()
        return protocol.ok_response(job=payload)

    def _handle_result(self, request):
        job = self._find_job(request)
        if job is None:
            return protocol.error_response("unknown job", "not-found")
        if job.state != JOB_DONE:
            return protocol.error_response(
                "job %s is %s%s" % (job.job_id, job.state,
                                    ": %s" % job.error if job.error else ""),
                "not-done")
        if job.result is None and job.restored and self.journal is not None:
            # A job that finished before the crash: its payload lives
            # in the on-disk result store, not the replayed log.
            job.result = self.journal.load_result(job.job_id)
        if job.result is None:
            return protocol.error_response(
                "job %s finished but its result is no longer stored"
                % job.job_id, "result-evicted")
        result = dict(job.result)
        if not request.get("include_state", True):
            result.pop("final_state", None)
        return protocol.ok_response(job_id=job.job_id, result=result)

    def _handle_cancel(self, request):
        job = self._find_job(request)
        if job is None:
            return protocol.error_response("unknown job", "not-found")
        with self._lock:
            if job.terminal:
                return protocol.ok_response(job_id=job.job_id,
                                            state=job.state,
                                            cancelled=False)
            job.cancel_event.set()
            if job.state == JOB_QUEUED and self.queue.cancel_queued(job):
                job.finish(JOB_CANCELLED, error="cancelled while queued")
                self.jobs_cancelled += 1
                self._client_aggregate(job.client)["jobs_cancelled"] += 1
                return protocol.ok_response(job_id=job.job_id,
                                            state=job.state, cancelled=True)
        # Running: the boundary hook will raise at the next superstep.
        return protocol.ok_response(job_id=job.job_id, state=JOB_RUNNING,
                                    cancelled=True)

    def _find_job(self, request):
        """Resolve a job by id or idempotency token. Token lookups are
        what survive a daemon restart: the client may never learn the
        replayed job's id, but its token maps to it."""
        job_id = request.get("job_id")
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                token = request.get("token")
                if token is not None:
                    job = self._jobs.get(self._tokens.get(str(token)))
            return job

    def _remember_job(self, job):
        self._jobs[job.job_id] = job
        self._job_order.append(job.job_id)
        # Bound history: drop the oldest *terminal* jobs beyond the cap.
        if len(self._job_order) > _JOB_HISTORY:
            for job_id in list(self._job_order):
                if len(self._job_order) <= _JOB_HISTORY:
                    break
                old = self._jobs[job_id]
                if old.terminal:
                    self._job_order.remove(job_id)
                    del self._jobs[job_id]

    def _client_aggregate(self, client):
        aggregate = self._clients.get(client)
        if aggregate is None:
            aggregate = {"jobs_submitted": 0, "jobs_done": 0,
                         "jobs_failed": 0, "jobs_cancelled": 0,
                         "runtime": {}, "stats": {}}
            self._clients[client] = aggregate
        return aggregate

    @staticmethod
    def _accumulate(into, delta):
        for key, value in delta.items():
            if isinstance(value, (int, float)):
                into[key] = into.get(key, 0) + value

    # -- scheduling ----------------------------------------------------------

    def _scheduler_loop(self):
        while not self._stop.is_set():
            self._work.wait(timeout=0.1)
            self._work.clear()
            while not self._stop.is_set():
                with self._lock:
                    if len(self._job_threads) >= \
                            self.config.max_concurrent_jobs:
                        break
                    job = self.queue.next_runnable(self._runnable)
                    if job is None:
                        break
                    lease = self._acquire_lease(job)
                    thread = threading.Thread(
                        target=self._run_job, args=(job, lease),
                        name="repro-serve-job-%s" % job.job_id, daemon=True)
                    self._job_threads[job.job_id] = thread
                thread.start()

    @staticmethod
    def _lease_workers(lease):
        """Live worker count charged against the budget. An autoscaled
        pool that shrank below its lease width only occupies the slots
        it actually kept — the difference is free budget other
        namespaces can admit against. Reading ``active_workers`` from
        the daemon thread races a job-thread resize benignly: it is an
        admission heuristic, and the lease width stays the ceiling."""
        if lease.pool is not None:
            return lease.pool.active_workers
        return lease.n_workers

    def _runnable(self, job):
        """Resource-manager veto, called under the daemon lock."""
        lease = self._pools.get(job.namespace)
        if lease is not None:
            return not lease.busy  # same image serializes on its pool
        needed = self._job_workers(job)
        committed = sum(self._lease_workers(l)
                        for l in self._pools.values() if l.busy)
        return committed + needed <= self.config.worker_budget

    def _job_workers(self, job):
        workers = job.options.get("workers") or self.config.workers_per_job
        return max(1, min(int(workers), self.config.worker_budget))

    def _acquire_lease(self, job):
        """Reserve (or create) the pool lease for a job. Lock held."""
        lease = self._pools.get(job.namespace)
        if lease is not None:
            lease.busy = True
            return lease
        needed = self._job_workers(job)
        # Retire idle pools LRU until the new one fits the budget.
        total = sum(self._lease_workers(l) for l in self._pools.values())
        idle = sorted((l for l in self._pools.values() if not l.busy),
                      key=lambda l: l.last_used)
        while total + needed > self.config.worker_budget and idle:
            victim = idle.pop(0)
            del self._pools[victim.namespace]
            total -= self._lease_workers(victim)
            if victim.pool is not None:
                victim.pool.shutdown()
            self.pools_retired += 1
        lease = _PoolLease(job.namespace, job.program.name, needed,
                           job.options.get("transport")
                           or self.config.transport)
        self._pools[job.namespace] = lease
        return lease

    # -- job execution (job thread; daemon lock NOT held) --------------------

    def _pool_runtime_config(self, lease):
        return RuntimeConfig(
            n_workers=lease.n_workers,
            task_timeout_seconds=self.config.task_timeout_seconds,
            transport=lease.transport)

    def _job_runtime_config(self, job, lease):
        options = job.options
        # The lease width is the autoscaler's ceiling: a job may shrink
        # its pool (returning budget to other namespaces) but never grow
        # past what the resource manager admitted it at.
        return RuntimeConfig(
            n_workers=lease.n_workers,
            superstep_scale=int(options.get("superstep_scale")
                                or self.config.superstep_scale),
            max_instructions=int(options.get("max_instructions")
                                 or self.config.max_instructions),
            inflight_wait_bias=float(options.get("inflight_wait_bias", 1.0)),
            task_timeout_seconds=self.config.task_timeout_seconds,
            transport=lease.transport,
            autoscale=options.get("autoscale") or self.config.autoscale,
            autoscale_max_workers=lease.n_workers)

    @staticmethod
    def _engine_config(job):
        overrides = dict(job.options.get("engine") or {})
        if "logistic_learning_rates" in overrides:
            overrides["logistic_learning_rates"] = tuple(
                overrides["logistic_learning_rates"])
        return EngineConfig(**overrides)

    @staticmethod
    def _verify_config(job):
        from repro.verify import VerifyConfig
        if job.options.get("strict_verify"):
            return VerifyConfig(strict=True)
        rate = job.options.get("verify_rate")
        if rate is not None:
            return VerifyConfig(rate=float(rate))
        return None

    def _run_job(self, job, lease):
        pool_poisoned = False
        runtime_delta = None
        stats_dict = None
        self._journal("record_state", job.job_id, JOB_RUNNING)
        self.watchdog.watch(
            job, lease,
            deadline_seconds=job.options.get("deadline_seconds"))
        try:
            if self.degraded:
                payload = self._run_job_degraded(job)
                with self._lock:
                    job.finish(JOB_DONE, result=payload)
                    self.jobs_done += 1
                self._journal("record_state", job.job_id, JOB_DONE,
                              extra={"state_sha256":
                                     payload["state_sha256"],
                                     "degraded": True})
                self._journal("store_result", job.job_id, payload)
                return
            if lease.pool is None:
                lease.pool = WorkerPool(job.program,
                                        self._pool_runtime_config(lease))
                self.pools_created += 1
            pool = lease.pool
            engine_config = self._engine_config(job)
            config_key = repr(engine_config)
            warm = self.store.snapshot(job.namespace)
            runtime_snapshot = pool.stats.snapshot()

            def boundary_hook(engine, superstep):
                # Heartbeat first, then the watchdog's verdict, then a
                # client cancel — the watchdog also sets the cancel
                # event (to unwedge cooperative paths), so the order
                # decides which exception (and terminal state) wins.
                self.watchdog.heartbeat(job.job_id, superstep)
                reason = self.watchdog.timeout_reason(job.job_id)
                if reason is not None:
                    raise WatchdogTimeout(
                        "job %s condemned by watchdog: %s"
                        % (job.job_id, reason))
                if job.cancel_event.is_set():
                    raise JobCancelled("job %s cancelled" % job.job_id)

            engine = RealParallelEngine(
                job.program, config=engine_config,
                runtime_config=self._job_runtime_config(job, lease),
                recognized=lease.recognized.get(config_key),
                pool=pool, initial_cache=warm,
                boundary_hook=boundary_hook,
                verify=self._verify_config(job))
            result = engine.run()
            if engine.recognized is not None:
                lease.recognized[config_key] = engine.recognized
            # Absorb stragglers so the next job on this pool starts
            # clean; their OK entries are valid facts about this image.
            leftovers = pool.quiesce(self.config.quiesce_seconds)
            learned = itertools.chain(
                result.cache.entries(),
                (o.entry for o in leftovers if o.ok and not o.task.audit))
            merged = self.store.merge(job.namespace, learned)
            runtime_delta = pool.stats.delta_since(runtime_snapshot)
            stats_dict = result.stats.as_dict()
            state = result.final_state
            payload = {
                "job_id": job.job_id,
                "client": job.client,
                "program": job.program.name,
                "namespace": job.namespace,
                "backend": "serve",
                "halted": result.halted,
                "wall_seconds": result.wall_seconds,
                "total_instructions": result.total_instructions,
                "first_splice_seconds": result.stats.first_splice_seconds,
                "hits": result.stats.hits,
                "n_workers": pool.n_workers,
                "transport": pool.config.transport,
                "warm_entries": len(warm),
                "merged_entries": merged,
                "stats": stats_dict,
                "runtime": runtime_delta,
                "cache": result.cache.stats_dict(),
                "audit": result.audit,
                "final_state": base64.b64encode(state).decode("ascii"),
                "state_sha256": hashlib.sha256(state).hexdigest(),
            }
            with self._lock:
                job.finish(JOB_DONE, result=payload)
                self.jobs_done += 1
            self._journal("record_state", job.job_id, JOB_DONE,
                          extra={"state_sha256": payload["state_sha256"]})
            self._journal("store_result", job.job_id, payload)
        except WatchdogTimeout as exc:
            # The pool may already have had its workers killed (or been
            # shut down outright) by the escalation ladder: retire it,
            # don't quiesce it — a condemned job's stragglers are not
            # worth racing a dying pool for.
            pool_poisoned = True
            with self._lock:
                if not job.terminal:
                    job.finish(JOB_FAILED, error=str(exc))
                self.jobs_failed += 1
            self._journal("record_state", job.job_id, JOB_FAILED,
                          error=str(exc))
        except JobCancelled as exc:
            self._absorb_stragglers(job, lease)
            with self._lock:
                if not job.terminal:
                    job.finish(JOB_CANCELLED, error=str(exc))
                self.jobs_cancelled += 1
            self._journal("record_state", job.job_id, JOB_CANCELLED,
                          error=str(exc))
        except Exception as exc:  # the job fails; the daemon must not
            pool_poisoned = True
            with self._lock:
                if not job.terminal:
                    job.finish(JOB_FAILED,
                               error="%s: %s" % (type(exc).__name__, exc))
                self.jobs_failed += 1
            self._journal("record_state", job.job_id, JOB_FAILED,
                          error=job.error)
        finally:
            self.watchdog.unwatch(job.job_id)
            self._release_lease(job, lease, pool_poisoned, runtime_delta,
                                stats_dict)

    def _run_job_degraded(self, job):
        """Degraded-mode execution: the reference interpreter in
        bounded chunks — no pool, no shm rings, no speculation, no
        cache write-through. Same byte-identical final state (it *is*
        the sequential definition), a fraction of the resource
        footprint, heartbeats and cancel checks between chunks so the
        watchdog still supervises it."""
        self.jobs_degraded += 1
        budget = int(job.options.get("max_instructions")
                     or self.config.max_instructions)
        machine = job.program.make_machine()
        start = time.perf_counter()
        chunk = 1_000_000
        superstep = 0
        while not machine.halted and machine.instruction_count < budget:
            self.watchdog.heartbeat(job.job_id, superstep)
            reason = self.watchdog.timeout_reason(job.job_id)
            if reason is not None:
                raise WatchdogTimeout("job %s condemned by watchdog: %s"
                                      % (job.job_id, reason))
            if job.cancel_event.is_set():
                raise JobCancelled("job %s cancelled" % job.job_id)
            machine.run(max_instructions=min(
                chunk, budget - machine.instruction_count))
            superstep += 1
        wall = time.perf_counter() - start
        state = bytes(machine.state.buf)
        return {
            "job_id": job.job_id,
            "client": job.client,
            "program": job.program.name,
            "namespace": job.namespace,
            "backend": "serve-degraded",
            "degraded": True,
            "halted": machine.halted,
            "wall_seconds": wall,
            "total_instructions": machine.instruction_count,
            "first_splice_seconds": None,
            "hits": 0,
            "n_workers": 0,
            "transport": None,
            "warm_entries": 0,
            "merged_entries": 0,
            "stats": {},
            "runtime": {},
            "cache": {},
            "audit": None,
            "final_state": base64.b64encode(state).decode("ascii"),
            "state_sha256": hashlib.sha256(state).hexdigest(),
        }

    def _absorb_stragglers(self, job, lease):
        """Bank whatever a cancelled job's workers still finished."""
        if lease.pool is None:
            return
        try:
            leftovers = lease.pool.quiesce(self.config.quiesce_seconds)
            self.store.merge(job.namespace,
                             (o.entry for o in leftovers
                              if o.ok and not o.task.audit))
        except Exception:
            pass  # cleanup must not mask the cancellation

    def _release_lease(self, job, lease, pool_poisoned, runtime_delta,
                       stats_dict):
        retired = None
        with self._lock:
            self.queue.note_finished(job)
            self._job_threads.pop(job.job_id, None)
            lease.busy = False
            lease.jobs_served += 1
            lease.last_used = time.monotonic()
            if pool_poisoned and self._pools.get(job.namespace) is lease:
                # A failed job's pool is never handed to another job:
                # whatever broke it must not leak across tenants.
                del self._pools[job.namespace]
                retired = lease.pool
                self.pools_retired += 1
            aggregate = self._client_aggregate(job.client)
            key = {JOB_DONE: "jobs_done", JOB_FAILED: "jobs_failed",
                   JOB_CANCELLED: "jobs_cancelled"}.get(job.state)
            if key:
                aggregate[key] += 1
            if runtime_delta is not None:
                self._accumulate(aggregate["runtime"], runtime_delta)
            if stats_dict is not None:
                self._accumulate(aggregate["stats"], stats_dict)
            self._jobs_since_flush += 1
            flush_due = self._jobs_since_flush >= self.config.flush_every_jobs
            if flush_due:
                self._jobs_since_flush = 0
        if retired is not None:
            retired.shutdown()
        if flush_due and not self.degraded:
            # Degraded mode disables cache write-through: a full or
            # failing disk must not turn every job completion into a
            # crash. Flush health feeds the self-check either way.
            try:
                self.store.flush()
                self.selfcheck.note_flush_ok()
            except Exception as exc:
                self.selfcheck.note_flush_failure(exc)
        self._work.set()

    # -- reporting -----------------------------------------------------------

    def stats_dict(self):
        """The ``stats`` verb: service, per-client, pool, queue, cache."""
        with self._lock:
            by_state = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            pools = [{
                "namespace": lease.namespace,
                "program": lease.program_name,
                "workers": lease.n_workers,
                "live_workers": self._lease_workers(lease),
                "transport": lease.transport,
                "busy": lease.busy,
                "jobs_served": lease.jobs_served,
                "idle_seconds": (0.0 if lease.busy
                                 else time.monotonic() - lease.last_used),
            } for lease in sorted(self._pools.values(),
                                  key=lambda l: l.namespace)]
            clients = {name: {
                "jobs_submitted": agg["jobs_submitted"],
                "jobs_done": agg["jobs_done"],
                "jobs_failed": agg["jobs_failed"],
                "jobs_cancelled": agg["jobs_cancelled"],
                "runtime": dict(agg["runtime"]),
                "stats": dict(agg["stats"]),
            } for name, agg in sorted(self._clients.items())}
            return {
                "socket": self.config.socket_path,
                "uptime_seconds": (time.time() - self.started_at
                                   if self.started_at else 0.0),
                "draining": self._stop.is_set(),
                "worker_budget": self.config.worker_budget,
                "workers_committed": sum(self._lease_workers(l)
                                         for l in self._pools.values()),
                "connections_accepted": self.connections_accepted,
                "requests_served": self.requests_served,
                "protocol_errors": self.protocol_errors,
                "jobs": dict(by_state, total=len(self._jobs),
                             done=self.jobs_done, failed=self.jobs_failed,
                             cancelled=self.jobs_cancelled,
                             replayed=self.jobs_replayed,
                             requeued=self.jobs_requeued,
                             deduped=self.jobs_deduped,
                             degraded=self.jobs_degraded,
                             shed=self.jobs_shed),
                "clients": clients,
                "pools": pools,
                "pools_created": self.pools_created,
                "pools_retired": self.pools_retired,
                "queue": self.queue.stats_dict(),
                "cache": self.store.stats_dict(),
                "degraded": self.degraded,
                "degraded_reason": self.degraded_reason,
                "journal": (self.journal.stats_dict()
                            if self.journal is not None else None),
                "journal_errors": self.journal_errors,
                "watchdog": self.watchdog.stats_dict(),
                "selfcheck": self.selfcheck.stats_dict(),
                "governor": self.governor.stats_dict(),
                "serve_faults_injected": self.serve_faults_injected,
            }

    def status_dict(self):
        """The ``status`` verb: the health probe behind
        ``repro serve --status`` — journal, watchdog, degraded-mode
        state, compact enough to poll cheaply."""
        with self._lock:
            by_state = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "ok": True,
                "pid": os.getpid(),
                "socket": self.config.socket_path,
                "uptime_seconds": (time.time() - self.started_at
                                   if self.started_at else 0.0),
                "draining": self._stop.is_set(),
                "degraded": self.degraded,
                "degraded_reason": self.degraded_reason,
                "jobs": dict(by_state,
                             replayed=self.jobs_replayed,
                             requeued=self.jobs_requeued,
                             shed=self.jobs_shed),
                "journal": (self.journal.stats_dict()
                            if self.journal is not None else None),
                "journal_errors": self.journal_errors,
                "watchdog": self.watchdog.stats_dict(),
                "selfcheck": self.selfcheck.stats_dict(),
                "governor": self.governor.stats_dict(),
                "cache": self.store.stats_dict(),
            }
