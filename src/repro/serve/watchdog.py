"""Watchdog supervision for daemon jobs, and resource self-checks.

Speculative runtimes must bound and reclaim misbehaving speculative
work rather than trust it to finish (Bramas, arXiv:1803.04211; see
PAPERS.md) — and the daemon multiplexes *tenants*, so one guest
program stuck in an infinite non-halting loop (or an engine wedged on
a dead transport) must never pin a warm pool or starve the queue.

Two signals per running job, both cheap:

* a **wall-clock deadline** (``deadline_seconds``, per job, overridable
  at submit time): the hard cap on total runtime;
* **progress heartbeats**: the engine's ``boundary_hook`` fires at
  every superstep boundary, so "no heartbeat for
  ``no_progress_seconds``" means the engine is wedged *between*
  boundaries — stuck inside a pool wait — and a cooperative cancel
  can never reach it.

The escalation ladder walks the cheapest exit first:

1. **cancel** — set the job's cancel event; a healthy engine raises at
   its next boundary (cooperative, nothing is lost but the job).
2. **kill workers** — after ``kill_grace_seconds`` without the job
   ending, SIGKILL the pool's worker processes. The engine's own poll
   loop sees EOF, reports the in-flight tasks crashed, and PR 3
   supervision respawns the slots — which unwedges a stuck
   ``pool.poll`` wait and lets the boundary (and step 1's cancel)
   fire. Worker kills are the *only* pool mutation done from the
   watchdog thread: everything else races the engine.
3. **shut the pool down** — the last resort; the engine's next submit
   raises and the job fails through the normal containment path (pool
   retired, never reused).

Every step is journaled as a structured incident. The watchdog runs as
one daemon thread ticking :meth:`Watchdog.step`; the method takes an
explicit ``now`` so tests drive the whole state machine without
sleeping.

This module also hosts the **self-check** probes behind degraded mode:
/dev/shm headroom (a full tmpfs makes every ring allocation fail at
spawn) and cache-store flush health. The daemon polls them and flips
into journaled degraded mode — sequential execution, cache
write-through disabled — instead of crashing when resources run out.
"""

import os
import threading
import time

from repro.errors import ReproError
from repro.runtime import resources

#: Escalation stages, in order.
STAGE_WATCHING = "watching"
STAGE_CANCELLING = "cancelling"
STAGE_KILLING = "killing"
STAGE_ABANDONED = "abandoned"

#: Bounded incident history kept for ``stats``/``status``.
_INCIDENT_HISTORY = 64


class WatchdogTimeout(ReproError):
    """Raised inside a job's engine at a boundary after the watchdog
    flagged it (deadline or no-progress) — distinct from a client
    cancel so the job lands FAILED with the incident attached."""


class JobWatch:
    """Watchdog state for one running job."""

    __slots__ = ("job", "lease", "deadline_seconds", "started_at",
                 "last_heartbeat", "heartbeats", "stage", "stage_since",
                 "reason")

    def __init__(self, job, lease, deadline_seconds, now):
        self.job = job
        self.lease = lease
        self.deadline_seconds = deadline_seconds
        self.started_at = now
        self.last_heartbeat = now
        self.heartbeats = 0
        self.stage = STAGE_WATCHING
        self.stage_since = now
        self.reason = None  # set when the watchdog condemns the job


class Watchdog:
    """Deadline + progress supervision over the daemon's running jobs.

    ``step(now)`` evaluates every watch and performs at most one
    escalation per watch per call; it returns the incidents it raised
    so the caller (the daemon's watchdog thread) can journal them.
    """

    def __init__(self, deadline_seconds=None, no_progress_seconds=20.0,
                 kill_grace_seconds=5.0):
        self.deadline_seconds = deadline_seconds
        self.no_progress_seconds = no_progress_seconds
        self.kill_grace_seconds = kill_grace_seconds
        self._lock = threading.Lock()
        self._watches = {}  # job_id -> JobWatch
        self.incidents = []  # bounded, newest last
        self.deadline_timeouts = 0
        self.progress_timeouts = 0
        self.worker_kills = 0
        self.pool_abandons = 0

    # -- registration (called by job threads) --------------------------------

    def watch(self, job, lease, deadline_seconds=None, now=None):
        now = time.monotonic() if now is None else now
        deadline = (deadline_seconds if deadline_seconds is not None
                    else self.deadline_seconds)
        with self._lock:
            self._watches[job.job_id] = JobWatch(job, lease, deadline, now)

    def unwatch(self, job_id):
        with self._lock:
            self._watches.pop(job_id, None)

    def heartbeat(self, job_id, superstep=None, now=None):
        """Called from the engine's boundary hook: the job progressed."""
        now = time.monotonic() if now is None else now
        with self._lock:
            watch = self._watches.get(job_id)
            if watch is not None:
                watch.last_heartbeat = now
                watch.heartbeats += 1

    def timeout_reason(self, job_id):
        """Why the watchdog condemned this job (``None`` if it didn't).
        The boundary hook checks this to raise :class:`WatchdogTimeout`
        instead of a plain cancel."""
        with self._lock:
            watch = self._watches.get(job_id)
            return watch.reason if watch is not None else None

    # -- evaluation (called by the watchdog thread or tests) ------------------

    def step(self, now=None):
        """One supervision pass; returns the incidents raised."""
        now = time.monotonic() if now is None else now
        with self._lock:
            watches = list(self._watches.values())
        raised = []
        for watch in watches:
            incident = self._evaluate(watch, now)
            if incident is not None:
                raised.append(incident)
        if raised:
            # Order by the clock the state machine runs on: wall time
            # can step (NTP, suspend) and would misorder incidents
            # relative to the escalations that raised them.
            raised.sort(key=lambda i: i["monotonic"])
            with self._lock:
                self.incidents.extend(raised)
                del self.incidents[:-_INCIDENT_HISTORY]
        return raised

    def _evaluate(self, watch, now):
        job = watch.job
        if watch.stage == STAGE_WATCHING:
            if watch.deadline_seconds is not None and \
                    now - watch.started_at > watch.deadline_seconds:
                self.deadline_timeouts += 1
                return self._condemn(watch, now, "deadline", {
                    "deadline_seconds": watch.deadline_seconds,
                    "ran_seconds": now - watch.started_at,
                })
            if self.no_progress_seconds is not None and \
                    now - watch.last_heartbeat > self.no_progress_seconds:
                self.progress_timeouts += 1
                return self._condemn(watch, now, "no-progress", {
                    "stalled_seconds": now - watch.last_heartbeat,
                    "heartbeats": watch.heartbeats,
                })
            return None
        if watch.stage == STAGE_CANCELLING:
            if now - watch.stage_since <= self.kill_grace_seconds:
                return None
            # The cooperative cancel did not land: the engine is wedged
            # between boundaries. Kill the workers so its poll loop
            # unblocks (crash detection + respawn are the engine's own
            # supervision machinery — safe from this thread).
            killed = 0
            pool = watch.lease.pool if watch.lease is not None else None
            if pool is not None:
                killed = pool.kill_workers()
            self.worker_kills += killed
            watch.stage = STAGE_KILLING
            watch.stage_since = now
            return {"kind": "worker-kill", "job_id": job.job_id,
                    "reason": watch.reason, "workers_killed": killed,
                    "time": time.time(), "monotonic": now}
        if watch.stage == STAGE_KILLING:
            if now - watch.stage_since <= self.kill_grace_seconds:
                return None
            # Still alive after its workers died: shut the pool down —
            # the engine's next dispatch raises and the job fails.
            pool = watch.lease.pool if watch.lease is not None else None
            if pool is not None:
                pool.shutdown()
            self.pool_abandons += 1
            watch.stage = STAGE_ABANDONED
            watch.stage_since = now
            return {"kind": "pool-abandon", "job_id": job.job_id,
                    "reason": watch.reason, "time": time.time(),
                    "monotonic": now}
        return None  # abandoned: nothing left to escalate

    def _condemn(self, watch, now, reason, detail):
        watch.reason = reason
        watch.stage = STAGE_CANCELLING
        watch.stage_since = now
        watch.job.cancel_event.set()
        # Both clocks: wall time for humans reading the journal,
        # monotonic for ordering/replay against the state machine
        # (which runs entirely on ``now``).
        incident = {"kind": reason, "job_id": watch.job.job_id,
                    "time": time.time(), "monotonic": now}
        incident.update(detail)
        return incident

    # -- reporting -----------------------------------------------------------

    def stats_dict(self):
        with self._lock:
            return {
                "watching": len(self._watches),
                "deadline_timeouts": self.deadline_timeouts,
                "progress_timeouts": self.progress_timeouts,
                "worker_kills": self.worker_kills,
                "pool_abandons": self.pool_abandons,
                "incidents": list(self.incidents[-8:]),
            }


# -- resource self-checks (degraded-mode probes) ------------------------------

def shm_headroom_bytes(path=None):
    """Free bytes on the tmpfs actually backing
    ``multiprocessing.shared_memory`` (probed once by
    :func:`repro.runtime.resources.shm_backing_dir` — not a hardcoded
    ``/dev/shm``, which is wrong on platforms that mount the POSIX shm
    namespace elsewhere), or ``None`` when there is no such filesystem
    (non-Linux; the shm transport is off anyway)."""
    if path is None:
        path = resources.shm_backing_dir()
    try:
        stat = os.statvfs(path)
    except (OSError, AttributeError):
        return None
    return stat.f_bavail * stat.f_frsize


class SelfCheck:
    """Aggregates the daemon's health probes into one healthy/degraded
    verdict, with a reason string for the journal. Deliberately free of
    daemon state so tests can drive it with fake probes.

    ``min_shm_headroom_bytes=None`` follows ``REPRO_SHM_HEADROOM_BYTES``
    (default 64 MiB); ``0`` explicitly disables the headroom check."""

    def __init__(self, min_shm_headroom_bytes=None,
                 headroom_probe=shm_headroom_bytes):
        if min_shm_headroom_bytes is None:
            min_shm_headroom_bytes = resources.default_shm_headroom_bytes()
        self.min_shm_headroom_bytes = min_shm_headroom_bytes
        self.headroom_probe = headroom_probe
        self.flush_failures = 0
        self.last_flush_error = None
        self.checks_run = 0

    def note_flush_failure(self, exc):
        self.flush_failures += 1
        self.last_flush_error = "%s: %s" % (type(exc).__name__, exc)

    def note_flush_ok(self):
        self.last_flush_error = None

    def verdict(self):
        """``(healthy, reason)`` — reason explains a degraded verdict."""
        self.checks_run += 1
        if self.last_flush_error is not None:
            return False, "cache-store flush failing: %s" \
                % self.last_flush_error
        headroom = self.headroom_probe()
        if headroom is not None and self.min_shm_headroom_bytes and \
                headroom < self.min_shm_headroom_bytes:
            return False, "shm headroom %d bytes below the %d floor" \
                % (headroom, self.min_shm_headroom_bytes)
        return True, None

    def stats_dict(self):
        headroom = self.headroom_probe()
        return {
            "checks_run": self.checks_run,
            "flush_failures": self.flush_failures,
            "last_flush_error": self.last_flush_error,
            "shm_headroom_bytes": headroom,
            "min_shm_headroom_bytes": self.min_shm_headroom_bytes,
        }
