"""Speculation as a service: the resident ``repro serve`` daemon.

A one-shot ``repro run`` pays three startup taxes every time — worker
processes spawn and load the image, the recognizer re-derives hot IPs,
and the trajectory cache starts empty. The paper's economics point the
other way: cache entries are exact, reusable facts about a program's
transition function, and §6 calls cross-invocation reuse the natural
next step. This package keeps all three warm in one long-lived daemon:

* :mod:`repro.serve.protocol` — length-prefixed JSON over a unix
  socket (submit / poll / result / cancel / stats / jobs / ping /
  shutdown);
* :mod:`repro.serve.queue` — fair round-robin central queue with
  per-client admission bounds;
* :mod:`repro.serve.daemon` — :class:`SpeculationDaemon`: warm pools
  per image hash under a global worker budget, a shared
  :class:`~repro.core.cache_store.SharedCacheStore`, drain/flush/sweep
  lifecycle;
* :mod:`repro.serve.client` — :class:`ServeClient`, the fault-hardened
  library behind ``repro submit`` / ``repro jobs``;
* :mod:`repro.serve.journal` — :class:`JobJournal`, the crash-only
  write-ahead log + result store the daemon replays after a SIGKILL;
* :mod:`repro.serve.watchdog` — :class:`Watchdog` deadline/progress
  supervision and the :class:`SelfCheck` probes behind degraded mode.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.config import ServeConfig, default_socket_path
from repro.serve.daemon import ServeError, SpeculationDaemon
from repro.serve.journal import JobJournal, JournalError
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.watchdog import SelfCheck, Watchdog, WatchdogTimeout
from repro.serve.queue import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    BacklogFull,
    CentralQueue,
    Job,
    JobCancelled,
)

__all__ = [
    "BacklogFull",
    "CentralQueue",
    "Job",
    "JobCancelled",
    "JobJournal",
    "JournalError",
    "JOB_CANCELLED",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "SelfCheck",
    "ServeConfig",
    "ServeError",
    "SpeculationDaemon",
    "Watchdog",
    "WatchdogTimeout",
    "default_socket_path",
]
