"""SVM32 assembler toolchain.

A two-pass assembler with labels, data directives, and separate code/data
segments, plus a disassembler. The Mini-C compiler emits this assembly
text, mirroring the paper's pipeline of compiling C benchmarks down to
freestanding binaries for the simulator.
"""

from repro.asm.assembler import assemble, assemble_program
from repro.asm.disassembler import disassemble, disassemble_program

__all__ = ["assemble", "assemble_program", "disassemble", "disassemble_program"]
