"""Statement parser for SVM32 assembly.

Turns token lines into statements: labels, directives, and instructions
with structured operands. Label references are carried symbolically as
:class:`SymRef` and resolved by the assembler's second pass.
"""

from repro.errors import AssemblerError
from repro.asm.lexer import DIRECTIVE, IDENT, INT, PUNCT, REG


class SymRef:
    """A symbol reference plus constant addend, resolved in pass two."""

    __slots__ = ("name", "addend")

    def __init__(self, name, addend=0):
        self.name = name
        self.addend = addend

    def __repr__(self):
        if self.addend:
            return "SymRef(%s%+d)" % (self.name, self.addend)
        return "SymRef(%s)" % self.name


class RegOperand:
    __slots__ = ("reg",)

    def __init__(self, reg):
        self.reg = reg

    def __repr__(self):
        return "RegOperand(%d)" % self.reg


class ImmOperand:
    """An immediate: a plain int or a :class:`SymRef`."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "ImmOperand(%r)" % (self.value,)


class MemRef:
    """A memory operand ``[base + index*scale + disp]`` pre-resolution."""

    __slots__ = ("base", "index", "scale", "disp")

    def __init__(self, base=None, index=None, scale=1, disp=0):
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp  # int or SymRef

    def __repr__(self):
        return "MemRef(base=%r, index=%r, scale=%r, disp=%r)" % (
            self.base, self.index, self.scale, self.disp)


class LabelStmt:
    __slots__ = ("name", "line")

    def __init__(self, name, line):
        self.name = name
        self.line = line


class DirectiveStmt:
    __slots__ = ("name", "args", "line")

    def __init__(self, name, args, line):
        self.name = name
        self.args = args
        self.line = line


class InstrStmt:
    __slots__ = ("mnemonic", "operands", "line")

    def __init__(self, mnemonic, operands, line):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line = line


class _TokenCursor:
    def __init__(self, tokens, line):
        self.tokens = tokens
        self.pos = 0
        self.line = line

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self):
        tok = self.peek()
        if tok is None:
            raise AssemblerError("unexpected end of line", line=self.line)
        self.pos += 1
        return tok

    def accept_punct(self, char):
        tok = self.peek()
        if tok is not None and tok.kind == PUNCT and tok.value == char:
            self.pos += 1
            return True
        return False

    def expect_punct(self, char):
        if not self.accept_punct(char):
            raise AssemblerError("expected %r" % char, line=self.line)

    def at_end(self):
        return self.pos >= len(self.tokens)


def _parse_imm_expr(cur):
    """Parse ``term (('+'|'-') term)*`` into an int or SymRef."""
    name = None
    total = 0
    sign = 1
    if cur.accept_punct("-"):
        sign = -1
    while True:
        tok = cur.next()
        if tok.kind == INT:
            total += sign * tok.value
        elif tok.kind == IDENT:
            if name is not None:
                raise AssemblerError(
                    "at most one symbol per expression", line=cur.line)
            if sign < 0:
                raise AssemblerError(
                    "cannot negate a symbol", line=cur.line)
            name = tok.value
        else:
            raise AssemblerError(
                "expected number or symbol, got %r" % (tok.value,),
                line=cur.line)
        if cur.accept_punct("+"):
            sign = 1
        elif cur.accept_punct("-"):
            sign = -1
        else:
            break
    if name is None:
        return total
    return SymRef(name, total)


def _parse_mem(cur):
    """Parse the inside of ``[...]`` into a :class:`MemRef`."""
    base = None
    index = None
    scale = 1
    disp = 0
    sym = None
    sign = 1
    while True:
        tok = cur.next()
        if tok.kind == REG:
            if cur.accept_punct("*"):
                sc_tok = cur.next()
                if sc_tok.kind != INT or sc_tok.value not in (1, 2, 4):
                    raise AssemblerError(
                        "scale must be 1, 2 or 4", line=cur.line)
                if index is not None:
                    raise AssemblerError(
                        "two index registers in memory operand", line=cur.line)
                index = tok.value
                scale = sc_tok.value
            elif base is None:
                base = tok.value
            elif index is None:
                index = tok.value
                scale = 1
            else:
                raise AssemblerError(
                    "too many registers in memory operand", line=cur.line)
            if sign < 0:
                raise AssemblerError(
                    "cannot subtract a register", line=cur.line)
        elif tok.kind == INT:
            disp += sign * tok.value
        elif tok.kind == IDENT:
            if sym is not None:
                raise AssemblerError(
                    "at most one symbol per memory operand", line=cur.line)
            if sign < 0:
                raise AssemblerError("cannot negate a symbol", line=cur.line)
            sym = tok.value
        else:
            raise AssemblerError(
                "bad memory operand component %r" % (tok.value,),
                line=cur.line)
        if cur.accept_punct("+"):
            sign = 1
        elif cur.accept_punct("-"):
            sign = -1
        elif cur.accept_punct("]"):
            break
        else:
            raise AssemblerError(
                "expected '+', '-' or ']' in memory operand", line=cur.line)
    if index is not None and base is None:
        raise AssemblerError(
            "index register requires a base register", line=cur.line)
    final_disp = SymRef(sym, disp) if sym is not None else disp
    return MemRef(base=base, index=index, scale=scale, disp=final_disp)


def _parse_operand(cur):
    tok = cur.peek()
    if tok is None:
        raise AssemblerError("missing operand", line=cur.line)
    if tok.kind == REG:
        cur.next()
        return RegOperand(tok.value)
    if tok.kind == PUNCT and tok.value == "[":
        cur.next()
        return _parse_mem(cur)
    return ImmOperand(_parse_imm_expr(cur))


def parse_line(tokens, line_no):
    """Parse one token line into a list of statements.

    A line may contain a label, a label plus an instruction/directive, or
    just an instruction/directive.
    """
    statements = []
    cur = _TokenCursor(tokens, line_no)

    # Optional leading label(s).
    while (cur.peek() is not None and cur.peek().kind == IDENT
           and cur.pos + 1 < len(tokens)
           and tokens[cur.pos + 1].kind == PUNCT
           and tokens[cur.pos + 1].value == ":"):
        name_tok = cur.next()
        cur.next()  # colon
        statements.append(LabelStmt(name_tok.value, line_no))

    if cur.at_end():
        return statements

    head = cur.next()
    if head.kind == DIRECTIVE:
        args = []
        while not cur.at_end():
            args.append(_parse_operand(cur))
            if not cur.accept_punct(","):
                break
        if not cur.at_end():
            raise AssemblerError("trailing tokens after directive",
                                 line=line_no)
        statements.append(DirectiveStmt(head.value, args, line_no))
        return statements

    if head.kind != IDENT:
        raise AssemblerError(
            "expected mnemonic, got %r" % (head.value,), line=line_no)

    operands = []
    if not cur.at_end():
        while True:
            operands.append(_parse_operand(cur))
            if not cur.accept_punct(","):
                break
    if not cur.at_end():
        raise AssemblerError("trailing tokens after instruction", line=line_no)
    statements.append(InstrStmt(head.value.lower(), operands, line_no))
    return statements
