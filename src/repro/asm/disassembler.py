"""Disassembler for SVM32 code bytes."""

from repro.errors import EncodingError
from repro.isa.encoding import INSTRUCTION_SIZE
from repro.isa.instruction import Instruction


def disassemble(code, base=0):
    """Decode ``code`` into ``(address, Instruction)`` pairs.

    ``base`` is the program address of ``code[0]``; addresses in the output
    are absolute. Raises :class:`EncodingError` on undecodable bytes or a
    trailing partial instruction.
    """
    if len(code) % INSTRUCTION_SIZE:
        raise EncodingError(
            "code length %d is not a multiple of %d"
            % (len(code), INSTRUCTION_SIZE))
    out = []
    for offset in range(0, len(code), INSTRUCTION_SIZE):
        out.append((base + offset, Instruction.decode(code, offset)))
    return out


def disassemble_program(program):
    """Render a :class:`Program`'s code as listing text."""
    addr_to_label = {}
    for name, addr in program.symbols.items():
        addr_to_label.setdefault(addr, []).append(name)
    lines = []
    for addr, instr in disassemble(program.code, base=program.code_base):
        for label in sorted(addr_to_label.get(addr, ())):
            lines.append("%s:" % label)
        lines.append("  0x%06x  %s" % (addr, instr))
    return "\n".join(lines)
