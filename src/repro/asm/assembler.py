"""Two-pass assembler for SVM32.

Pass one walks the parsed statements, tracking the current segment (code
or data) and assigning every label an offset; pass two encodes
instructions with all symbol references resolved to absolute addresses.
The result is a :class:`repro.loader.image.Program`.

Supported directives::

    .code / .text        switch to the code segment (default)
    .data                switch to the data segment
    .word v, v, ...      emit 32-bit little-endian values (ints or labels)
    .byte v, v, ...      emit bytes
    .space N             emit N zero bytes
    .align N             pad the current segment to an N-byte boundary
    .entry label         set the program entry point (default: 'start'
                         label if present, else the first code address)
"""

from repro.errors import AssemblerError
from repro.isa.encoding import INSTRUCTION_SIZE
from repro.isa.instruction import Instruction, MemOperand
from repro.isa.opcodes import MNEMONIC_TO_OP, Op, OperandShape, OPCODE_INFO
from repro.asm.lexer import tokenize
from repro.asm.parser import (
    DirectiveStmt,
    ImmOperand,
    LabelStmt,
    MemRef,
    RegOperand,
    SymRef,
    parse_line,
)
from repro.loader.image import DEFAULT_CODE_BASE, DEFAULT_STACK_SIZE, Program

_CODE = "code"
_DATA = "data"


def _operand_kind(operand):
    if isinstance(operand, RegOperand):
        return "reg"
    if isinstance(operand, MemRef):
        return "mem"
    return "imm"


_SHAPE_SIGNATURE = {
    OperandShape.NONE: (),
    OperandShape.R: ("reg",),
    OperandShape.I: ("imm",),
    OperandShape.RR: ("reg", "reg"),
    OperandShape.RI: ("reg", "imm"),
    OperandShape.MEM_LOAD: ("reg", "mem"),
    OperandShape.MEM_STORE: ("mem", "reg"),
    OperandShape.JUMP: ("imm",),
}


def _select_opcode(stmt):
    """Pick the opcode whose operand shape matches the statement."""
    candidates = MNEMONIC_TO_OP.get(stmt.mnemonic)
    if not candidates:
        raise AssemblerError("unknown mnemonic %r" % stmt.mnemonic,
                             line=stmt.line)
    signature = tuple(_operand_kind(o) for o in stmt.operands)
    for op in candidates:
        if _SHAPE_SIGNATURE[OPCODE_INFO[op].shape] == signature:
            return op
    raise AssemblerError(
        "no form of %r takes operands (%s)"
        % (stmt.mnemonic, ", ".join(signature) or "none"), line=stmt.line)


class _Assembler:
    def __init__(self, source):
        self.source = source
        self.labels = {}  # name -> (segment, offset)
        self.entry_ref = None
        self.items = []  # (segment, kind, payload, line)
        self.code_size = 0
        self.data_size = 0

    # -- pass one ------------------------------------------------------------

    def _offset(self, segment):
        return self.code_size if segment == _CODE else self.data_size

    def _grow(self, segment, amount):
        if segment == _CODE:
            self.code_size += amount
        else:
            self.data_size += amount

    def pass_one(self):
        segment = _CODE
        for line_no, tokens in tokenize(self.source):
            for stmt in parse_line(tokens, line_no):
                if isinstance(stmt, LabelStmt):
                    if stmt.name in self.labels:
                        raise AssemblerError(
                            "duplicate label %r" % stmt.name, line=stmt.line)
                    self.labels[stmt.name] = (segment, self._offset(segment))
                elif isinstance(stmt, DirectiveStmt):
                    segment = self._directive(stmt, segment)
                else:
                    if segment != _CODE:
                        raise AssemblerError(
                            "instruction in data segment", line=stmt.line)
                    self.items.append((_CODE, "instr", stmt, stmt.line))
                    self._grow(_CODE, INSTRUCTION_SIZE)

    def _int_args(self, stmt, count=None):
        values = []
        for arg in stmt.args:
            if not isinstance(arg, ImmOperand):
                raise AssemblerError(
                    "%s takes immediate arguments" % stmt.name, line=stmt.line)
            values.append(arg.value)
        if count is not None and len(values) != count:
            raise AssemblerError(
                "%s takes %d argument(s)" % (stmt.name, count), line=stmt.line)
        return values

    def _directive(self, stmt, segment):
        name = stmt.name
        if name in (".code", ".text"):
            return _CODE
        if name == ".data":
            return _DATA
        if name == ".entry":
            (value,) = self._int_args(stmt, 1)
            if not isinstance(value, SymRef):
                raise AssemblerError(".entry takes a label", line=stmt.line)
            self.entry_ref = value
            return segment
        if name == ".word":
            values = self._int_args(stmt)
            if not values:
                raise AssemblerError(".word needs arguments", line=stmt.line)
            self.items.append((segment, "word", values, stmt.line))
            self._grow(segment, 4 * len(values))
            return segment
        if name == ".byte":
            values = self._int_args(stmt)
            if not values:
                raise AssemblerError(".byte needs arguments", line=stmt.line)
            self.items.append((segment, "byte", values, stmt.line))
            self._grow(segment, len(values))
            return segment
        if name == ".space":
            (amount,) = self._int_args(stmt, 1)
            if isinstance(amount, SymRef) or amount < 0:
                raise AssemblerError(".space takes a non-negative count",
                                     line=stmt.line)
            self.items.append((segment, "space", amount, stmt.line))
            self._grow(segment, amount)
            return segment
        if name == ".align":
            (alignment,) = self._int_args(stmt, 1)
            if isinstance(alignment, SymRef) or alignment <= 0:
                raise AssemblerError(".align takes a positive count",
                                     line=stmt.line)
            offset = self._offset(segment)
            pad = (-offset) % alignment
            self.items.append((segment, "space", pad, stmt.line))
            self._grow(segment, pad)
            return segment
        raise AssemblerError("unknown directive %r" % name, line=stmt.line)

    # -- pass two ------------------------------------------------------------

    def resolve_symbols(self, code_base, data_base):
        symbols = {}
        for name, (segment, offset) in self.labels.items():
            base = code_base if segment == _CODE else data_base
            symbols[name] = base + offset
        return symbols

    def _resolve(self, value, symbols, line):
        if isinstance(value, SymRef):
            if value.name not in symbols:
                raise AssemblerError("undefined symbol %r" % value.name,
                                     line=line)
            return symbols[value.name] + value.addend
        return value

    def _encode_instr(self, stmt, symbols):
        op = _select_opcode(stmt)
        shape = OPCODE_INFO[op].shape
        ops = stmt.operands
        if shape == OperandShape.NONE:
            instr = Instruction(op)
        elif shape == OperandShape.R:
            instr = Instruction(op, ra=ops[0].reg)
        elif shape in (OperandShape.I, OperandShape.JUMP):
            imm = self._resolve(ops[0].value, symbols, stmt.line)
            instr = Instruction(op, imm=imm)
        elif shape == OperandShape.RR:
            instr = Instruction(op, ra=ops[0].reg, rb=ops[1].reg)
        elif shape == OperandShape.RI:
            imm = self._resolve(ops[1].value, symbols, stmt.line)
            instr = Instruction(op, ra=ops[0].reg, imm=imm)
        elif shape == OperandShape.MEM_LOAD:
            mem = self._mem_operand(ops[1], symbols, stmt.line)
            instr = Instruction.with_mem(op, ops[0].reg, mem)
        elif shape == OperandShape.MEM_STORE:
            mem = self._mem_operand(ops[0], symbols, stmt.line)
            instr = Instruction.with_mem(op, ops[1].reg, mem)
        else:
            raise AssemblerError("unhandled shape %r" % shape, line=stmt.line)
        return instr.encode()

    def _mem_operand(self, ref, symbols, line):
        disp = self._resolve(ref.disp, symbols, line)
        return MemOperand(base=ref.base, index=ref.index, scale=ref.scale,
                          disp=disp)

    def pass_two(self, symbols):
        code = bytearray()
        data = bytearray()
        for segment, kind, payload, line in self.items:
            out = code if segment == _CODE else data
            if kind == "instr":
                out.extend(self._encode_instr(payload, symbols))
            elif kind == "word":
                for value in payload:
                    value = self._resolve(value, symbols, line)
                    out.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
            elif kind == "byte":
                for value in payload:
                    value = self._resolve(value, symbols, line)
                    out.append(value & 0xFF)
            elif kind == "space":
                out.extend(b"\x00" * payload)
            else:
                raise AssemblerError("unhandled item kind %r" % kind, line=line)
        return bytes(code), bytes(data)


def assemble_program(source, name="program",
                     code_base=DEFAULT_CODE_BASE,
                     stack_size=DEFAULT_STACK_SIZE,
                     mem_size=None, source_for_loc=None):
    """Assemble SVM32 assembly text into a :class:`Program`.

    ``source_for_loc`` optionally carries the original higher-level source
    (e.g. Mini-C) so Table 1's lines-of-code statistic reflects it instead
    of the generated assembly.
    """
    asm = _Assembler(source)
    asm.pass_one()
    data_base = (code_base + asm.code_size + 15) // 16 * 16
    symbols = asm.resolve_symbols(code_base, data_base)
    code, data = asm.pass_two(symbols)

    if asm.entry_ref is not None:
        entry = symbols.get(asm.entry_ref.name)
        if entry is None:
            raise AssemblerError("undefined entry label %r"
                                 % asm.entry_ref.name)
        entry += asm.entry_ref.addend
    elif "start" in symbols:
        entry = symbols["start"]
    else:
        entry = code_base

    return Program(name, code, data, symbols, entry, code_base=code_base,
                   stack_size=stack_size, mem_size=mem_size,
                   source=source_for_loc if source_for_loc is not None
                   else source)


# Short alias used throughout tests and examples.
assemble = assemble_program
