"""Line lexer for SVM32 assembly source."""

import re

from repro.errors import AssemblerError
from repro.isa.registers import NAME_TO_REG

# Token kinds.
IDENT = "ident"
REG = "reg"
INT = "int"
DIRECTIVE = "directive"
PUNCT = "punct"  # one of , : [ ] + - *

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>[;\#].*)
  | (?P<directive>\.[A-Za-z_][A-Za-z0-9_]*)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<int>[0-9]+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.$]*)
  | (?P<punct>[,:\[\]+\-*])
""", re.VERBOSE)


class Token:
    """One lexical token with its source line for error reporting."""

    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize_line(text, line_no):
    """Tokenize one source line; returns a (possibly empty) token list."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise AssemblerError(
                "unexpected character %r" % text[pos], line=line_no)
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        if match.lastgroup == "directive":
            tokens.append(Token(DIRECTIVE, match.group().lower(), line_no))
        elif match.lastgroup in ("hex", "int"):
            tokens.append(Token(INT, int(match.group(), 0), line_no))
        elif match.lastgroup == "ident":
            word = match.group()
            if word.lower() in NAME_TO_REG:
                tokens.append(Token(REG, int(NAME_TO_REG[word.lower()]),
                                    line_no))
            else:
                tokens.append(Token(IDENT, word, line_no))
        else:
            tokens.append(Token(PUNCT, match.group(), line_no))
    return tokens


def tokenize(source):
    """Tokenize full source; yields ``(line_no, tokens)`` for non-empty lines."""
    for line_no, text in enumerate(source.splitlines(), start=1):
        tokens = tokenize_line(text, line_no)
        if tokens:
            yield line_no, tokens
