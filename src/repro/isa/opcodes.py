"""Opcode definitions and per-opcode metadata for SVM32.

Each opcode carries an :class:`OperandShape` describing how its operand
fields are interpreted. The assembler, disassembler, and transition
function all key off this single table, so adding an opcode means adding
one enum member, one metadata row, and one semantic handler.
"""

import enum


class OperandShape(enum.Enum):
    """How an instruction's (mode, ra, rb, imm) fields are interpreted."""

    NONE = "none"  # no operands (nop, hlt, ret)
    R = "r"  # one register in ra
    I = "i"  # one 32-bit immediate
    RR = "rr"  # two registers: ra, rb
    RI = "ri"  # register ra and immediate
    MEM_LOAD = "mem_load"  # ra <- memory operand (mode, rb nibbles, imm)
    MEM_STORE = "mem_store"  # memory operand <- ra
    JUMP = "jump"  # absolute code target in imm


class Op(enum.IntEnum):
    """SVM32 opcode numbers (the first byte of every instruction)."""

    # -- data movement ----------------------------------------------------
    NOP = 0x00
    HLT = 0x01
    MOV_RR = 0x02
    MOV_RI = 0x03
    LOAD = 0x04  # ra <- mem32[ea]
    STORE = 0x05  # mem32[ea] <- ra
    LOAD8U = 0x06  # ra <- zero-extended mem8[ea]
    LOAD8S = 0x07  # ra <- sign-extended mem8[ea]
    STORE8 = 0x08  # mem8[ea] <- low byte of ra
    LEA = 0x09  # ra <- ea
    PUSH_R = 0x0A
    PUSH_I = 0x0B
    POP_R = 0x0C
    XCHG = 0x0D

    # -- arithmetic --------------------------------------------------------
    ADD_RR = 0x10
    ADD_RI = 0x11
    SUB_RR = 0x12
    SUB_RI = 0x13
    ADC_RR = 0x14
    SBB_RR = 0x15
    IMUL_RR = 0x16
    IMUL_RI = 0x17
    IDIV_R = 0x18  # eax <- eax / ra (signed, trunc); edx <- remainder
    UDIV_R = 0x19  # unsigned counterpart of IDIV_R
    INC_R = 0x1A
    DEC_R = 0x1B
    NEG_R = 0x1C
    NOT_R = 0x1D

    # -- logic and shifts --------------------------------------------------
    AND_RR = 0x20
    AND_RI = 0x21
    OR_RR = 0x22
    OR_RI = 0x23
    XOR_RR = 0x24
    XOR_RI = 0x25
    SHL_RI = 0x26
    SHL_RR = 0x27  # shift count in rb (low 5 bits)
    SHR_RI = 0x28
    SHR_RR = 0x29
    SAR_RI = 0x2A
    SAR_RR = 0x2B
    CMP_RR = 0x2C
    CMP_RI = 0x2D
    TEST_RR = 0x2E
    TEST_RI = 0x2F

    # -- control flow ------------------------------------------------------
    JMP = 0x30
    JMP_R = 0x31
    JZ = 0x32
    JNZ = 0x33
    JL = 0x34
    JLE = 0x35
    JG = 0x36
    JGE = 0x37
    JB = 0x38
    JBE = 0x39
    JA = 0x3A
    JAE = 0x3B
    JS = 0x3C
    JNS = 0x3D
    JO = 0x3E
    JNO = 0x3F
    CALL = 0x40
    CALL_R = 0x41
    RET = 0x42

    # -- set on condition --------------------------------------------------
    SETZ = 0x50
    SETNZ = 0x51
    SETL = 0x52
    SETLE = 0x53
    SETG = 0x54
    SETGE = 0x55
    SETB = 0x56
    SETA = 0x57


class OpInfo:
    """Static metadata for one opcode."""

    __slots__ = ("op", "mnemonic", "shape")

    def __init__(self, op, mnemonic, shape):
        self.op = op
        self.mnemonic = mnemonic
        self.shape = shape

    def __repr__(self):
        return "OpInfo(%s, %r, %s)" % (self.op.name, self.mnemonic, self.shape)


def _build_table():
    shape_of = {
        Op.NOP: OperandShape.NONE,
        Op.HLT: OperandShape.NONE,
        Op.MOV_RR: OperandShape.RR,
        Op.MOV_RI: OperandShape.RI,
        Op.LOAD: OperandShape.MEM_LOAD,
        Op.STORE: OperandShape.MEM_STORE,
        Op.LOAD8U: OperandShape.MEM_LOAD,
        Op.LOAD8S: OperandShape.MEM_LOAD,
        Op.STORE8: OperandShape.MEM_STORE,
        Op.LEA: OperandShape.MEM_LOAD,
        Op.PUSH_R: OperandShape.R,
        Op.PUSH_I: OperandShape.I,
        Op.POP_R: OperandShape.R,
        Op.XCHG: OperandShape.RR,
        Op.ADD_RR: OperandShape.RR,
        Op.ADD_RI: OperandShape.RI,
        Op.SUB_RR: OperandShape.RR,
        Op.SUB_RI: OperandShape.RI,
        Op.ADC_RR: OperandShape.RR,
        Op.SBB_RR: OperandShape.RR,
        Op.IMUL_RR: OperandShape.RR,
        Op.IMUL_RI: OperandShape.RI,
        Op.IDIV_R: OperandShape.R,
        Op.UDIV_R: OperandShape.R,
        Op.INC_R: OperandShape.R,
        Op.DEC_R: OperandShape.R,
        Op.NEG_R: OperandShape.R,
        Op.NOT_R: OperandShape.R,
        Op.AND_RR: OperandShape.RR,
        Op.AND_RI: OperandShape.RI,
        Op.OR_RR: OperandShape.RR,
        Op.OR_RI: OperandShape.RI,
        Op.XOR_RR: OperandShape.RR,
        Op.XOR_RI: OperandShape.RI,
        Op.SHL_RI: OperandShape.RI,
        Op.SHL_RR: OperandShape.RR,
        Op.SHR_RI: OperandShape.RI,
        Op.SHR_RR: OperandShape.RR,
        Op.SAR_RI: OperandShape.RI,
        Op.SAR_RR: OperandShape.RR,
        Op.CMP_RR: OperandShape.RR,
        Op.CMP_RI: OperandShape.RI,
        Op.TEST_RR: OperandShape.RR,
        Op.TEST_RI: OperandShape.RI,
        Op.JMP: OperandShape.JUMP,
        Op.JMP_R: OperandShape.R,
        Op.JZ: OperandShape.JUMP,
        Op.JNZ: OperandShape.JUMP,
        Op.JL: OperandShape.JUMP,
        Op.JLE: OperandShape.JUMP,
        Op.JG: OperandShape.JUMP,
        Op.JGE: OperandShape.JUMP,
        Op.JB: OperandShape.JUMP,
        Op.JBE: OperandShape.JUMP,
        Op.JA: OperandShape.JUMP,
        Op.JAE: OperandShape.JUMP,
        Op.JS: OperandShape.JUMP,
        Op.JNS: OperandShape.JUMP,
        Op.JO: OperandShape.JUMP,
        Op.JNO: OperandShape.JUMP,
        Op.CALL: OperandShape.JUMP,
        Op.CALL_R: OperandShape.R,
        Op.RET: OperandShape.NONE,
        Op.SETZ: OperandShape.R,
        Op.SETNZ: OperandShape.R,
        Op.SETL: OperandShape.R,
        Op.SETLE: OperandShape.R,
        Op.SETG: OperandShape.R,
        Op.SETGE: OperandShape.R,
        Op.SETB: OperandShape.R,
        Op.SETA: OperandShape.R,
    }
    mnemonic_of = {
        Op.MOV_RR: "mov",
        Op.MOV_RI: "mov",
        Op.ADD_RR: "add",
        Op.ADD_RI: "add",
        Op.SUB_RR: "sub",
        Op.SUB_RI: "sub",
        Op.ADC_RR: "adc",
        Op.SBB_RR: "sbb",
        Op.IMUL_RR: "imul",
        Op.IMUL_RI: "imul",
        Op.IDIV_R: "idiv",
        Op.UDIV_R: "udiv",
        Op.INC_R: "inc",
        Op.DEC_R: "dec",
        Op.NEG_R: "neg",
        Op.NOT_R: "not",
        Op.AND_RR: "and",
        Op.AND_RI: "and",
        Op.OR_RR: "or",
        Op.OR_RI: "or",
        Op.XOR_RR: "xor",
        Op.XOR_RI: "xor",
        Op.SHL_RI: "shl",
        Op.SHL_RR: "shl",
        Op.SHR_RI: "shr",
        Op.SHR_RR: "shr",
        Op.SAR_RI: "sar",
        Op.SAR_RR: "sar",
        Op.CMP_RR: "cmp",
        Op.CMP_RI: "cmp",
        Op.TEST_RR: "test",
        Op.TEST_RI: "test",
        Op.PUSH_R: "push",
        Op.PUSH_I: "push",
        Op.POP_R: "pop",
        Op.JMP_R: "jmpr",
        Op.CALL_R: "callr",
        Op.LOAD8U: "load8u",
        Op.LOAD8S: "load8s",
        Op.STORE8: "store8",
    }
    table = {}
    for op in Op:
        mnemonic = mnemonic_of.get(op, op.name.lower().replace("_r", ""))
        # Default rule strips a trailing "_r"; fix the ones it would mangle.
        if op in (Op.SETZ, Op.SETNZ, Op.SETL, Op.SETLE, Op.SETG, Op.SETGE,
                  Op.SETB, Op.SETA, Op.JMP, Op.JZ, Op.JNZ, Op.JL, Op.JLE,
                  Op.JG, Op.JGE, Op.JB, Op.JBE, Op.JA, Op.JAE, Op.JS,
                  Op.JNS, Op.JO, Op.JNO, Op.CALL, Op.RET, Op.NOP, Op.HLT,
                  Op.LOAD, Op.STORE, Op.LEA, Op.XCHG):
            mnemonic = mnemonic_of.get(op, op.name.lower())
        table[op] = OpInfo(op, mnemonic, shape_of[op])
    return table


OPCODE_INFO = _build_table()

# Mnemonic -> list of opcodes sharing it (e.g. "mov" names MOV_RR and
# MOV_RI; the assembler picks by operand types).
MNEMONIC_TO_OP = {}
for _info in OPCODE_INFO.values():
    MNEMONIC_TO_OP.setdefault(_info.mnemonic, []).append(_info.op)
