"""SVM32: the 32-bit register ISA executed by the trajectory-based simulator.

SVM32 stands in for the 32-bit x86 subset used by the paper's TBFS. It is a
byte-addressable, little-endian register machine with eight general-purpose
registers named after their x86 counterparts, an instruction pointer, an
arithmetic flags register, and a fixed 8-byte instruction encoding. The ISA
is deliberately x86-flavored (same register names, flag semantics, and
condition codes) so the paper's vocabulary maps one-to-one onto this code.
"""

from repro.isa.opcodes import Op, OperandShape, OPCODE_INFO, MNEMONIC_TO_OP
from repro.isa.registers import (
    Reg,
    REG_NAMES,
    REG_COUNT,
    NAME_TO_REG,
    Flag,
)
from repro.isa.encoding import (
    INSTRUCTION_SIZE,
    AddrMode,
    encode,
    decode,
)
from repro.isa.instruction import Instruction, MemOperand

__all__ = [
    "Op",
    "OperandShape",
    "OPCODE_INFO",
    "MNEMONIC_TO_OP",
    "Reg",
    "REG_NAMES",
    "REG_COUNT",
    "NAME_TO_REG",
    "Flag",
    "INSTRUCTION_SIZE",
    "AddrMode",
    "encode",
    "decode",
    "Instruction",
    "MemOperand",
]
