"""Register file and flags definitions for SVM32."""

import enum


class Reg(enum.IntEnum):
    """General-purpose register indices.

    The names mirror 32-bit x86. ``ESP`` is the stack pointer used
    implicitly by push/pop/call/ret; ``EBP`` is the conventional frame
    pointer emitted by the Mini-C compiler. The remaining registers carry
    no hardware-imposed roles.
    """

    EAX = 0
    ECX = 1
    EDX = 2
    EBX = 3
    ESP = 4
    EBP = 5
    ESI = 6
    EDI = 7


REG_COUNT = 8

REG_NAMES = tuple(r.name.lower() for r in Reg)

NAME_TO_REG = {name: Reg(i) for i, name in enumerate(REG_NAMES)}


class Flag(enum.IntFlag):
    """Bits of the EFLAGS register.

    The subset of x86 flags that SVM32 arithmetic maintains: carry, zero,
    sign, and overflow. All conditional jumps and set-on-condition
    instructions are defined in terms of these four bits.
    """

    CF = 1 << 0
    ZF = 1 << 1
    SF = 1 << 2
    OF = 1 << 3
