"""Fixed-width binary encoding for SVM32 instructions.

Every instruction occupies exactly :data:`INSTRUCTION_SIZE` (8) bytes:

===========  =========================================================
byte 0       opcode (:class:`repro.isa.opcodes.Op`)
byte 1       addressing mode for memory operands (:class:`AddrMode`),
             zero otherwise
byte 2       ``ra`` — destination / data / first source register
byte 3       ``rb`` — second source register; for memory operands the
             high nibble is the base register and the low nibble the
             index register
bytes 4..7   32-bit little-endian immediate / displacement / target
===========  =========================================================

The fixed width keeps instruction fetch trivial (one aligned 8-byte read)
and makes the map between code addresses and instructions bijective, which
the recognizer relies on when it treats instruction-pointer values as
hyperplanes in state space.
"""

import enum
import struct

from repro.errors import EncodingError
from repro.isa.opcodes import Op

INSTRUCTION_SIZE = 8

_STRUCT = struct.Struct("<BBBBi")


class AddrMode(enum.IntEnum):
    """Effective-address computation selector for memory operands.

    ``ea`` is always ``disp`` plus the selected register terms:

    * ``ABS``        — ``disp``
    * ``BASE``       — ``base + disp``
    * ``BASE_INDEX`` — ``base + index + disp``
    * ``BASE_INDEX2``— ``base + index*2 + disp``
    * ``BASE_INDEX4``— ``base + index*4 + disp``
    """

    ABS = 0
    BASE = 1
    BASE_INDEX = 2
    BASE_INDEX2 = 3
    BASE_INDEX4 = 4


_SCALE = {
    AddrMode.ABS: 0,
    AddrMode.BASE: 0,
    AddrMode.BASE_INDEX: 1,
    AddrMode.BASE_INDEX2: 2,
    AddrMode.BASE_INDEX4: 4,
}


def scale_of(mode):
    """Return the index scale factor (0 when no index register is used)."""
    return _SCALE[AddrMode(mode)]


def encode(op, mode=0, ra=0, rb=0, imm=0):
    """Encode one instruction into its 8-byte form.

    ``imm`` is accepted as a signed or unsigned 32-bit quantity and stored
    little-endian; values outside 32 bits raise :class:`EncodingError`.
    """
    if not 0 <= int(op) <= 0xFF:
        raise EncodingError("opcode out of range: %r" % (op,))
    if not 0 <= mode <= 0xFF:
        raise EncodingError("mode out of range: %r" % (mode,))
    if not 0 <= ra <= 0xFF or not 0 <= rb <= 0xFF:
        raise EncodingError("register field out of range: ra=%r rb=%r" % (ra, rb))
    imm = int(imm)
    if imm >= 1 << 31:
        if imm >= 1 << 32:
            raise EncodingError("immediate out of 32-bit range: %d" % imm)
        imm -= 1 << 32
    elif imm < -(1 << 31):
        raise EncodingError("immediate out of 32-bit range: %d" % imm)
    return _STRUCT.pack(int(op), mode, ra, rb, imm)


def decode(data, offset=0):
    """Decode 8 bytes into ``(op, mode, ra, rb, imm)``.

    ``imm`` is returned signed (matching how displacements and immediates
    are used by the transition function). Raises :class:`EncodingError` on
    an unknown opcode byte or short input.
    """
    if len(data) - offset < INSTRUCTION_SIZE:
        raise EncodingError("truncated instruction at offset %d" % offset)
    opbyte, mode, ra, rb, imm = _STRUCT.unpack_from(data, offset)
    try:
        op = Op(opbyte)
    except ValueError:
        raise EncodingError("unknown opcode byte 0x%02x at offset %d" % (opbyte, offset))
    return op, mode, ra, rb, imm
