"""High-level instruction value type used by the assembler and disassembler.

The transition function works directly on raw encoded bytes for speed;
:class:`Instruction` exists for the human-facing tools (assembler output,
disassembly, tests) and round-trips losslessly through
:func:`repro.isa.encoding.encode` / ``decode``.
"""

from repro.errors import EncodingError
from repro.isa.encoding import AddrMode, encode, decode, scale_of
from repro.isa.opcodes import Op, OperandShape, OPCODE_INFO
from repro.isa.registers import REG_NAMES


class MemOperand:
    """A memory operand ``[base + index*scale + disp]``.

    ``base`` and ``index`` are register indices or ``None``. ``scale``
    must be 1, 2, or 4 and is only meaningful with an index register.
    """

    __slots__ = ("base", "index", "scale", "disp")

    def __init__(self, base=None, index=None, scale=1, disp=0):
        if index is not None and scale not in (1, 2, 4):
            raise EncodingError("scale must be 1, 2 or 4, got %r" % (scale,))
        if index is not None and base is None:
            raise EncodingError("index register requires a base register")
        self.base = base
        self.index = index
        self.scale = scale if index is not None else 1
        self.disp = int(disp)

    def mode(self):
        """Return the :class:`AddrMode` encoding this operand's shape."""
        if self.base is None:
            return AddrMode.ABS
        if self.index is None:
            return AddrMode.BASE
        return {1: AddrMode.BASE_INDEX, 2: AddrMode.BASE_INDEX2,
                4: AddrMode.BASE_INDEX4}[self.scale]

    def reg_byte(self):
        """Pack base/index registers into the ``rb`` nibble pair."""
        base = 0 if self.base is None else int(self.base)
        index = 0 if self.index is None else int(self.index)
        return (base << 4) | index

    @classmethod
    def from_fields(cls, mode, rb, disp):
        """Rebuild a memory operand from decoded instruction fields."""
        mode = AddrMode(mode)
        if mode == AddrMode.ABS:
            return cls(disp=disp)
        base = (rb >> 4) & 0x0F
        index = rb & 0x0F
        if mode == AddrMode.BASE:
            return cls(base=base, disp=disp)
        return cls(base=base, index=index, scale=scale_of(mode), disp=disp)

    def __eq__(self, other):
        if not isinstance(other, MemOperand):
            return NotImplemented
        return (self.base == other.base and self.index == other.index
                and self.scale == other.scale and self.disp == other.disp)

    def __hash__(self):
        return hash((self.base, self.index, self.scale, self.disp))

    def __str__(self):
        parts = []
        if self.base is not None:
            parts.append(REG_NAMES[self.base])
        if self.index is not None:
            term = REG_NAMES[self.index]
            if self.scale != 1:
                term += "*%d" % self.scale
            parts.append(term)
        if self.disp or not parts:
            parts.append(str(self.disp))
        return "[%s]" % "+".join(parts).replace("+-", "-")

    def __repr__(self):
        return "MemOperand(base=%r, index=%r, scale=%r, disp=%r)" % (
            self.base, self.index, self.scale, self.disp)


class Instruction:
    """One decoded SVM32 instruction.

    Attributes map straight onto the encoding fields; :attr:`mem` is a
    convenience view present only for memory-operand shapes.
    """

    __slots__ = ("op", "mode", "ra", "rb", "imm")

    def __init__(self, op, mode=0, ra=0, rb=0, imm=0):
        self.op = Op(op)
        self.mode = int(mode)
        self.ra = int(ra)
        self.rb = int(rb)
        self.imm = int(imm)

    @property
    def shape(self):
        return OPCODE_INFO[self.op].shape

    @property
    def mnemonic(self):
        return OPCODE_INFO[self.op].mnemonic

    @property
    def mem(self):
        """The memory operand view (only valid for MEM_* shapes)."""
        return MemOperand.from_fields(self.mode, self.rb, self.imm)

    @classmethod
    def with_mem(cls, op, ra, mem):
        """Build a memory-shape instruction from a :class:`MemOperand`."""
        return cls(op, mode=int(mem.mode()), ra=ra, rb=mem.reg_byte(),
                   imm=mem.disp)

    def encode(self):
        return encode(self.op, self.mode, self.ra, self.rb, self.imm)

    @classmethod
    def decode(cls, data, offset=0):
        op, mode, ra, rb, imm = decode(data, offset)
        return cls(op, mode, ra, rb, imm)

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (self.op == other.op and self.mode == other.mode
                and self.ra == other.ra and self.rb == other.rb
                and self.imm == other.imm)

    def __hash__(self):
        return hash((self.op, self.mode, self.ra, self.rb, self.imm))

    def __repr__(self):
        return "Instruction(%s, mode=%d, ra=%d, rb=%d, imm=%d)" % (
            self.op.name, self.mode, self.ra, self.rb, self.imm)

    def __str__(self):
        shape = self.shape
        name = self.mnemonic
        if shape == OperandShape.NONE:
            return name
        if shape == OperandShape.R:
            return "%s %s" % (name, REG_NAMES[self.ra])
        if shape == OperandShape.I:
            return "%s %d" % (name, self.imm)
        if shape == OperandShape.RR:
            return "%s %s, %s" % (name, REG_NAMES[self.ra], REG_NAMES[self.rb])
        if shape == OperandShape.RI:
            return "%s %s, %d" % (name, REG_NAMES[self.ra], self.imm)
        if shape == OperandShape.MEM_LOAD:
            return "%s %s, %s" % (name, REG_NAMES[self.ra], self.mem)
        if shape == OperandShape.MEM_STORE:
            return "%s %s, %s" % (name, self.mem, REG_NAMES[self.ra])
        if shape == OperandShape.JUMP:
            return "%s 0x%x" % (name, self.imm & 0xFFFFFFFF)
        raise AssertionError("unhandled shape %r" % (shape,))
