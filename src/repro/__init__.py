"""repro: a reproduction of "ASC: Automatically Scalable Computation"
(Waterland et al., ASPLOS 2014).

Layers, bottom up:

* :mod:`repro.isa`, :mod:`repro.machine` — the SVM32 instruction set and
  the trajectory-based functional simulator (state vectors, dependency
  tracking, binary deltas);
* :mod:`repro.asm`, :mod:`repro.minic`, :mod:`repro.loader` — the
  toolchain: assembler, Mini-C compiler, program images;
* :mod:`repro.core` — LASC: recognizer, predictors, RWMA allocator,
  trajectory cache, and the sequential/parallel/memoizing engines;
* :mod:`repro.cluster` — simulated platforms and cost models;
* :mod:`repro.bench`, :mod:`repro.analysis` — the paper's benchmarks and
  the drivers that regenerate its tables and figures.

Quickstart::

    from repro import build_ising, ExperimentContext, scaling_sweep
    context = ExperimentContext(build_ising(nodes=128, spins=8))
    for point in scaling_sweep(context, [4, 16, 32]):
        print(point)
"""

from repro.minic import compile_source
from repro.asm import assemble
from repro.core import (
    EngineConfig,
    MemoizingEngine,
    ParallelEngine,
    Recognizer,
    TrajectoryCache,
    run_sequential,
)
from repro.cluster import CostModel, Platform, bluegene_p, laptop1, server32
from repro.bench import build_collatz, build_ising, build_mm2
from repro.analysis import (
    ExperimentContext,
    make_table1,
    make_table2,
    memoization_curve,
    scaling_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "assemble",
    "EngineConfig",
    "MemoizingEngine",
    "ParallelEngine",
    "Recognizer",
    "TrajectoryCache",
    "run_sequential",
    "CostModel",
    "Platform",
    "bluegene_p",
    "laptop1",
    "server32",
    "build_collatz",
    "build_ising",
    "build_mm2",
    "ExperimentContext",
    "make_table1",
    "make_table2",
    "memoization_curve",
    "scaling_sweep",
    "__version__",
]
