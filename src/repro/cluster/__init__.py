"""Simulated hardware platforms and their communication cost models.

The paper evaluates on three testbeds: a 32-core x86 server, an IBM Blue
Gene/P (up to 16384 cores, MPI with ASIC-accelerated reductions), and a
single-core laptop. This repo has none of them, so the engine charges all
work — instruction execution, recursive prediction, cache queries,
reductions, point-to-point responses — against a :class:`CostModel` in
*simulated seconds*, decoupling experiment shape from Python's own speed.
Scaling numbers are ratios of simulated times, exactly as the paper's
numbers are ratios of measured wall-clock times on the same simulator.
"""

from repro.cluster.costmodel import CostModel, ZERO_OVERHEAD
from repro.cluster.topology import Platform, server32, bluegene_p, laptop1

__all__ = [
    "CostModel",
    "ZERO_OVERHEAD",
    "Platform",
    "server32",
    "bluegene_p",
    "laptop1",
]
