"""Platform presets mirroring the paper's three testbeds."""

from repro.cluster.costmodel import CostModel


class Platform:
    """A named machine: core count plus communication cost model.

    ``memory_bytes_per_core`` optionally bounds the distributed trajectory
    cache (the paper's "scale by adding more memory" axis); ``None`` means
    unbounded.
    """

    def __init__(self, name, n_cores, cost_model=None,
                 memory_bytes_per_core=None):
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1, got %r" % (n_cores,))
        self.name = name
        self.n_cores = int(n_cores)
        self.cost_model = cost_model or CostModel()
        self.memory_bytes_per_core = memory_bytes_per_core

    @property
    def cache_capacity_bytes(self):
        if self.memory_bytes_per_core is None:
            return None
        return self.memory_bytes_per_core * self.n_cores

    def with_cores(self, n_cores):
        """Same platform at a different core count (for scaling sweeps)."""
        return Platform(self.name, n_cores, self.cost_model,
                        self.memory_bytes_per_core)

    def with_cost_model(self, cost_model):
        return Platform(self.name, self.n_cores, cost_model,
                        self.memory_bytes_per_core)

    def __repr__(self):
        return "Platform(%r, n_cores=%d)" % (self.name, self.n_cores)


def server32(n_cores=32, cost_model=None):
    """The paper's 32-core 1.4 GHz x86 Linux server with MPI."""
    return Platform("server32", n_cores, cost_model or CostModel())


def bluegene_p(n_cores=4096, cost_model=None):
    """The paper's IBM Blue Gene/P slice.

    512 MB RAM per core; the ASIC-accelerated tree reduction makes the
    per-hop reduce cost 4x cheaper than the commodity server's.
    """
    base = cost_model or CostModel()
    tuned = CostModel(
        mips_base=base.mips_base,
        mips_dep=base.mips_dep,
        rollout_seconds_per_bit=base.rollout_seconds_per_bit,
        rollout_seconds_base=base.rollout_seconds_base,
        query_base_seconds=base.query_base_seconds,
        query_seconds_per_bit=base.query_seconds_per_bit,
        reduce_hop_seconds=base.reduce_hop_seconds / 4.0,
        p2p_seconds=base.p2p_seconds,
        fast_forward_seconds=base.fast_forward_seconds,
        local_query_seconds=base.local_query_seconds,
    )
    return Platform("bluegene_p", n_cores, tuned,
                    memory_bytes_per_core=512 * 1024 * 1024)


def laptop1(cost_model=None):
    """The paper's single-core 2.4 GHz laptop (memoization-only mode)."""
    return Platform("laptop1", 1, cost_model or CostModel())
