"""Simulated-time cost model for the ASC engine.

All constants default to the paper's measured values (§5.3):

* baseline instruction simulation rate of 2.6 MIPS and 2.3 MIPS with
  dependency tracking (the 13% overhead the paper reports);
* recursive-prediction ("rollout") time linear in rank ``k``, about
  1e-3 s per superstep of rollout on Blue Gene/P, and proportional to the
  number of tracked bits (the paper attributes 2mm's slower predictions
  to tracking two orders of magnitude more bits than Ising);
* cache queries cost a base latency plus a per-bit transmission term for
  the delta-compressed state plus a log2(N) tree-reduction term (the
  MPI max-reduce), and responses a point-to-point term.

Because the benchmarks in this repo are scaled down ~1e4x from the
paper's instruction counts, experiments scale the fixed costs by the same
factor via :meth:`CostModel.scaled` so every *ratio* that shapes the
curves (superstep length : query cost : rollout cost) matches the paper.
"""

import math


class CostModel:
    """Charges for every engine activity, in simulated seconds."""

    def __init__(self,
                 mips_base=2.6e6,
                 mips_dep=2.3e6,
                 rollout_seconds_per_bit=4.0e-6,
                 rollout_seconds_base=1.0e-4,
                 query_base_seconds=2.0e-4,
                 query_seconds_per_bit=2.0e-9,
                 reduce_hop_seconds=2.0e-5,
                 p2p_seconds=1.0e-4,
                 fast_forward_seconds=5.0e-5,
                 local_query_seconds=1.0e-5):
        self.mips_base = mips_base
        self.mips_dep = mips_dep
        self.rollout_seconds_per_bit = rollout_seconds_per_bit
        self.rollout_seconds_base = rollout_seconds_base
        self.query_base_seconds = query_base_seconds
        self.query_seconds_per_bit = query_seconds_per_bit
        self.reduce_hop_seconds = reduce_hop_seconds
        self.p2p_seconds = p2p_seconds
        self.fast_forward_seconds = fast_forward_seconds
        self.local_query_seconds = local_query_seconds

    # -- instruction execution ---------------------------------------------

    def exec_seconds(self, instructions, dep_tracking=True):
        """Time to simulate ``instructions`` instructions."""
        rate = self.mips_dep if dep_tracking else self.mips_base
        return instructions / rate

    # -- prediction ---------------------------------------------------------

    def rollout_seconds(self, rank, n_tracked_bits):
        """Time for a worker to roll predictions out ``rank`` supersteps.

        Linear in rank — the paper's stated bottleneck ("prediction time
        is currently a linear function of rank", §5.3) — and proportional
        to the number of bits being predicted.
        """
        per_step = (self.rollout_seconds_base
                    + self.rollout_seconds_per_bit * n_tracked_bits)
        return per_step * rank

    # -- cache traffic -----------------------------------------------------------

    def query_seconds(self, n_cores, query_bits):
        """Broadcast current state delta + tree max-reduction (the MPI op)."""
        hops = math.ceil(math.log2(n_cores)) if n_cores > 1 else 0
        return (self.query_base_seconds
                + self.query_seconds_per_bit * query_bits
                + self.reduce_hop_seconds * hops)

    def response_seconds(self, response_bits):
        """Point-to-point transfer of the winning entry's end state."""
        return self.p2p_seconds + self.query_seconds_per_bit * response_bits

    def apply_seconds(self):
        """Applying a fast-forward (writing the end-state bytes)."""
        return self.fast_forward_seconds

    def memo_query_seconds(self, query_bits):
        """Single-core cache probe (generalized memoization, no network)."""
        return self.local_query_seconds + self.query_seconds_per_bit * query_bits

    # -- derivation --------------------------------------------------------------

    def scaled(self, factor):
        """A copy with all fixed (non-instruction) costs multiplied.

        Used to match scaled-down workloads: a benchmark whose supersteps
        are ``factor`` times shorter than the paper's gets a cost model
        whose overheads are ``factor`` times cheaper, preserving every
        ratio that shapes the scaling curves.
        """
        return CostModel(
            mips_base=self.mips_base,
            mips_dep=self.mips_dep,
            rollout_seconds_per_bit=self.rollout_seconds_per_bit * factor,
            rollout_seconds_base=self.rollout_seconds_base * factor,
            query_base_seconds=self.query_base_seconds * factor,
            query_seconds_per_bit=self.query_seconds_per_bit * factor,
            reduce_hop_seconds=self.reduce_hop_seconds * factor,
            p2p_seconds=self.p2p_seconds * factor,
            fast_forward_seconds=self.fast_forward_seconds * factor,
            local_query_seconds=self.local_query_seconds * factor,
        )

    def zero_overhead(self):
        """A copy with every non-instruction cost zeroed.

        This produces the paper's "cycle count scaling" lines: potential
        scaling with infinitely fast prediction and lookup, counting only
        executed instructions.
        """
        return CostModel(
            mips_base=self.mips_base,
            mips_dep=self.mips_dep,
            rollout_seconds_per_bit=0.0,
            rollout_seconds_base=0.0,
            query_base_seconds=0.0,
            query_seconds_per_bit=0.0,
            reduce_hop_seconds=0.0,
            p2p_seconds=0.0,
            fast_forward_seconds=0.0,
            local_query_seconds=0.0,
        )


#: Shared zero-overhead model for cycle-count measurements.
ZERO_OVERHEAD = CostModel().zero_overhead()
