"""Shadow re-execution of one spliced cache segment.

:func:`run_audit` replays exactly the number of instructions a cache
entry claims to fast-forward over, from the retained pre-splice state,
with full dependency tracking on the *reference* interpreter tier
(``TransitionContext.step`` dispatches the plain decode-execute path
regardless of any block-cache fast path the context carries — the
audit deliberately does not trust the tier that may have produced the
entry). The replay's dependency vector and final state are packaged as
a ground-truth :class:`CacheEntry` over the same segment.

:func:`compare_audit` then holds the claimed entry against that ground
truth. For a *sound* entry the comparison is exact, not approximate:
the entry matched the pre-splice state on its declared read set, and a
complete read set pins the entire execution path, so the replay must
reproduce the identical read indices, write indices, values, length,
and halt flag. Any difference is a divergence, classified by kind so
incidents say what was wrong (an under-approximated dependency set
shows up as ``read-set``, a corrupted write as ``end-state``, a wrong
claimed span as ``length``).
"""

import numpy as np

from repro.core.speculation import SpeculationResult
from repro.core.trajectory_cache import CacheEntry
from repro.errors import MachineError
from repro.machine.depvec import DepVector
from repro.machine.layout import STATUS_HALTED, STATUS_OFF


def run_audit(context, start_buf, rip, length, occurrences=1):
    """Replay ``length`` instructions from ``start_buf`` with tracking.

    Unlike :func:`~repro.core.speculation.run_speculation` this counts
    *instructions*, not recognized-IP crossings — the claimed length is
    the one quantity every engine's splice bookkeeping depends on, and
    replaying by count stays robust to entries whose ``occurrences``
    field has engine-specific semantics. Returns a
    :class:`SpeculationResult` whose entry is the ground truth for the
    segment (``None`` only if the replay faulted).
    """
    work = bytearray(start_buf)
    dep = DepVector(len(work))
    g = dep.buf
    step = context.step
    executed = 0
    fault = None
    halted = bool(work[STATUS_OFF] & STATUS_HALTED)
    while not halted and executed < length:
        try:
            step(work, g)
        except MachineError as exc:
            fault = str(exc)
            break
        executed += 1
        if work[STATUS_OFF] & STATUS_HALTED:
            halted = True
    if fault is not None:
        return SpeculationResult(None, executed, halted, fault)
    entry = CacheEntry.from_execution(rip, dep, start_buf, work, executed,
                                      occurrences=occurrences, halted=halted)
    return SpeculationResult(entry, executed, halted)


def compare_audit(claimed, audit_result, pre_state):
    """Hold a claimed entry against its shadow replay.

    ``claimed`` is the spliced :class:`CacheEntry`, ``audit_result``
    the :class:`SpeculationResult` from :func:`run_audit` (or a
    worker-shipped equivalent), ``pre_state`` the pre-splice state the
    replay started from. Returns a list of mismatch kinds — empty means
    the splice was verified clean.
    """
    if audit_result.fault is not None or audit_result.entry is None:
        return ["replay-fault"]
    truth = audit_result.entry
    mismatches = []
    if truth.length != claimed.length:
        mismatches.append("length")
    if bool(truth.halted) != bool(claimed.halted):
        mismatches.append("halt-flag")
    if not np.array_equal(truth.start_indices, claimed.start_indices):
        mismatches.append("read-set")
    elif not np.array_equal(truth.start_values, claimed.start_values):
        mismatches.append("read-values")
    if not np.array_equal(truth.end_indices, claimed.end_indices):
        mismatches.append("write-set")
    spliced = bytearray(pre_state)
    claimed.apply(spliced)
    replayed = bytearray(pre_state)
    truth.apply(replayed)
    if spliced != replayed:
        mismatches.append("end-state")
    return mismatches
