"""Structured divergence incidents.

An incident is one JSON-serializable dict describing a splice the
shadow audit refuted: where it happened, what the entry claimed, which
comparisons failed, and what the runtime did about it. They accumulate
in ``RuntimeStats.incidents`` (real backend), in the auditor's own
report (simulated engines), and in the ``repro audit`` output — the
machine-checkable artifact the strict-verify CI job greps.
"""


def make_incident(entry, mismatches, superstep, mode, action):
    """Build one incident record for a refuted splice.

    ``mode`` is how the audit ran (``"sync"`` inline, ``"async"``
    through the worker pool); ``action`` what the engine did
    (``"rollback"`` — pre-splice snapshot restored — or
    ``"quarantine"`` when the offending splice was already off the
    surviving timeline and only the group needed hiding).
    """
    return {
        "superstep": int(superstep),
        "rip": "0x%x" % entry.rip,
        "dep_bytes": int(len(entry.start_indices)),
        "write_bytes": int(len(entry.end_indices)),
        "length": int(entry.length),
        "occurrences": int(entry.occurrences),
        "mismatches": list(mismatches),
        "mode": str(mode),
        "action": str(action),
    }


def format_incident(incident):
    """One human-readable line per incident (CLI report)."""
    return ("superstep %d: entry at %s (deps=%dB writes=%dB len=%d) "
            "refuted on %s -> %s [%s audit]"
            % (incident["superstep"], incident["rip"],
               incident["dep_bytes"], incident["write_bytes"],
               incident["length"], ",".join(incident["mismatches"]),
               incident["action"], incident["mode"]))
