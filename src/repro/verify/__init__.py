"""Online semantic verification of trajectory-cache splices.

The transport layer (wire CRCs, checkpoint section checksums) catches
bit-rot; nothing before this package caught *bad semantics* — a cache
entry whose dependency set was under-approximated matches states it
should not and splices a wrong end-state into the main trajectory
silently. This package closes that hole:

* :mod:`repro.verify.audit` — shadow re-execution of a spliced segment
  with full dependency tracking, plus the strict comparison of the
  replayed ground truth against the entry's claims;
* :mod:`repro.verify.auditor` — the :class:`SpliceAuditor` state
  machine wired into the engines: sampling, pool-offloaded audits,
  quarantine of the offending ``(rip, dep-index-set)`` group, rollback
  to the retained pre-splice snapshot, structured incidents;
* :mod:`repro.verify.config` — ``--verify-rate`` / ``REPRO_VERIFY`` /
  strict-mode resolution;
* :mod:`repro.verify.incidents` — the structured incident records
  surfaced through ``RuntimeStats`` and ``repro audit``.
"""

from repro.verify.audit import compare_audit, run_audit
from repro.verify.auditor import PendingAudit, SpliceAuditor
from repro.verify.config import VerifyConfig, resolve_verify
from repro.verify.incidents import make_incident

__all__ = [
    "PendingAudit",
    "SpliceAuditor",
    "VerifyConfig",
    "compare_audit",
    "make_incident",
    "resolve_verify",
    "run_audit",
]
