"""The splice auditor: sampling, verdicts, quarantine, rollback.

One :class:`SpliceAuditor` instance rides along with one engine run.
Engines call :meth:`verify_splice` immediately after applying a cache
entry to the main state; everything else — shipping audits through the
worker pool, collecting verdicts, deciding rollbacks — happens behind
the three small hooks the real engine wires into its boundary loop
(:meth:`ingest`, :meth:`take_rollback`, :meth:`flush`).

Two audit modes share one verdict path:

* **sync** (simulated engines, strict mode, pool-saturated fallback):
  the replay runs inline before the engine proceeds past the splice,
  so a divergence is undone on the spot — restore the pre-splice
  snapshot, correct the hit accounting, report the boundary as a miss
  so the segment replays sequentially;
* **async** (real engine): the pre-splice state is retained as an
  in-memory checkpoint blob (CRC-sectioned, the same machinery a crash
  restore trusts) and the replay ships to a pool worker; the verdict
  lands at a later boundary. A divergence then rolls the machine back
  to the retained snapshot. Splices are identified by a monotonically
  increasing ``splice_id`` so verdicts arriving out of order resolve
  correctly: the *earliest* divergent splice wins the rollback, and
  every pending audit captured after it is marked off-timeline — its
  verdict still quarantines the offending group but triggers no second
  rollback, because its snapshot belongs to the discarded timeline.

Either way a refuted entry's whole ``(rip, dep-index-set)`` group is
quarantined in the trajectory cache; non-strict configs re-admit it
after ``readmit_after`` consecutive clean audits (decay), strict
configs never do.
"""

from repro.core import checkpoint
from repro.core.speculation import SpeculationResult
from repro.verify.audit import compare_audit, run_audit
from repro.verify.incidents import make_incident

#: Pool outcome statuses, mirrored from :mod:`repro.runtime.pool`
#: (string literals here so the core engines can import this module
#: without pulling in the multiprocess runtime).
_TASK_OK = "ok"
_TASK_CRASHED = "crashed"
_TASK_TIMED_OUT = "timed-out"
_TASK_STALE = "stale"

#: ``task.meta[0]`` marker for audit tasks in flight.
AUDIT_META = "__audit__"


class PendingAudit:
    """One sampled splice awaiting its shadow-replay verdict."""

    __slots__ = ("splice_id", "superstep", "blob", "entry", "executed",
                 "fast_forwarded", "discarded")

    def __init__(self, splice_id, superstep, blob, entry, executed,
                 fast_forwarded):
        self.splice_id = splice_id
        self.superstep = superstep
        self.blob = blob  # in-memory checkpoint of the pre-splice state
        self.entry = entry  # the claimed CacheEntry under audit
        self.executed = executed  # stats.instructions_executed, pre-splice
        self.fast_forwarded = fast_forwarded  # ditto, fast-forwarded
        self.discarded = False  # splice no longer on the live timeline

    def __repr__(self):
        return ("PendingAudit(id=%d, superstep=%d, rip=0x%x, len=%d%s)"
                % (self.splice_id, self.superstep, self.entry.rip,
                   self.entry.length,
                   ", discarded" if self.discarded else ""))


class SpliceAuditor:
    """Shadow verification and recovery for one engine run.

    ``config`` is a :class:`~repro.verify.config.VerifyConfig`;
    ``cache`` the run's :class:`TrajectoryCache` (quarantine target);
    ``context`` or ``context_factory`` supplies the
    :class:`TransitionContext` used for inline replays (any context
    works — audits always step the reference tier). ``stats_sink``, if
    given, is a :class:`~repro.runtime.stats.RuntimeStats` mirrored
    live so ``--json`` reports carry the audit counters and incidents.
    """

    def __init__(self, config, cache, context=None, context_factory=None,
                 stats_sink=None):
        self.config = config
        self.cache = cache
        self._ctx = context
        self._ctx_factory = context_factory
        self._sink = stats_sink
        self.sampled = 0
        self.clean = 0
        self.divergent = 0
        self.lost = 0
        self.rollbacks = 0
        self.incidents = []
        self._pending = {}  # splice_id -> PendingAudit
        self._rollback_queue = []  # divergent PendingAudits, live timeline
        self._next_splice_id = 0

    # -- engine-facing hooks -------------------------------------------------

    def verify_splice(self, entry, buf, pre_state, stats, pool=None,
                      instruction_count=0):
        """Audit one just-applied splice (maybe). Call right after
        ``entry.apply(buf)`` and the hit/fast-forward accounting.

        Returns ``True`` when the splice was refuted *inline* and
        already rolled back — the caller must then treat the boundary
        as a miss (break out of its fast-forward chain so the segment
        replays sequentially). Async audits always return ``False``;
        their verdicts surface later through :meth:`ingest` /
        :meth:`take_rollback`.
        """
        if not self.config.should_sample():
            return False
        self.sampled += 1
        if self._sink is not None:
            self._sink.audits_sampled += 1
        blob = checkpoint.snapshot_state(pre_state, instruction_count)
        if pool is not None and not self.config.strict:
            self._next_splice_id += 1
            pending = PendingAudit(
                self._next_splice_id, stats.supersteps, blob, entry,
                stats.instructions_executed,
                stats.instructions_fast_forwarded - entry.length)
            task = pool.submit(entry.rip, entry.occurrences, entry.length,
                               pre_state,
                               meta=(AUDIT_META, pending.splice_id),
                               audit=True)
            if task is not None:
                self._pending[pending.splice_id] = pending
                return False
            # Pool saturated: don't skip the sample, audit inline.
        result = run_audit(self._context(), pre_state, entry.rip,
                           entry.length, occurrences=entry.occurrences)
        mismatches = compare_audit(entry, result, pre_state)
        if not mismatches:
            self._note_clean()
            return False
        self._record_divergence(entry, mismatches, stats.supersteps,
                                "sync", "rollback")
        restored = checkpoint.restore_state(blob)
        buf[:] = restored.state
        stats.hits -= 1
        stats.misses += 1
        stats.misses_nomatch += 1
        stats.instructions_fast_forwarded -= entry.length
        self.rollbacks += 1
        if self._sink is not None:
            self._sink.audit_rollbacks += 1
        return True

    def ingest(self, outcome):
        """Route a pool outcome. Returns ``True`` when it was an audit
        task (the engine's drain must then skip its normal handling).

        A lost audit (worker crash, deadline kill) is not a verdict:
        the retained snapshot lets the replay rerun inline, so sampling
        guarantees survive a flaky pool.
        """
        task = outcome.task
        if not getattr(task, "audit", False):
            return False
        meta = task.meta
        splice_id = (meta[1] if isinstance(meta, tuple) and len(meta) == 2
                     and meta[0] == AUDIT_META else None)
        pending = self._pending.pop(splice_id, None)
        if pending is None:
            return True  # duplicate/late verdict; already resolved
        if outcome.status in (_TASK_CRASHED, _TASK_TIMED_OUT, _TASK_STALE):
            # Stale is the shm transport refusing an epoch-mismatched
            # delta — the audit never executed, which is a *lost* audit
            # like a crash, emphatically not a divergence verdict.
            self.lost += 1
            if self._sink is not None:
                self._sink.audits_lost += 1
            self._resolve_inline(pending)
            return True
        if outcome.status == _TASK_OK and outcome.entry is not None:
            result = SpeculationResult(outcome.entry, outcome.instructions,
                                       outcome.halted, outcome.fault)
        else:
            result = SpeculationResult(
                None, outcome.instructions, outcome.halted,
                outcome.fault or "audit replay produced no entry")
        self._finish(pending, result, "async")
        return True

    def take_rollback(self):
        """The pending rollback to apply now, or ``None``.

        When several splices were refuted, the earliest wins — its
        snapshot is an ancestor of every later one — and all audits
        captured after it move off-timeline (quarantine-only).
        """
        if not self._rollback_queue:
            return None
        target = min(self._rollback_queue, key=lambda p: p.splice_id)
        self._rollback_queue = []
        for pending in self._pending.values():
            if pending.splice_id > target.splice_id:
                pending.discarded = True
        return target

    def apply_rollback(self, pending, machine, stats):
        """Restore the pre-splice snapshot onto the live machine."""
        restored = checkpoint.restore_state(pending.blob)
        machine.state.buf[:] = restored.state
        machine.instruction_count = restored.instruction_count
        stats.instructions_executed = pending.executed
        stats.instructions_fast_forwarded = pending.fast_forwarded
        self.rollbacks += 1
        if self._sink is not None:
            self._sink.audit_rollbacks += 1

    def has_pending(self):
        """Unresolved audits in flight (checkpoints should wait)."""
        return bool(self._pending)

    def flush(self, drain=None):
        """Resolve every outstanding audit before the run concludes.

        Collects any verdicts already queued on the pool (``drain`` is
        the engine's non-blocking drain closure), then replays the rest
        inline from their retained snapshots — the run never finishes
        with an unverified sampled splice.
        """
        if drain is not None and self._pending:
            drain(0.0)
        for splice_id in sorted(self._pending):
            pending = self._pending.pop(splice_id)
            self._resolve_inline(pending)

    # -- verdict plumbing ----------------------------------------------------

    def _context(self):
        if self._ctx is None:
            if self._ctx_factory is None:
                raise RuntimeError("auditor has no context for inline audits")
            self._ctx = self._ctx_factory()
        return self._ctx

    def _resolve_inline(self, pending):
        restored = checkpoint.restore_state(pending.blob)
        entry = pending.entry
        result = run_audit(self._context(), restored.state, entry.rip,
                           entry.length, occurrences=entry.occurrences)
        self._finish(pending, result, "sync", pre_state=restored.state)

    def _finish(self, pending, result, mode, pre_state=None):
        if pre_state is None:
            pre_state = checkpoint.restore_state(pending.blob).state
        mismatches = compare_audit(pending.entry, result, pre_state)
        if not mismatches:
            self._note_clean()
            return
        action = "quarantine" if pending.discarded else "rollback"
        self._record_divergence(pending.entry, mismatches,
                                pending.superstep, mode, action)
        if not pending.discarded:
            self._rollback_queue.append(pending)

    def _note_clean(self):
        self.clean += 1
        readmitted = self.cache.note_clean_audit()
        if self._sink is not None:
            self._sink.audits_clean += 1
            self._sink.cache_groups_readmitted += readmitted

    def _record_divergence(self, entry, mismatches, superstep, mode,
                           action):
        self.divergent += 1
        rip, indices_key = self.cache.group_key(entry)
        newly = not self.cache.is_quarantined(rip, indices_key)
        self.cache.quarantine_group(rip, indices_key,
                                    readmit_after=self.config.readmit_after)
        incident = make_incident(entry, mismatches, superstep, mode, action)
        self.incidents.append(incident)
        if self._sink is not None:
            self._sink.audits_divergent += 1
            if newly:
                self._sink.cache_groups_quarantined += 1
            self._sink.incidents.append(incident)

    # -- reporting -----------------------------------------------------------

    def report(self):
        """JSON-ready summary (attached to engine results as ``.audit``)."""
        return {
            "rate": self.config.rate,
            "strict": self.config.strict,
            "sampled": self.sampled,
            "clean": self.clean,
            "divergent": self.divergent,
            "lost": self.lost,
            "rollbacks": self.rollbacks,
            "groups_quarantined": self.cache.n_groups_quarantined,
            "groups_readmitted": self.cache.n_groups_readmitted,
            "quarantined_now": self.cache.quarantined_groups,
            "incidents": list(self.incidents),
        }

    def __repr__(self):
        return ("SpliceAuditor(rate=%.2f, sampled=%d, clean=%d, "
                "divergent=%d, rollbacks=%d)"
                % (self.config.rate, self.sampled, self.clean,
                   self.divergent, self.rollbacks))
