"""Verification configuration: sampling rate, strict mode, re-admission.

Resolution order mirrors the fault plan's: an explicit object beats a
spec value beats the ``REPRO_VERIFY`` environment variable beats "off".
``REPRO_VERIFY`` accepts the same spec values the CLI flags produce:
``"0.25"`` samples a quarter of splices, ``"1"`` audits every splice,
``"strict"`` additionally quarantines divergent groups for the rest of
the run and makes the engines audit synchronously.
"""

import os
import random

from repro.errors import ReproError

ENV_VAR = "REPRO_VERIFY"

#: Clean audits before a quarantined group is re-admitted (non-strict).
DEFAULT_READMIT_AFTER = 8


class VerifyConfigError(ReproError):
    """A verification spec could not be parsed."""


class VerifyConfig:
    """How aggressively to shadow-audit cache splices.

    ``rate`` is the per-splice sampling probability in [0, 1]; 0
    disables verification entirely (the engines then skip every audit
    code path). ``strict`` forces ``rate`` to 1.0, audits synchronously
    (the splice is confirmed before the run proceeds past it), and
    quarantines divergent groups permanently instead of decaying.
    ``readmit_after`` is the clean-audit count before a quarantined
    group is re-admitted; ``seed`` drives the sampling RNG so runs are
    reproducible.
    """

    __slots__ = ("rate", "strict", "readmit_after", "seed", "_rng")

    def __init__(self, rate=0.0, strict=False, readmit_after=None, seed=0):
        rate = 1.0 if strict else float(rate)
        if not 0.0 <= rate <= 1.0:
            raise VerifyConfigError("verify rate must be in [0, 1], got %r"
                                    % rate)
        self.rate = rate
        self.strict = bool(strict)
        if readmit_after is None:
            readmit_after = DEFAULT_READMIT_AFTER
        self.readmit_after = None if strict else int(readmit_after)
        self.seed = seed
        self._rng = random.Random(seed)

    @property
    def enabled(self):
        return self.rate > 0.0

    def should_sample(self):
        """Deterministically decide whether to audit this splice."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return self._rng.random() < self.rate

    @classmethod
    def parse(cls, spec):
        """Build a config from a spec value (``"0.25"``, ``"strict"``)."""
        text = str(spec).strip().lower()
        if text in ("", "0", "off", "none", "false"):
            return None
        if text in ("strict", "on+strict"):
            return cls(strict=True)
        try:
            rate = float(text)
        except ValueError:
            raise VerifyConfigError(
                "bad %s value %r (want a rate in [0, 1] or 'strict')"
                % (ENV_VAR, spec))
        if rate <= 0.0:
            return None
        return cls(rate=min(rate, 1.0))

    @classmethod
    def from_env(cls, environ=None):
        value = (environ or os.environ).get(ENV_VAR)
        if value is None:
            return None
        return cls.parse(value)

    def __repr__(self):
        return ("VerifyConfig(rate=%.3f, strict=%s, readmit_after=%s, "
                "seed=%s)" % (self.rate, self.strict, self.readmit_after,
                              self.seed))


def resolve_verify(value):
    """Normalize an engine's ``verify`` argument.

    ``None`` defers to ``REPRO_VERIFY`` (returning ``None`` when unset
    — verification off); a :class:`VerifyConfig` passes through; any
    other value is parsed as a spec.
    """
    if value is None:
        return VerifyConfig.from_env()
    if isinstance(value, VerifyConfig):
        return value if value.enabled else None
    return VerifyConfig.parse(value)
