"""Command-line interface: compile, run, inspect, and scale programs.

Usage (also available as ``python -m repro``)::

    repro compile kernel.c -o kernel.json --disasm
    repro run kernel.c --global result --reg eax
    repro run kernel.c --backend real --checkpoint-dir ck/ --resume
    repro disasm kernel.c
    repro scale kernel.c --cores 4,16,32 --platform server32
    repro memoize kernel.c
    repro chaos collatz --seed 42 --kills 2 --timeouts 2 --corrupts 1
    repro chaos collatz --serve --daemon-kills 1 --journal-truncs 1
    repro serve --cache-dir ~/.cache/repro --worker-budget 8
    repro serve --status
    repro submit kernel.c --global result
    repro jobs --json

Input files ending in ``.c`` are compiled as Mini-C, ``.s``/``.asm`` are
assembled, and ``.json`` loads a previously saved program image.
"""

import argparse
import json
import sys

from repro.asm import assemble, disassemble_program
from repro.bench.workload import Workload
from repro.core.config import EngineConfig
from repro.isa.registers import NAME_TO_REG
from repro.loader.image import Program
from repro.minic import compile_source


def load_program(path, name=None):
    """Compile/assemble/load ``path`` by extension."""
    if path.endswith(".json"):
        return Program.load(path)
    with open(path) as handle:
        source = handle.read()
    program_name = name or path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    if path.endswith((".s", ".asm")):
        return assemble(source, name=program_name)
    return compile_source(source, name=program_name)


def _engine_config(args):
    overrides = {}
    if getattr(args, "window", None):
        overrides["recognizer_window"] = args.window
    if getattr(args, "min_superstep", None):
        overrides["min_superstep_instructions"] = args.min_superstep
    if getattr(args, "hints", False):
        overrides["use_compiler_hints"] = True
    return EngineConfig(**overrides)


def _verify_config(args):
    """Build a VerifyConfig from --verify-rate / --strict-verify.

    Returns ``None`` when neither flag was given, which lets the engine
    fall back to ``REPRO_VERIFY``. An explicit ``--verify-rate 0``
    returns a disabled config so it overrides the environment.
    """
    from repro.verify import VerifyConfig
    if getattr(args, "strict_verify", False):
        return VerifyConfig(strict=True)
    rate = getattr(args, "verify_rate", None)
    if rate is not None:
        return VerifyConfig(rate=rate)
    return None


def _verify_line(audit):
    return ("verify: %d sampled, %d clean, %d divergent, %d lost, "
            "%d rollbacks, %d groups quarantined (%d now), %d readmitted"
            % (audit["sampled"], audit["clean"], audit["divergent"],
               audit["lost"], audit["rollbacks"],
               audit["groups_quarantined"], audit["quarantined_now"],
               audit["groups_readmitted"]))


def _checkpoint_setup(args, program, subdir=None):
    """Build (checkpointer, resume_from) from --checkpoint-* flags."""
    directory = getattr(args, "checkpoint_dir", None)
    resume = getattr(args, "resume", False)
    if directory is None:
        if resume:
            print("--resume requires --checkpoint-dir", file=sys.stderr)
            raise SystemExit(2)
        return None, None
    import os

    from repro.core.checkpoint import Checkpointer, load_latest
    if subdir is not None:
        directory = os.path.join(directory, subdir)
    checkpointer = Checkpointer(
        directory, every_instructions=args.checkpoint_every,
        program=program.name)
    resume_from = None
    if resume:
        resume_from = load_latest(directory)
        if resume_from is None:
            print("no valid checkpoint in %s; starting fresh" % directory,
                  file=sys.stderr)
    return checkpointer, resume_from


def cmd_compile(args):
    program = load_program(args.file, name=args.name)
    print(repr(program))
    if program.hints:
        print("hints: %r" % (program.hints,))
    if args.output:
        program.save(args.output)
        print("saved image to %s" % args.output)
    if args.disasm:
        print(disassemble_program(program))
    return 0


def cmd_disasm(args):
    program = load_program(args.file)
    print(disassemble_program(program))
    return 0


def _supervision_line(runtime):
    return ("supervision: %d respawned, %d breaker trips, %d quarantined, "
            "%d readmitted, %d retired, %d degraded boundaries, "
            "%d faults injected"
            % (runtime.workers_respawned, runtime.breaker_trips,
               runtime.workers_quarantined, runtime.workers_readmitted,
               runtime.workers_retired, runtime.degraded_boundaries,
               runtime.faults_injected))


def _autoscale_line(policy, runtime):
    last = runtime.autoscale_decisions[-1] if runtime.autoscale_decisions \
        else None
    line = ("autoscale %s: %d resizes (%d grown, %d parked, "
            "%d tasks parked)"
            % (policy, runtime.autoscale_resizes, runtime.workers_grown,
               runtime.workers_parked, runtime.tasks_parked))
    if last is not None:
        line += "; last target %d @ superstep %d" % (last["target"],
                                                     last["superstep"])
    return line


def _wire_line(transport, runtime):
    """Logical vs physical transport bytes, one human-readable line."""
    logical = runtime.logical_bytes_sent + runtime.logical_bytes_received
    physical = runtime.bytes_sent + runtime.bytes_received
    line = ("transport %s: %d/%d pipe bytes out/in (logical %d/%d)"
            % (transport, runtime.bytes_sent, runtime.bytes_received,
               runtime.logical_bytes_sent, runtime.logical_bytes_received))
    if transport == "shm":
        ratio = (runtime.state_bytes_raw / runtime.state_bytes_shipped
                 if runtime.state_bytes_shipped else 0.0)
        line += ("; %d shm bytes written, %d read; delta %.1fx "
                 "(%d sparse / %d full); %.1fx off the pipes"
                 % (runtime.shm_bytes_written, runtime.shm_bytes_read,
                    ratio, runtime.states_delta, runtime.states_full,
                    logical / physical if physical else 0.0))
    return line


def _run_real_backend(program, args):
    """Execute on the multiprocess runtime; returns (machine, payload)."""
    from repro.runtime import RealParallelEngine, RuntimeConfig

    runtime_config = RuntimeConfig(
        n_workers=args.workers,
        superstep_scale=args.superstep_scale,
        max_instructions=args.max_instructions,
        transport=getattr(args, "transport", None),
        fault_plan=getattr(args, "fault_plan", None),
        worker_rlimit_as_bytes=getattr(args, "worker_rlimit_as", None),
        autoscale=getattr(args, "autoscale", "off"))
    checkpointer, resume_from = _checkpoint_setup(args, program)
    engine = RealParallelEngine(program, config=_engine_config(args),
                                runtime_config=runtime_config,
                                checkpointer=checkpointer,
                                resume_from=resume_from,
                                verify=_verify_config(args))
    result = engine.run()
    stats, runtime = result.stats, result.runtime
    payload = {
        "program": program.name,
        "backend": "real",
        "halted": result.halted,
        "wall_seconds": result.wall_seconds,
        "total_instructions": result.total_instructions,
        "resumed_instructions": engine.resumed_instructions,
        "n_workers": result.n_workers,
        "transport": runtime_config.transport,
        "stats": stats.as_dict(),
        "runtime": runtime.as_dict(),
        "cache": result.cache.stats_dict(),
        "audit": result.audit,
        "resources": result.resources,
    }
    if not args.json:
        print("%s after %d instructions in %.3fs wall "
              "(%d executed + %d fast-forwarded)"
              % ("halted" if result.halted else "limit",
                 result.total_instructions, result.wall_seconds,
                 stats.instructions_executed,
                 stats.instructions_fast_forwarded))
        print("real backend: %d workers, %d dispatched, %d shipped, "
              "%d used, %d crashed, %d timed-out"
              % (result.n_workers, runtime.tasks_dispatched,
                 runtime.entries_shipped, runtime.entries_used,
                 runtime.tasks_crashed, runtime.tasks_timed_out))
        print(_wire_line(runtime_config.transport, runtime))
        print(_supervision_line(runtime))
        if runtime_config.autoscale != "off":
            print(_autoscale_line(runtime_config.autoscale, runtime))
        if result.audit is not None:
            print(_verify_line(result.audit))
        if engine.resumed_instructions:
            print("resumed from checkpoint at %d instructions"
                  % engine.resumed_instructions)
        if checkpointer is not None:
            print("checkpoints: %d written to %s"
                  % (checkpointer.saves, checkpointer.directory))
    return engine.machine, payload


def _run_sim_backend(program, args):
    """Plain single-machine execution, with optional checkpoint/resume."""
    from repro.errors import EngineError

    machine = program.make_machine()
    checkpointer, resume_from = _checkpoint_setup(args, program)
    base = 0
    if resume_from is not None:
        if len(resume_from.state) != len(machine.state.buf):
            raise EngineError(
                "checkpoint state is %d bytes but this program's state "
                "vector is %d — wrong program?"
                % (len(resume_from.state), len(machine.state.buf)))
        machine.state.buf[:] = resume_from.state
        machine.instruction_count = resume_from.instruction_count
        base = resume_from.instruction_count
        checkpointer.note_resumed(base)
    chunk = args.max_instructions
    if checkpointer is not None \
            and checkpointer.every_instructions is not None:
        chunk = max(1, checkpointer.every_instructions)
    executed = 0
    reason = "halt" if machine.halted else "limit"
    eip = machine.state.eip if hasattr(machine.state, "eip") else 0
    while not machine.halted and executed < args.max_instructions:
        result = machine.run(
            max_instructions=min(chunk, args.max_instructions - executed))
        executed += result.instructions
        reason, eip = result.reason, result.eip
        if checkpointer is not None and not machine.halted:
            checkpointer.maybe_save(base + executed,
                                    bytes(machine.state.buf))
        if result.instructions == 0:
            break
    payload = {
        "program": program.name,
        "backend": "sim",
        "halted": machine.halted,
        "instructions": executed,
        "resumed_instructions": base,
    }
    if not args.json:
        print("%s after %d instructions (eip=0x%x)"
              % (reason, executed, eip))
        if base:
            print("resumed from checkpoint at %d instructions" % base)
        if checkpointer is not None:
            print("checkpoints: %d written to %s"
                  % (checkpointer.saves, checkpointer.directory))
    return machine, payload


def cmd_run(args):
    program = load_program(args.file)
    if args.backend == "real":
        machine, payload = _run_real_backend(program, args)
    else:
        machine, payload = _run_sim_backend(program, args)
    registers = {}
    for reg_name in args.reg or ():
        reg = NAME_TO_REG.get(reg_name.lower())
        if reg is None:
            print("unknown register %r" % reg_name, file=sys.stderr)
            return 2
        registers[reg_name] = machine.state.get_reg_signed(reg)
    global_values = {}
    for symbol in args.globals or ():
        for candidate in (symbol, "g_" + symbol):
            if candidate in program.symbols:
                global_values[symbol] = machine.state.read_i32(
                    program.symbol(candidate))
                break
        else:
            print("unknown global %r" % symbol, file=sys.stderr)
            return 2
    if args.state_out:
        with open(args.state_out, "wb") as handle:
            handle.write(bytes(machine.state.buf))
    if args.json:
        payload["registers"] = registers
        payload["globals"] = global_values
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name, value in registers.items():
            print("%s = %d" % (name, value))
        for name, value in global_values.items():
            print("%s = %d" % (name, value))
    return 0 if machine.halted else 1


def _scale_real_backend(program, args):
    """Measured wall-clock scaling on the multiprocess runtime."""
    import time

    from repro.core.recognizer import Recognizer
    from repro.runtime import RealParallelEngine, RuntimeConfig

    json_out = getattr(args, "json", False)
    config = _engine_config(args)
    recognized = Recognizer(config).find(program)
    if not json_out:
        print("recognized IP 0x%x (superstep ~%.0f instructions, stride %d)"
              % (recognized.ip, recognized.superstep_instructions,
                 recognized.stride))
    t0 = time.perf_counter()
    machine = program.make_machine()
    machine.run(max_instructions=500_000_000)
    seq_wall = time.perf_counter() - t0
    expected = bytes(machine.state.buf)
    if not json_out:
        print("sequential: %.3fs wall" % seq_wall)
    all_identical = True
    points = []
    for n_workers in (int(w) for w in args.workers.split(",")):
        runtime_config = RuntimeConfig(
            n_workers=n_workers, superstep_scale=args.superstep_scale,
            transport=getattr(args, "transport", None),
            autoscale=getattr(args, "autoscale", "off"))
        checkpointer, resume_from = _checkpoint_setup(
            program=program, args=args, subdir="w%d" % n_workers)
        result = RealParallelEngine(
            program, config=config, runtime_config=runtime_config,
            recognized=recognized, checkpointer=checkpointer,
            resume_from=resume_from, verify=_verify_config(args)).run()
        identical = result.final_state == expected
        all_identical = all_identical and identical
        points.append({
            "workers": n_workers,
            "transport": runtime_config.transport,
            "wall_seconds": result.wall_seconds,
            "speedup": result.speedup_vs(seq_wall),
            "identical": identical,
            "resumed_instructions": (resume_from.instruction_count
                                     if resume_from is not None else 0),
            "stats": result.stats.as_dict(),
            "runtime": result.runtime.as_dict(),
            "cache": result.cache.stats_dict(),
            "audit": result.audit,
        })
        if not json_out:
            print("%3d workers: %.3fs wall, %.2fx, %d hits, %d shipped, "
                  "identical=%s"
                  % (n_workers, result.wall_seconds,
                     result.speedup_vs(seq_wall), result.stats.hits,
                     result.runtime.entries_shipped, identical))
            print("    " + _wire_line(runtime_config.transport,
                                      result.runtime))
            if resume_from is not None:
                # A resumed run replays only the tail; its final state
                # must still match the uninterrupted sequential
                # reference.
                print("    (resumed from %d instructions)"
                      % resume_from.instruction_count)
            if result.audit is not None:
                print("    " + _verify_line(result.audit))
    if json_out:
        print(json.dumps({
            "program": program.name,
            "backend": "real",
            "sequential_wall_seconds": seq_wall,
            "identical": all_identical,
            "points": points,
        }, indent=2, sort_keys=True))
    return 0 if all_identical else 1


def cmd_scale(args):
    from repro.analysis import ExperimentContext, scaling_sweep
    from repro.analysis.report import format_series
    from repro.analysis.scaling import ideal_series

    program = load_program(args.file)
    if args.backend == "real":
        return _scale_real_backend(program, args)
    json_out = getattr(args, "json", False)
    workload = Workload(program.name, program, config=_engine_config(args))
    context = ExperimentContext(workload)
    recognized = context.recognized
    if not json_out:
        print("recognized IP 0x%x (superstep ~%.0f instructions, stride %d)"
              % (recognized.ip, recognized.superstep_instructions,
                 recognized.stride))
    cores = [int(c) for c in args.cores.split(",")]
    series = {"ideal": ideal_series(cores)}
    if args.oracle:
        series["lasc+oracle"] = scaling_sweep(
            context, cores, platform=args.platform, oracle=True)
    series["lasc"] = scaling_sweep(context, cores, platform=args.platform,
                                   collect_prediction_stats=False)
    if json_out:
        payload = {
            "program": program.name,
            "backend": "sim",
            "platform": args.platform,
            "series": {},
        }
        for name, pts in series.items():
            payload["series"][name] = [{
                "cores": p.n_cores,
                "scaling": p.scaling,
                "stats": (p.result.stats.as_dict()
                          if p.result is not None else None),
                "cache": (p.result.cache.stats_dict()
                          if p.result is not None else None),
                "audit": (getattr(p.result, "audit", None)
                          if p.result is not None else None),
            } for p in pts]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_series(series, title="%s on %s" % (program.name,
                                                        args.platform)))
    return 0


def cmd_memoize(args):
    from repro.analysis import ExperimentContext, memoization_curve

    program = load_program(args.file)
    config = _engine_config(args).replace(
        min_superstep_instructions=args.min_superstep or 60,
        recognizer_validate_states=96)
    workload = Workload(program.name, program, config=config)
    context = ExperimentContext(workload, memoization=True)
    result = memoization_curve(context)
    for point in result.timeline[::max(1, len(result.timeline) // 16)]:
        print("%12d  %6.3f" % (point.instructions, point.scaling))
    print("final scaling %.3fx (%d hits / %d queries)"
          % (result.scaling, result.stats.hits, result.stats.queries))
    return 0


_CHAOS_BUILTINS = ("collatz", "ising", "mm2")


def _chaos_workload(args):
    """A (program, engine_config) pair for the chaos target."""
    target = args.target
    if target == "collatz":
        from repro.bench.collatz import build_collatz
        workload = build_collatz(count=args.size or 300)
    elif target == "ising":
        from repro.bench.ising import build_ising
        workload = build_ising(nodes=args.size or 48, spins=6)
    elif target == "mm2":
        from repro.bench.mm2 import build_mm2
        workload = build_mm2(n=args.size or 10)
    else:
        return load_program(target), _engine_config(args)
    return workload.program, workload.config


def _engine_overrides(config):
    """Diff an :class:`EngineConfig` against the defaults — the dict a
    submit verb ships so the daemon rebuilds the same tuned config."""
    defaults = EngineConfig().__dict__
    overrides = {}
    for key, value in config.__dict__.items():
        if defaults.get(key) != value:
            overrides[key] = list(value) if isinstance(value, tuple) \
                else value
    return overrides


def _chaos_serve(args):
    """Service-tier chaos: drive a real ``repro serve`` subprocess under
    a seeded plan of daemon SIGKILLs, dropped client connections, and
    torn journal tails, and assert the submitted job's final state is
    still byte-identical to a plain sequential run.

    One plan event is one client poll round; faults drawn between polls
    land at seeded, reproducible points of the job's life. The job is
    tracked purely by its idempotency token — the thing the journal
    guarantees survives any restart."""
    import os
    import shutil
    import subprocess
    import tempfile
    import time

    from repro.runtime import FaultPlan
    from repro.serve import ServeClient, ServeClientError

    program, config = _chaos_workload(args)
    plan = FaultPlan(seed=args.seed,
                     daemon_kills=args.daemon_kills,
                     conn_drops=args.conn_drops,
                     journal_truncs=args.journal_truncs,
                     start_after=1, spacing=args.spacing)
    # Resource faults run daemon-side: the daemon consumes its own
    # seeded plan (REPRO_SERVE_FAULT_PLAN semantics) at its journal/
    # cache/admission seams, so ENOSPC and fd pressure hit the real
    # degradation ladders, not a client-side simulation. A daemon
    # restarted by a daemon_kill re-arms the same spec — deliberate:
    # every incarnation faces the same adversary.
    serve_plan_spec = None
    if args.disk_fulls or args.fd_exhausts:
        # start=1: the initial submit lands clean, then every admission
        # event (the token resubmits below) consumes one fault.
        serve_plan_spec = ("seed=%d,disk_full=%d,fd_exhaust=%d,"
                          "start=1,spacing=1"
                          % (args.seed, args.disk_fulls, args.fd_exhausts))
    sequential = program.make_machine()
    sequential.run(max_instructions=args.max_instructions)
    expected = bytes(sequential.state.buf)

    workdir = tempfile.mkdtemp(prefix="repro-chaos-serve-")
    socket_path = os.path.join(workdir, "serve.sock")
    cache_dir = os.path.join(workdir, "cache")
    journal_path = os.path.join(cache_dir, "journal", "journal.ascj")
    import repro
    pkg_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

    def start_daemon():
        try:
            os.unlink(socket_path)  # stale after a SIGKILL; a fresh
        except OSError:             # bind is the readiness signal
            pass
        cmd = [sys.executable, "-m", "repro", "serve",
               "--socket", socket_path, "--cache-dir", cache_dir,
               "--worker-budget", str(args.workers),
               "--max-instructions", str(args.max_instructions),
               "--task-timeout", str(args.task_timeout)]
        if serve_plan_spec:
            cmd += ["--fault-plan", serve_plan_spec]
        proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(socket_path):
                return proc
            if proc.poll() is not None:
                raise RuntimeError("daemon exited with %d before binding %s"
                                   % (proc.returncode, socket_path))
            time.sleep(0.05)
        proc.kill()
        raise RuntimeError("daemon never bound %s" % socket_path)

    options = {"max_instructions": args.max_instructions,
               "inflight_wait_bias": 1e9}
    overrides = _engine_overrides(config)
    if overrides:
        options["engine"] = overrides

    restarts = 0
    proc = start_daemon()
    try:
        # Seed the backoff jitter from the chaos seed so reconnect
        # timing replays with the rest of the fault schedule.
        client = ServeClient(socket_path, client="chaos", retries=10,
                             timeout=args.timeout, jitter_seed=args.seed)
        submitted = client.submit(program, **options)
        token = submitted["token"]
        deadline = time.monotonic() + args.timeout
        job = None
        # Keep polling until the job is terminal AND every scheduled
        # fault has been spent — a daemon_kill after completion still
        # proves the result store survives a restart.
        while time.monotonic() < deadline:
            kind = plan.next_serve_fault()
            if kind == "daemon_kill":
                proc.kill()
                proc.wait(timeout=30)
                proc = start_daemon()
                restarts += 1
            elif kind == "conn_drop":
                client.close()  # next request reconnects transparently
            elif kind == "journal_trunc":
                proc.kill()
                proc.wait(timeout=30)
                if os.path.exists(journal_path):
                    size = os.path.getsize(journal_path)
                    if size:
                        os.truncate(
                            journal_path,
                            max(0, size - plan.truncate_tail_bytes(size)))
                proc = start_daemon()
                restarts += 1
            if serve_plan_spec:
                # Each idempotent resubmit (dedups onto the original
                # job) is one admission event at the daemon — the pulse
                # that drains its resource-fault queue. A shed round
                # answers "overloaded"; the client's backoff absorbs it.
                client.submit(program, token=token, **options)
            try:
                job = client.poll(token=token)
            except ServeClientError as exc:
                if exc.code == "not-found":
                    # The torn tail ate the submit record itself; the
                    # token makes resubmission idempotent and correct.
                    client.submit(program, token=token, **options)
                    continue
                raise
            if (job["state"] in ("done", "failed", "cancelled")
                    and plan.exhausted):
                break
            time.sleep(0.1)
        if job is None or job["state"] != "done":
            raise ServeClientError(
                "job %s under serve chaos: %s"
                % (token, job["state"] if job else "never polled"))
        final = client.final_state(token=token)
        # Recovery check: after the storm, degraded durability modes
        # must lift on their own — the daemon's self-check retries
        # suspended write-through on its own cadence, so give it a few
        # ticks before calling the recovery failed.
        recovery_deadline = time.monotonic() + 15.0
        while True:
            daemon_stats = client.stats()
            governor = daemon_stats.get("governor") or {}
            journal_stats = daemon_stats.get("journal") or {}
            cache_stats = daemon_stats.get("cache") or {}
            recovered = not (journal_stats.get("journal_suspended")
                             or cache_stats.get("write_through_suspended"))
            if recovered or time.monotonic() >= recovery_deadline:
                break
            time.sleep(0.25)
        serve_faults_ok = (not serve_plan_spec
                           or (daemon_stats.get("serve_faults_injected")
                               or 0) >= 1)
        client.close()
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)
        shutil.rmtree(workdir, ignore_errors=True)

    identical = final == expected
    payload = {
        "program": program.name,
        "seed": args.seed,
        "identical": identical,
        "recovered": recovered,
        "restarts": restarts,
        "plan": plan.as_dict(),
        "serve_fault_plan": serve_plan_spec,
        "serve_faults_injected": daemon_stats.get("serve_faults_injected"),
        "jobs_shed": (daemon_stats.get("jobs") or {}).get("shed"),
        "governor": governor,
        "journal_pressure": {
            key: journal_stats.get(key)
            for key in ("enospc_events", "records_dropped",
                        "results_dropped", "results_pruned_for_space",
                        "journal_suspended", "journal_resumes")},
        "cache_pressure": {
            key: cache_stats.get(key)
            for key in ("enospc_events", "shards_pruned",
                        "write_through_suspended", "write_through_resumes")},
        "job": job,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("chaos --serve %s seed=%d: injected %s across %d restarts"
              % (program.name, args.seed,
                 dict(plan.injected) or "nothing", restarts))
        if serve_plan_spec:
            print("  daemon-side plan %r: %s faults consumed, "
                  "%s submits shed, journal enospc=%s cache enospc=%s"
                  % (serve_plan_spec,
                     daemon_stats.get("serve_faults_injected"),
                     (daemon_stats.get("jobs") or {}).get("shed"),
                     journal_stats.get("enospc_events"),
                     cache_stats.get("enospc_events")))
            print("  degraded durability %s"
                  % ("RECOVERED" if recovered else "STILL SUSPENDED"))
        print("final state %s sequential reference"
              % ("IDENTICAL to" if identical else "DIVERGES from"))
    return 0 if (identical and plan.exhausted and recovered
                 and serve_faults_ok) else 1


def cmd_chaos(args):
    """Run a workload under a seeded fault schedule and assert that the
    final state is byte-identical to a plain sequential run — the ASC
    correctness property under adversarial infrastructure."""
    from repro.runtime import FaultPlan, RealParallelEngine, RuntimeConfig

    if args.serve:
        return _chaos_serve(args)

    program, config = _chaos_workload(args)
    plan = FaultPlan(seed=args.seed, kills=args.kills,
                     timeouts=args.timeouts, corruptions=args.corrupts,
                     slows=args.slows, drops=args.drops,
                     shm_fulls=args.shm_fulls,
                     worker_ooms=args.worker_ooms,
                     slow_seconds=args.slow_ms / 1000.0,
                     spacing=args.spacing)
    sequential = program.make_machine()
    sequential.run(max_instructions=args.max_instructions)
    expected = bytes(sequential.state.buf)

    runtime_config = RuntimeConfig(
        n_workers=args.workers,
        max_instructions=args.max_instructions,
        task_timeout_seconds=args.task_timeout,
        transport=getattr(args, "transport", None),
        fault_plan=plan)
    engine = RealParallelEngine(program, config=config,
                                runtime_config=runtime_config)
    result = engine.run()
    runtime = result.runtime
    identical = result.final_state == expected

    payload = {
        "program": program.name,
        "seed": args.seed,
        "identical": identical,
        "halted": result.halted,
        "wall_seconds": result.wall_seconds,
        "total_instructions": result.total_instructions,
        "plan": plan.as_dict(),
        "stats": result.stats.as_dict(),
        "runtime": runtime.as_dict(),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("chaos %s seed=%d: injected %s"
              % (program.name, args.seed,
                 dict(plan.injected) or "nothing"))
        if plan.pending:
            print("  (plan not exhausted; pending: %s)"
                  % dict(plan.pending))
        print("%s after %d instructions in %.3fs wall"
              % ("halted" if result.halted else "limit",
                 result.total_instructions, result.wall_seconds))
        print(_supervision_line(runtime))
        print("final state %s sequential reference"
              % ("IDENTICAL to" if identical else "DIVERGES from"))
    return 0 if identical and result.halted else 1


def cmd_audit(args):
    """Run a workload with *every* cache splice shadow-verified (strict
    mode) and the final state compared against a plain sequential run.
    Exit 0 only if no audit diverged and the state is byte-identical —
    the machine-checkable form of the paper's correctness argument."""
    from repro.runtime import FaultPlan, RealParallelEngine, RuntimeConfig
    from repro.runtime.faults import resolve_fault_plan
    from repro.verify import VerifyConfig
    from repro.verify.incidents import format_incident

    program, config = _chaos_workload(args)
    if args.fault_plan:
        plan = resolve_fault_plan(args.fault_plan)
    elif args.taints:
        plan = FaultPlan(seed=args.seed, taints=args.taints)
    else:
        plan = None
    sequential = program.make_machine()
    sequential.run(max_instructions=args.max_instructions)
    expected = bytes(sequential.state.buf)

    # The wait bias makes every on-trajectory speculation a hit, so the
    # audit sweep covers the same splices on every run of a given seed.
    runtime_config = RuntimeConfig(
        n_workers=args.workers,
        max_instructions=args.max_instructions,
        inflight_wait_bias=1e9,
        transport=getattr(args, "transport", None),
        fault_plan=plan)
    engine = RealParallelEngine(
        program, config=config, runtime_config=runtime_config,
        verify=VerifyConfig(strict=True, seed=args.seed))
    result = engine.run()
    audit = result.audit or {}
    incidents = audit.get("incidents", [])
    identical = result.final_state == expected
    clean = bool(identical and result.halted and not incidents)

    payload = {
        "program": program.name,
        "seed": args.seed,
        "clean": clean,
        "identical": identical,
        "halted": result.halted,
        "total_instructions": result.total_instructions,
        "wall_seconds": result.wall_seconds,
        "plan": plan.as_dict() if plan is not None else None,
        "audit": audit,
        "stats": result.stats.as_dict(),
        "runtime": result.runtime.as_dict(),
        "cache": result.cache.stats_dict(),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("audit %s: %d splices verified" % (program.name,
                                                 audit.get("sampled", 0)))
        if audit:
            print(_verify_line(audit))
        for incident in incidents:
            print("  " + format_incident(incident))
        print("%s after %d instructions; final state %s sequential "
              "reference"
              % ("halted" if result.halted else "limit",
                 result.total_instructions,
                 "IDENTICAL to" if identical else "DIVERGES from"))
        print("audit verdict: %s" % ("CLEAN" if clean else "DIVERGENT"))
    return 0 if clean else 1


def _serve_config(args):
    from repro.serve import ServeConfig
    return ServeConfig(
        socket_path=args.socket,
        worker_budget=args.worker_budget,
        workers_per_job=args.workers_per_job,
        max_concurrent_jobs=args.max_jobs,
        max_running_per_client=args.max_running_per_client,
        max_queued_per_client=args.max_queued_per_client,
        cache_dir=args.cache_dir,
        flush_every_jobs=args.flush_every,
        drain_seconds=args.drain_seconds,
        max_instructions=args.max_instructions,
        task_timeout_seconds=args.task_timeout,
        transport=getattr(args, "transport", None),
        journal_dir=getattr(args, "journal_dir", None),
        journal_fsync=getattr(args, "journal_fsync", True),
        job_deadline_seconds=getattr(args, "job_deadline", None),
        no_progress_seconds=getattr(args, "no_progress_seconds", 20.0),
        kill_grace_seconds=getattr(args, "kill_grace_seconds", 5.0),
        min_shm_headroom_bytes=getattr(args, "shm_headroom_bytes", None),
        min_disk_free_bytes=getattr(args, "min_disk_free_bytes", None),
        min_fd_headroom=getattr(args, "min_fd_headroom", None),
        max_queued_jobs=getattr(args, "max_queued_jobs", None),
        fault_plan=getattr(args, "fault_plan", None),
        autoscale=getattr(args, "autoscale", "off"))


def cmd_serve(args):
    """Run (or stop) the resident speculation daemon."""
    import signal

    from repro.serve import (ServeClient, ServeClientError, ServeError,
                             SpeculationDaemon)

    if args.status or args.ping:
        try:
            with ServeClient(socket_path=args.socket, retries=0) as client:
                if args.status:
                    print(json.dumps(client.status(), indent=2,
                                     sort_keys=True))
                else:
                    client.ping()
                    print("ok: daemon on %s" % client.socket_path)
        except ServeClientError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        return 0

    if args.stop:
        try:
            with ServeClient(socket_path=args.socket) as client:
                client.shutdown(drain=not args.no_drain)
        except ServeClientError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print("shutdown requested")
        return 0

    daemon = SpeculationDaemon(_serve_config(args))
    # SIGTERM drains; a second SIGTERM escalates to an immediate
    # cancel. Both land in the same idempotent close() path.
    handler = lambda signum, frame: daemon.request_stop()  # noqa: E731
    signal.signal(signal.SIGTERM, handler)
    signal.signal(signal.SIGINT, handler)
    try:
        daemon.start()
    except ServeError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    cache = ("cache %s" % daemon.config.cache_dir
             if daemon.config.cache_dir else "cache in memory")
    print("repro serve: listening on %s (%d-worker budget, %s, "
          "%d warm entries)"
          % (daemon.config.socket_path, daemon.config.worker_budget, cache,
             daemon.store.stats_dict()["total_entries"]))
    sys.stdout.flush()
    daemon.serve_forever()
    print("repro serve: stopped (%d done, %d failed, %d cancelled)"
          % (daemon.jobs_done, daemon.jobs_failed, daemon.jobs_cancelled))
    return 0


def _submit_target(args):
    """Resolve a submit target to (program, engine-config overrides).

    The daemon rebuilds ``EngineConfig`` from the overrides dict, so
    builtins run with the same tuned config ``repro chaos`` gives them
    and files honor --window/--min-superstep/--hints.
    """
    target = args.target
    if target in _CHAOS_BUILTINS:
        program, config = _chaos_workload(args)
    else:
        program = load_program(target)
        config = _engine_config(args)
    return program, _engine_overrides(config)


def cmd_submit(args):
    """Submit a program to the daemon; by default wait for the result."""
    import base64

    from repro.machine.state import StateVector
    from repro.serve import ServeClient, ServeClientError

    program, engine_overrides = _submit_target(args)
    options = {"max_instructions": args.max_instructions}
    if args.workers:
        options["workers"] = args.workers
    if args.superstep_scale != 1:
        options["superstep_scale"] = args.superstep_scale
    if getattr(args, "transport", None):
        options["transport"] = args.transport
    if args.wait_bias is not None:
        options["inflight_wait_bias"] = args.wait_bias
    if getattr(args, "strict_verify", False):
        options["strict_verify"] = True
    if getattr(args, "verify_rate", None) is not None:
        options["verify_rate"] = args.verify_rate
    if getattr(args, "deadline", None) is not None:
        options["deadline_seconds"] = args.deadline
    if engine_overrides:
        options["engine"] = engine_overrides

    try:
        with ServeClient(socket_path=args.socket, client=args.client,
                         timeout=args.timeout) as client:
            submitted = client.submit(program, token=args.token, **options)
            job_id = submitted["job_id"]
            if args.no_wait:
                if args.json:
                    print(json.dumps(submitted, indent=2, sort_keys=True))
                else:
                    print("submitted %s as %s (namespace %s, %d warm "
                          "entries)" % (program.name, job_id,
                                        submitted["namespace"][:12],
                                        submitted["warm_entries"]))
                return 0
            job = client.wait(job_id, timeout=args.timeout)
            if job["state"] != "done":
                print("job %s %s: %s" % (job_id, job["state"],
                                         job.get("error")), file=sys.stderr)
                return 1
            result = client.result(job_id)
    except ServeClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1

    final_bytes = base64.b64decode(result.pop("final_state"))
    state = StateVector(program.layout)
    state.buf[:] = final_bytes
    registers = {}
    for reg_name in args.reg or ():
        reg = NAME_TO_REG.get(reg_name.lower())
        if reg is None:
            print("unknown register %r" % reg_name, file=sys.stderr)
            return 2
        registers[reg_name] = state.get_reg_signed(reg)
    global_values = {}
    for symbol in args.globals or ():
        for candidate in (symbol, "g_" + symbol):
            if candidate in program.symbols:
                global_values[symbol] = state.read_i32(
                    program.symbol(candidate))
                break
        else:
            print("unknown global %r" % symbol, file=sys.stderr)
            return 2
    if args.state_out:
        with open(args.state_out, "wb") as handle:
            handle.write(final_bytes)
    if args.json:
        result["registers"] = registers
        result["globals"] = global_values
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        first = result.get("first_splice_seconds")
        print("%s: %s after %d instructions in %.3fs wall "
              "(%d warm entries, %d hits%s, %d new entries banked)"
              % (job_id, "halted" if result["halted"] else "limit",
                 result["total_instructions"], result["wall_seconds"],
                 result["warm_entries"], result["hits"],
                 ", first splice %.3fs" % first if first is not None else "",
                 result["merged_entries"]))
        for name, value in registers.items():
            print("%s = %d" % (name, value))
        for name, value in global_values.items():
            print("%s = %d" % (name, value))
    return 0 if result["halted"] else 1


def cmd_jobs(args):
    """List the daemon's jobs, with per-client aggregates via stats."""
    from repro.serve import ServeClient, ServeClientError

    try:
        with ServeClient(socket_path=args.socket) as client:
            rows = client.jobs()
            stats = client.stats()
    except ServeClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"jobs": rows, "stats": stats}, indent=2,
                         sort_keys=True))
        return 0
    if not rows:
        print("no jobs")
    for row in rows:
        wall = ("%.3fs" % row["wall_seconds"]
                if row.get("wall_seconds") is not None else "-")
        extra = ""
        if row["state"] == "done":
            extra = " hits=%s warm=%s merged=%s" % (
                row.get("hits"), row.get("warm_entries"),
                row.get("merged_entries"))
        elif row.get("error"):
            extra = " error=%s" % row["error"]
        print("%-8s %-16s %-10s %-9s %8s%s"
              % (row["job_id"], row["client"][:16], row["program"][:10],
                 row["state"], wall, extra))
    queue = stats["queue"]
    print("queue: %d queued, %d running; budget %d/%d workers; "
          "cache %d entries in %d namespaces"
          % (queue["queued"], queue["running"],
             stats["workers_committed"], stats["worker_budget"],
             stats["cache"]["total_entries"], stats["cache"]["namespaces"]))
    for name, agg in stats["clients"].items():
        print("client %-16s %d submitted, %d done, %d failed, "
              "%d cancelled" % (name[:16], agg["jobs_submitted"],
                                agg["jobs_done"], agg["jobs_failed"],
                                agg["jobs_cancelled"]))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASC (ASPLOS 2014) reproduction: compile, run, and "
                    "automatically scale sequential programs.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile Mini-C / assemble SVM32")
    p.add_argument("file")
    p.add_argument("-o", "--output", help="save the program image (JSON)")
    p.add_argument("--name")
    p.add_argument("--disasm", action="store_true")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("disasm", help="disassemble a program")
    p.add_argument("file")
    p.set_defaults(func=cmd_disasm)

    def add_verify_flags(p):
        p.add_argument("--verify-rate", dest="verify_rate", type=float,
                       metavar="RATE",
                       help="shadow-audit this fraction of cache splices "
                            "on the reference interpreter (0..1; real "
                            "backend; overrides REPRO_VERIFY)")
        p.add_argument("--strict-verify", dest="strict_verify",
                       action="store_true",
                       help="audit every splice synchronously and "
                            "quarantine divergent groups for good")

    def add_transport_flag(p):
        p.add_argument("--transport", choices=["shm", "pipe"], default=None,
                       help="state transport for the real backend: 'shm' "
                            "ships states and entries through shared-"
                            "memory rings with delta compression, 'pipe' "
                            "sends full payloads inline (default follows "
                            "REPRO_TRANSPORT, else shm where available)")

    def add_autoscale_flag(p):
        p.add_argument("--autoscale",
                       choices=["off", "react", "hist", "reg"],
                       default="off",
                       help="elastic worker autoscaling policy sampled at "
                            "superstep boundaries: 'react' (payoff "
                            "thresholds), 'hist' (windowed payoff "
                            "distribution), 'reg' (payoff trend fit); "
                            "'off' keeps the static pool byte-identical "
                            "to previous behavior")

    def add_checkpoint_flags(p):
        p.add_argument("--checkpoint-dir", dest="checkpoint_dir",
                       help="write periodic durable checkpoints here")
        p.add_argument("--checkpoint-every", dest="checkpoint_every",
                       type=int, default=1_000_000, metavar="N",
                       help="checkpoint cadence in instructions")
        p.add_argument("--resume", action="store_true",
                       help="resume from the newest valid checkpoint in "
                            "--checkpoint-dir")

    p = sub.add_parser("run", help="execute a program to halt")
    p.add_argument("file")
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("--reg", action="append",
                   help="print a register after the run (repeatable)")
    p.add_argument("--global", dest="globals", action="append",
                   help="print a global variable after the run")
    p.add_argument("--backend", choices=["sim", "real"], default="sim",
                   help="'real' speculates on a pool of worker processes")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes for --backend real")
    p.add_argument("--superstep-scale", type=int, default=1,
                   dest="superstep_scale",
                   help="multiply the recognized superstep (real backend)")
    p.add_argument("--json", action="store_true",
                   help="emit a JSON report (stats + runtime counters)")
    p.add_argument("--state-out", dest="state_out", metavar="PATH",
                   help="write the final machine state bytes to PATH")
    p.add_argument("--fault-plan", dest="fault_plan", metavar="SPEC",
                   help="inject faults, e.g. 'seed=42,kill=2,corrupt=1' "
                        "(real backend)")
    p.add_argument("--worker-rlimit-as", dest="worker_rlimit_as", type=int,
                   help="cap each worker's address space (RLIMIT_AS, "
                        "bytes); a runaway speculation fails as a "
                        "contained task fault instead of taking the "
                        "host (default REPRO_WORKER_RLIMIT_AS; 0 = "
                        "uncapped)")
    add_transport_flag(p)
    add_verify_flags(p)
    add_checkpoint_flags(p)
    add_autoscale_flag(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("scale", help="ASC scaling sweep")
    p.add_argument("file")
    p.add_argument("--cores", default="4,16,32")
    p.add_argument("--platform", default="server32",
                   choices=["server32", "bluegene_p"])
    p.add_argument("--oracle", action="store_true")
    p.add_argument("--window", type=int, help="recognizer window")
    p.add_argument("--min-superstep", type=int, dest="min_superstep")
    p.add_argument("--hints", action="store_true",
                   help="restrict recognition to compiler hints")
    p.add_argument("--backend", choices=["sim", "real"], default="sim",
                   help="'sim' charges a cost model; 'real' measures "
                        "wall-clock on worker processes")
    p.add_argument("--workers", default="1,2,4",
                   help="worker counts to sweep for --backend real")
    p.add_argument("--superstep-scale", type=int, default=1,
                   dest="superstep_scale",
                   help="multiply the recognized superstep (real backend)")
    p.add_argument("--json", action="store_true",
                   help="emit a JSON report (per-point stats, cache, "
                        "and audit sections)")
    add_transport_flag(p)
    add_verify_flags(p)
    add_checkpoint_flags(p)
    add_autoscale_flag(p)
    p.set_defaults(func=cmd_scale)

    p = sub.add_parser("memoize",
                       help="single-core generalized memoization run")
    p.add_argument("file")
    p.add_argument("--window", type=int)
    p.add_argument("--min-superstep", type=int, dest="min_superstep")
    p.add_argument("--hints", action="store_true")
    p.set_defaults(func=cmd_memoize)

    p = sub.add_parser(
        "chaos",
        help="run under seeded fault injection; assert the final state "
             "is byte-identical to a sequential run")
    p.add_argument("target",
                   help="builtin workload (%s) or a program file"
                        % "/".join(_CHAOS_BUILTINS))
    p.add_argument("--size", type=int,
                   help="builtin workload size (collatz count / ising "
                        "nodes / mm2 n)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--kills", type=int, default=2,
                   help="workers to SIGKILL mid-task")
    p.add_argument("--timeouts", type=int, default=2,
                   help="tasks to push past their deadline")
    p.add_argument("--corrupts", type=int, default=1,
                   help="result frames to corrupt on the wire")
    p.add_argument("--slows", type=int, default=1,
                   help="results to delay before ingest")
    p.add_argument("--drops", type=int, default=1,
                   help="results to drop entirely")
    p.add_argument("--slow-ms", dest="slow_ms", type=float, default=50.0,
                   help="delay per slow fault, milliseconds")
    p.add_argument("--spacing", type=int, default=1,
                   help="inject at most one fault every N pool events")
    p.add_argument("--shm-fulls", dest="shm_fulls", type=int, default=0,
                   help="dispatches forced off the shm ring onto the "
                        "inline pipe fallback (resource tier)")
    p.add_argument("--worker-ooms", dest="worker_ooms", type=int, default=0,
                   help="workers whose memory limit is tightened "
                        "mid-task so the speculation OOMs as a "
                        "contained failure (resource tier)")
    p.add_argument("--disk-fulls", dest="disk_fulls", type=int, default=0,
                   help="with --serve: journal/cache writes hit an "
                        "injected ENOSPC this many times")
    p.add_argument("--fd-exhausts", dest="fd_exhausts", type=int, default=0,
                   help="with --serve: admissions shed for fd pressure "
                        "this many times (retryable 'overloaded')")
    p.add_argument("--workers", type=int, default=3)
    p.add_argument("--task-timeout", dest="task_timeout", type=float,
                   default=30.0)
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("--window", type=int, help="recognizer window")
    p.add_argument("--min-superstep", type=int, dest="min_superstep")
    p.add_argument("--hints", action="store_true")
    p.add_argument("--json", action="store_true")
    p.add_argument("--serve", action="store_true",
                   help="service-tier chaos: drive a real daemon "
                        "subprocess, injecting --daemon-kills/"
                        "--conn-drops/--journal-truncs instead of "
                        "worker faults")
    p.add_argument("--daemon-kills", dest="daemon_kills", type=int,
                   default=1, help="with --serve: SIGKILL the daemon "
                                   "mid-job this many times")
    p.add_argument("--conn-drops", dest="conn_drops", type=int, default=1,
                   help="with --serve: drop the client connection "
                        "mid-poll this many times")
    p.add_argument("--journal-truncs", dest="journal_truncs", type=int,
                   default=1,
                   help="with --serve: tear the journal tail before a "
                        "restart this many times")
    p.add_argument("--timeout", type=float, default=180.0,
                   help="with --serve: overall scenario deadline")
    add_transport_flag(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "audit",
        help="shadow-verify every cache splice against the reference "
             "interpreter; nonzero exit on any semantic divergence")
    p.add_argument("target",
                   help="builtin workload (%s) or a program file"
                        % "/".join(_CHAOS_BUILTINS))
    p.add_argument("--size", type=int,
                   help="builtin workload size (collatz count / ising "
                        "nodes / mm2 n)")
    p.add_argument("--seed", type=int, default=42,
                   help="seeds the audit sampler and any --taints plan")
    p.add_argument("--taints", type=int, default=0,
                   help="inject N semantically-corrupt cache entries; "
                        "the audit must catch every one (exit nonzero)")
    p.add_argument("--fault-plan", dest="fault_plan", metavar="SPEC",
                   help="full fault-plan spec, e.g. 'seed=7,taint=3'; "
                        "overrides --taints")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("--window", type=int, help="recognizer window")
    p.add_argument("--min-superstep", type=int, dest="min_superstep")
    p.add_argument("--hints", action="store_true")
    p.add_argument("--json", action="store_true")
    add_transport_flag(p)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "serve",
        help="run the resident speculation daemon (warm pools + shared "
             "cross-run trajectory cache)")
    p.add_argument("--socket", default=None,
                   help="unix socket path (default REPRO_SERVE_SOCKET or "
                        "a per-user path under the temp dir)")
    p.add_argument("--stop", action="store_true",
                   help="ask the daemon on --socket to drain and exit")
    p.add_argument("--status", action="store_true",
                   help="print the daemon's health probe (journal, "
                        "watchdog, degraded mode) as JSON and exit")
    p.add_argument("--ping", action="store_true",
                   help="exit 0 iff a daemon answers on --socket")
    p.add_argument("--no-drain", dest="no_drain", action="store_true",
                   help="with --stop: cancel running jobs instead of "
                        "draining them")
    p.add_argument("--worker-budget", dest="worker_budget", type=int,
                   default=4,
                   help="total live workers across every warm pool")
    p.add_argument("--workers-per-job", dest="workers_per_job", type=int,
                   default=2, help="workers per newly created pool")
    p.add_argument("--max-jobs", dest="max_jobs", type=int, default=2,
                   help="concurrently running jobs")
    p.add_argument("--max-running-per-client", dest="max_running_per_client",
                   type=int, default=1)
    p.add_argument("--max-queued-per-client", dest="max_queued_per_client",
                   type=int, default=8,
                   help="per-client backlog bound (backpressure)")
    p.add_argument("--cache-dir", dest="cache_dir",
                   help="persist cache shards here across restarts "
                        "(default: memory only)")
    p.add_argument("--flush-every", dest="flush_every", type=int, default=1,
                   help="flush dirty shards every N finished jobs")
    p.add_argument("--drain-seconds", dest="drain_seconds", type=float,
                   default=10.0,
                   help="shutdown grace for running jobs before cancel")
    p.add_argument("--max-instructions", type=int, default=500_000_000,
                   help="per-job default instruction limit")
    p.add_argument("--task-timeout", dest="task_timeout", type=float,
                   default=30.0)
    p.add_argument("--journal-dir", dest="journal_dir",
                   help="job journal directory (default: "
                        "<cache-dir>/journal when --cache-dir is set)")
    p.add_argument("--no-journal-fsync", dest="journal_fsync",
                   action="store_false",
                   help="skip fsync on journal appends (faster, weaker "
                        "crash durability)")
    p.add_argument("--job-deadline", dest="job_deadline", type=float,
                   help="default per-job wall-clock deadline, seconds")
    p.add_argument("--no-progress-seconds", dest="no_progress_seconds",
                   type=float, default=20.0,
                   help="kill a job after this long without a superstep "
                        "heartbeat")
    p.add_argument("--kill-grace-seconds", dest="kill_grace_seconds",
                   type=float, default=5.0,
                   help="grace between watchdog escalation stages")
    p.add_argument("--shm-headroom-bytes", dest="shm_headroom_bytes",
                   type=int, default=None,
                   help="shm free-space floor below which the daemon "
                        "runs degraded-sequential (default "
                        "REPRO_SHM_HEADROOM_BYTES or 64 MiB; 0 "
                        "disables)")
    p.add_argument("--min-disk-free-bytes", dest="min_disk_free_bytes",
                   type=int, default=None,
                   help="free-disk floor under the journal/cache dir "
                        "below which submits are shed as 'overloaded' "
                        "(default REPRO_DISK_FLOOR_BYTES or 32 MiB; 0 "
                        "disables)")
    p.add_argument("--fd-headroom", dest="min_fd_headroom", type=int,
                   default=None,
                   help="open-fd headroom below which submits are shed "
                        "(default REPRO_FD_HEADROOM or 64; 0 disables)")
    p.add_argument("--max-queued-jobs", dest="max_queued_jobs", type=int,
                   default=None,
                   help="global queued-job bound before shedding "
                        "(default REPRO_MAX_QUEUED_JOBS or 64; 0 "
                        "disables)")
    p.add_argument("--fault-plan", dest="fault_plan", metavar="SPEC",
                   help="serve-tier chaos plan the daemon consumes at "
                        "its own seams, e.g. 'seed=7,disk_full=2,"
                        "fd_exhaust=1' (default REPRO_SERVE_FAULT_PLAN)")
    add_transport_flag(p)
    add_autoscale_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a program to the daemon and (by default) wait")
    p.add_argument("target",
                   help="builtin workload (%s) or a program file"
                        % "/".join(_CHAOS_BUILTINS))
    p.add_argument("--size", type=int,
                   help="builtin workload size (collatz count / ising "
                        "nodes / mm2 n)")
    p.add_argument("--socket", default=None)
    p.add_argument("--client", default=None,
                   help="client name for fairness and stats bookkeeping")
    p.add_argument("--workers", type=int,
                   help="pool width if the daemon creates a pool for "
                        "this image")
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("--superstep-scale", type=int, default=1,
                   dest="superstep_scale")
    p.add_argument("--wait-bias", dest="wait_bias", type=float,
                   help="engine inflight wait bias (large values make "
                        "warm-cache runs deterministic)")
    p.add_argument("--no-wait", dest="no_wait", action="store_true",
                   help="print the job id and return immediately")
    p.add_argument("--token",
                   help="idempotency token (default: random; resubmit "
                        "with the same token to dedup onto the original "
                        "job, even across a daemon restart)")
    p.add_argument("--deadline", type=float,
                   help="per-job wall-clock deadline, seconds")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="seconds to wait for the result")
    p.add_argument("--reg", action="append",
                   help="print a register from the final state")
    p.add_argument("--global", dest="globals", action="append",
                   help="print a global variable from the final state")
    p.add_argument("--state-out", dest="state_out", metavar="PATH",
                   help="write the final machine state bytes to PATH")
    p.add_argument("--json", action="store_true")
    p.add_argument("--window", type=int, help="recognizer window")
    p.add_argument("--min-superstep", type=int, dest="min_superstep")
    p.add_argument("--hints", action="store_true")
    add_transport_flag(p)
    add_verify_flags(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs",
                       help="list the daemon's jobs and per-client stats")
    p.add_argument("--socket", default=None)
    p.add_argument("--json", action="store_true",
                   help="full jobs list + stats verb payload as JSON")
    p.set_defaults(func=cmd_jobs)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
