"""Command-line interface: compile, run, inspect, and scale programs.

Usage (also available as ``python -m repro``)::

    repro compile kernel.c -o kernel.json --disasm
    repro run kernel.c --global result --reg eax
    repro disasm kernel.c
    repro scale kernel.c --cores 4,16,32 --platform server32
    repro memoize kernel.c

Input files ending in ``.c`` are compiled as Mini-C, ``.s``/``.asm`` are
assembled, and ``.json`` loads a previously saved program image.
"""

import argparse
import sys

from repro.asm import assemble, disassemble_program
from repro.bench.workload import Workload
from repro.core.config import EngineConfig
from repro.isa.registers import NAME_TO_REG
from repro.loader.image import Program
from repro.minic import compile_source


def load_program(path, name=None):
    """Compile/assemble/load ``path`` by extension."""
    if path.endswith(".json"):
        return Program.load(path)
    with open(path) as handle:
        source = handle.read()
    program_name = name or path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    if path.endswith((".s", ".asm")):
        return assemble(source, name=program_name)
    return compile_source(source, name=program_name)


def _engine_config(args):
    overrides = {}
    if getattr(args, "window", None):
        overrides["recognizer_window"] = args.window
    if getattr(args, "min_superstep", None):
        overrides["min_superstep_instructions"] = args.min_superstep
    if getattr(args, "hints", False):
        overrides["use_compiler_hints"] = True
    return EngineConfig(**overrides)


def cmd_compile(args):
    program = load_program(args.file, name=args.name)
    print(repr(program))
    if program.hints:
        print("hints: %r" % (program.hints,))
    if args.output:
        program.save(args.output)
        print("saved image to %s" % args.output)
    if args.disasm:
        print(disassemble_program(program))
    return 0


def cmd_disasm(args):
    program = load_program(args.file)
    print(disassemble_program(program))
    return 0


def _run_real_backend(program, args):
    """Execute on the multiprocess runtime; returns the final machine."""
    from repro.runtime import RealParallelEngine, RuntimeConfig

    runtime_config = RuntimeConfig(
        n_workers=args.workers,
        superstep_scale=args.superstep_scale,
        max_instructions=args.max_instructions)
    engine = RealParallelEngine(program, config=_engine_config(args),
                                runtime_config=runtime_config)
    result = engine.run()
    stats, runtime = result.stats, result.runtime
    print("%s after %d instructions in %.3fs wall "
          "(%d executed + %d fast-forwarded)"
          % ("halted" if result.halted else "limit",
             result.total_instructions, result.wall_seconds,
             stats.instructions_executed,
             stats.instructions_fast_forwarded))
    print("real backend: %d workers, %d dispatched, %d shipped, %d used, "
          "%d crashed, %d timed-out, %d/%d bytes out/in"
          % (result.n_workers, runtime.tasks_dispatched,
             runtime.entries_shipped, runtime.entries_used,
             runtime.tasks_crashed, runtime.tasks_timed_out,
             runtime.bytes_sent, runtime.bytes_received))
    return engine.machine


def cmd_run(args):
    program = load_program(args.file)
    if args.backend == "real":
        machine = _run_real_backend(program, args)
    else:
        machine = program.make_machine()
        result = machine.run(max_instructions=args.max_instructions)
        print("%s after %d instructions (eip=0x%x)"
              % (result.reason, result.instructions, result.eip))
    for reg_name in args.reg or ():
        reg = NAME_TO_REG.get(reg_name.lower())
        if reg is None:
            print("unknown register %r" % reg_name, file=sys.stderr)
            return 2
        print("%s = %d" % (reg_name, machine.state.get_reg_signed(reg)))
    for symbol in args.globals or ():
        for candidate in (symbol, "g_" + symbol):
            if candidate in program.symbols:
                value = machine.state.read_i32(program.symbol(candidate))
                print("%s = %d" % (symbol, value))
                break
        else:
            print("unknown global %r" % symbol, file=sys.stderr)
            return 2
    return 0 if machine.halted else 1


def _scale_real_backend(program, args):
    """Measured wall-clock scaling on the multiprocess runtime."""
    import time

    from repro.core.recognizer import Recognizer
    from repro.runtime import RealParallelEngine, RuntimeConfig

    config = _engine_config(args)
    recognized = Recognizer(config).find(program)
    print("recognized IP 0x%x (superstep ~%.0f instructions, stride %d)"
          % (recognized.ip, recognized.superstep_instructions,
             recognized.stride))
    t0 = time.perf_counter()
    machine = program.make_machine()
    machine.run(max_instructions=500_000_000)
    seq_wall = time.perf_counter() - t0
    expected = bytes(machine.state.buf)
    print("sequential: %.3fs wall" % seq_wall)
    for n_workers in (int(w) for w in args.workers.split(",")):
        runtime_config = RuntimeConfig(
            n_workers=n_workers, superstep_scale=args.superstep_scale)
        result = RealParallelEngine(
            program, config=config, runtime_config=runtime_config,
            recognized=recognized).run()
        identical = result.final_state == expected
        print("%3d workers: %.3fs wall, %.2fx, %d hits, %d shipped, "
              "identical=%s"
              % (n_workers, result.wall_seconds,
                 result.speedup_vs(seq_wall), result.stats.hits,
                 result.runtime.entries_shipped, identical))
        if not identical:
            return 1
    return 0


def cmd_scale(args):
    from repro.analysis import ExperimentContext, scaling_sweep
    from repro.analysis.report import format_series
    from repro.analysis.scaling import ideal_series

    program = load_program(args.file)
    if args.backend == "real":
        return _scale_real_backend(program, args)
    workload = Workload(program.name, program, config=_engine_config(args))
    context = ExperimentContext(workload)
    recognized = context.recognized
    print("recognized IP 0x%x (superstep ~%.0f instructions, stride %d)"
          % (recognized.ip, recognized.superstep_instructions,
             recognized.stride))
    cores = [int(c) for c in args.cores.split(",")]
    series = {"ideal": ideal_series(cores)}
    if args.oracle:
        series["lasc+oracle"] = scaling_sweep(
            context, cores, platform=args.platform, oracle=True)
    series["lasc"] = scaling_sweep(context, cores, platform=args.platform,
                                   collect_prediction_stats=False)
    print(format_series(series, title="%s on %s" % (program.name,
                                                    args.platform)))
    return 0


def cmd_memoize(args):
    from repro.analysis import ExperimentContext, memoization_curve

    program = load_program(args.file)
    config = _engine_config(args).replace(
        min_superstep_instructions=args.min_superstep or 60,
        recognizer_validate_states=96)
    workload = Workload(program.name, program, config=config)
    context = ExperimentContext(workload, memoization=True)
    result = memoization_curve(context)
    for point in result.timeline[::max(1, len(result.timeline) // 16)]:
        print("%12d  %6.3f" % (point.instructions, point.scaling))
    print("final scaling %.3fx (%d hits / %d queries)"
          % (result.scaling, result.stats.hits, result.stats.queries))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASC (ASPLOS 2014) reproduction: compile, run, and "
                    "automatically scale sequential programs.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile Mini-C / assemble SVM32")
    p.add_argument("file")
    p.add_argument("-o", "--output", help="save the program image (JSON)")
    p.add_argument("--name")
    p.add_argument("--disasm", action="store_true")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("disasm", help="disassemble a program")
    p.add_argument("file")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("run", help="execute a program to halt")
    p.add_argument("file")
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("--reg", action="append",
                   help="print a register after the run (repeatable)")
    p.add_argument("--global", dest="globals", action="append",
                   help="print a global variable after the run")
    p.add_argument("--backend", choices=["sim", "real"], default="sim",
                   help="'real' speculates on a pool of worker processes")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes for --backend real")
    p.add_argument("--superstep-scale", type=int, default=1,
                   dest="superstep_scale",
                   help="multiply the recognized superstep (real backend)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("scale", help="ASC scaling sweep")
    p.add_argument("file")
    p.add_argument("--cores", default="4,16,32")
    p.add_argument("--platform", default="server32",
                   choices=["server32", "bluegene_p"])
    p.add_argument("--oracle", action="store_true")
    p.add_argument("--window", type=int, help="recognizer window")
    p.add_argument("--min-superstep", type=int, dest="min_superstep")
    p.add_argument("--hints", action="store_true",
                   help="restrict recognition to compiler hints")
    p.add_argument("--backend", choices=["sim", "real"], default="sim",
                   help="'sim' charges a cost model; 'real' measures "
                        "wall-clock on worker processes")
    p.add_argument("--workers", default="1,2,4",
                   help="worker counts to sweep for --backend real")
    p.add_argument("--superstep-scale", type=int, default=1,
                   dest="superstep_scale",
                   help="multiply the recognized superstep (real backend)")
    p.set_defaults(func=cmd_scale)

    p = sub.add_parser("memoize",
                       help="single-core generalized memoization run")
    p.add_argument("file")
    p.add_argument("--window", type=int)
    p.add_argument("--min-superstep", type=int, dest="min_superstep")
    p.add_argument("--hints", action="store_true")
    p.set_defaults(func=cmd_memoize)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
