"""Program images and their initial machine states.

A :class:`Program` is the output of the assembler (and therefore of the
Mini-C compiler): immutable code bytes, initialized data bytes, a symbol
table, and an entry point. Its job is to materialize the initial point in
state space — the paper's starting state vector with all input data loaded
up front, after which execution is fully deterministic.
"""

from repro.errors import LoaderError
from repro.isa.registers import Reg
from repro.machine.executor import Machine
from repro.machine.layout import RESERVED_LOW, StateLayout
from repro.machine.state import StateVector
from repro.machine.transition import TransitionContext

DEFAULT_CODE_BASE = 0x40
DEFAULT_STACK_SIZE = 4096


def _align(value, alignment):
    return (value + alignment - 1) // alignment * alignment


class ProgramHints:
    """Structural knowledge a compiler can pass to the recognizer.

    Addresses are absolute code addresses. ``loop_headers`` point at
    loop-condition checks (the IPs a parallelizing compiler would try to
    prove independent); ``function_entries`` at function prologues (the
    IPs behind speculative memoization of calls).
    """

    __slots__ = ("loop_headers", "function_entries")

    def __init__(self, loop_headers=(), function_entries=()):
        self.loop_headers = tuple(loop_headers)
        self.function_entries = tuple(function_entries)

    def all_addresses(self):
        return set(self.loop_headers) | set(self.function_entries)

    def __bool__(self):
        return bool(self.loop_headers or self.function_entries)

    def __repr__(self):
        return "ProgramHints(loops=%d, functions=%d)" % (
            len(self.loop_headers), len(self.function_entries))


class Program:
    """An executable image: code, data, symbols, and entry point."""

    def __init__(self, name, code, data, symbols, entry,
                 code_base=DEFAULT_CODE_BASE, stack_size=DEFAULT_STACK_SIZE,
                 mem_size=None, source=None, hints=None):
        if code_base < RESERVED_LOW:
            raise LoaderError("code_base 0x%x below reserved region" % code_base)
        if code_base % 8:
            raise LoaderError("code_base must be 8-byte aligned")
        self.name = name
        self.code = bytes(code)
        self.data = bytes(data)
        self.symbols = dict(symbols)
        self.entry = int(entry)
        self.code_base = int(code_base)
        self.data_base = _align(self.code_base + len(self.code), 16)
        self.source = source
        self._image_hash = None  # computed lazily by image_hash()
        #: Optional compiler hints (:class:`ProgramHints`): structural
        #: knowledge — loop headers, function entries — that a compiler
        #: can hand the recognizer as priors (the paper's §2.1 "import
        #: the sophisticated static analyses of traditional parallelizing
        #: compilers in the form of probability priors").
        self.hints = hints

        min_size = _align(self.data_base + len(self.data) + stack_size, 16)
        if mem_size is None:
            mem_size = min_size
        elif mem_size < min_size:
            raise LoaderError(
                "mem_size %d too small; need at least %d" % (mem_size, min_size))
        self.layout = StateLayout(_align(mem_size, 4))

        end = self.code_base + len(self.code)
        if not self.code_base <= self.entry < end:
            raise LoaderError(
                "entry 0x%x outside code [0x%x, 0x%x)"
                % (self.entry, self.code_base, end))

    # -- derived properties ---------------------------------------------------

    @property
    def code_range(self):
        """``(lo, hi)`` program addresses of the write-protected code."""
        return (self.code_base, self.code_base + len(self.code))

    @property
    def unique_ip_count(self):
        """Number of static instruction addresses (Table 1's 'unique IPs')."""
        return len(self.code) // 8

    @property
    def source_line_count(self):
        """Non-blank source line count (Table 1's 'lines of code')."""
        if not self.source:
            return 0
        return sum(1 for line in self.source.splitlines() if line.strip())

    def symbol(self, name):
        try:
            return self.symbols[name]
        except KeyError:
            raise LoaderError("undefined symbol %r in %s" % (name, self.name))

    def image_hash(self):
        """Stable hex identity of the executable image.

        Covers exactly what determines the transition function and the
        initial state: code and data bytes, entry point, load address,
        and state-vector size. Names, symbols, source text, and hints
        are excluded — two images that differ only cosmetically share a
        trajectory-cache namespace, while a single flipped instruction
        byte lands in a different one (``repro serve`` keys per-client
        cache namespaces on this digest so distinct programs can never
        cross-pollinate).
        """
        if self._image_hash is None:
            import hashlib
            digest = hashlib.sha256()
            for part in (b"repro-image-v1",
                         len(self.code).to_bytes(8, "little"), self.code,
                         len(self.data).to_bytes(8, "little"), self.data,
                         self.entry.to_bytes(8, "little"),
                         self.code_base.to_bytes(8, "little"),
                         self.layout.mem_size.to_bytes(8, "little")):
                digest.update(part)
            self._image_hash = digest.hexdigest()
        return self._image_hash

    # -- materialization --------------------------------------------------------

    def initial_state(self):
        """Build the initial state vector: image loaded, ESP at stack top."""
        state = StateVector(self.layout)
        state.write_bytes(self.code_base, self.code)
        if self.data:
            state.write_bytes(self.data_base, self.data)
        state.eip = self.entry
        state.set_reg(Reg.ESP, self.layout.mem_size)
        return state

    def make_context(self, track_code_reads=False, fast_path=None):
        return TransitionContext(self.layout, code_range=self.code_range,
                                 track_code_reads=track_code_reads,
                                 fast_path=fast_path)

    def make_machine(self, track_code_reads=False, fast_path=None):
        """Fresh machine at the program's initial state."""
        return Machine(self.initial_state(),
                       self.make_context(track_code_reads=track_code_reads,
                                         fast_path=fast_path))

    # -- persistence -----------------------------------------------------------

    def to_dict(self):
        """JSON-serializable form (code/data as base64)."""
        import base64
        hints = None
        if self.hints:
            hints = {"loop_headers": list(self.hints.loop_headers),
                     "function_entries": list(self.hints.function_entries)}
        return {
            "format": "repro-program",
            "version": 1,
            "name": self.name,
            "code": base64.b64encode(self.code).decode("ascii"),
            "data": base64.b64encode(self.data).decode("ascii"),
            "symbols": dict(self.symbols),
            "entry": self.entry,
            "code_base": self.code_base,
            "mem_size": self.layout.mem_size,
            "source": self.source,
            "hints": hints,
        }

    @classmethod
    def from_dict(cls, payload):
        import base64
        if payload.get("format") != "repro-program":
            raise LoaderError("not a serialized repro program")
        if payload.get("version") != 1:
            raise LoaderError("unsupported program format version %r"
                              % (payload.get("version"),))
        hints = None
        if payload.get("hints"):
            hints = ProgramHints(
                loop_headers=payload["hints"].get("loop_headers", ()),
                function_entries=payload["hints"].get("function_entries",
                                                      ()))
        return cls(payload["name"],
                   base64.b64decode(payload["code"]),
                   base64.b64decode(payload["data"]),
                   payload["symbols"],
                   payload["entry"],
                   code_base=payload["code_base"],
                   mem_size=payload["mem_size"],
                   source=payload.get("source"),
                   hints=hints)

    def save(self, path):
        """Write the program image as JSON to ``path``."""
        import json
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path):
        import json
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self):
        return ("Program(%r, code=%dB @0x%x, data=%dB @0x%x, entry=0x%x, "
                "mem=%dB)" % (self.name, len(self.code), self.code_base,
                              len(self.data), self.data_base, self.entry,
                              self.layout.mem_size))
