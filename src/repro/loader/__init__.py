"""Program images: laying out assembled code and data in a state vector."""

from repro.loader.image import Program, DEFAULT_CODE_BASE, DEFAULT_STACK_SIZE

__all__ = ["Program", "DEFAULT_CODE_BASE", "DEFAULT_STACK_SIZE"]
