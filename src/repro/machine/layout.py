"""State-vector layout for the trajectory-based simulator.

A complete machine state is one flat byte vector::

    [ 8 x 4B GPRs | 4B EIP | 4B EFLAGS | 4B STATUS | 20B reserved | memory ]

The layout object maps between the three address spaces in play:

* *vector index* — byte offset into the flat state vector (what the
  dependency vector, cache entries, and predictors see),
* *memory address* — the program-visible address (what LOAD/STORE use),
* *register offsets* — fixed header positions for the register file.

Program memory addresses below :data:`RESERVED_LOW` are unmapped and trap,
which turns Mini-C null-pointer dereferences into clean faults.
"""

import struct

from repro.errors import MachineError

REG_BYTES = 4
REG_COUNT = 8

REG_OFF = 0
EIP_OFF = REG_COUNT * REG_BYTES  # 32
EFLAGS_OFF = EIP_OFF + 4  # 36
STATUS_OFF = EFLAGS_OFF + 4  # 40
HEADER_SIZE = 64
MEM_OFF = HEADER_SIZE

#: Lowest mapped program address; accesses below this fault.
RESERVED_LOW = 16

#: STATUS register bit set by HLT.
STATUS_HALTED = 1

#: Stop reasons reported by every run loop (:meth:`Machine.run`, the
#: block-cache fast path, speculative workers). Defined here — the
#: lowest layer both interpreters already import — and re-exported by
#: ``machine.executor`` and ``machine.blockcache`` for compatibility.
STOP_HALTED = "halted"
STOP_LIMIT = "limit"
STOP_BREAKPOINT = "breakpoint"

_WORD = struct.Struct("<I")


def read_word(buf, off):
    """Read a little-endian 32-bit word at byte offset ``off``."""
    return _WORD.unpack_from(buf, off)[0]


def write_word(buf, off, value):
    """Write ``value`` (masked to 32 bits) little-endian at ``off``."""
    _WORD.pack_into(buf, off, value & 0xFFFFFFFF)


class StateLayout:
    """Immutable description of a state vector's geometry."""

    __slots__ = ("mem_size", "size")

    def __init__(self, mem_size):
        if mem_size <= 0:
            raise MachineError("mem_size must be positive, got %r" % (mem_size,))
        if mem_size % 4:
            raise MachineError("mem_size must be 4-byte aligned")
        self.mem_size = int(mem_size)
        self.size = MEM_OFF + self.mem_size

    @property
    def n_bits(self):
        """Dimensionality of the state space in bits (the paper's ``n``)."""
        return self.size * 8

    def vec_index(self, addr):
        """Map a program memory address to its state-vector byte index."""
        return MEM_OFF + addr

    def mem_addr(self, index):
        """Map a state-vector byte index back to a program address."""
        if index < MEM_OFF:
            raise MachineError("vector index %d is in the header" % index)
        return index - MEM_OFF

    def check_access(self, addr, width):
        """Validate a ``width``-byte access at program address ``addr``."""
        if addr < RESERVED_LOW or addr + width > self.mem_size:
            from repro.errors import SegmentationFault
            raise SegmentationFault(
                "access of %d bytes at 0x%x outside [0x%x, 0x%x)"
                % (width, addr, RESERVED_LOW, self.mem_size))

    def __eq__(self, other):
        if not isinstance(other, StateLayout):
            return NotImplemented
        return self.mem_size == other.mem_size

    def __hash__(self):
        return hash(("StateLayout", self.mem_size))

    def __repr__(self):
        return "StateLayout(mem_size=%d)" % self.mem_size
