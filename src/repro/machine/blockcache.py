"""Basic-block translation cache: the decode-once superblock fast path.

The reference interpreter (:mod:`repro.machine.transition`) pays for
decode, dict dispatch, per-byte EIP assembly, and per-byte dependency-FSM
loops on *every* instruction. Because the code region is write-protected
(stores into it raise :class:`repro.errors.CodeWriteError` before any
byte changes), the instruction stream reachable from any EIP inside it is
immutable, and all of that per-instruction work can be hoisted to
per-block work done once:

* On first execution of an EIP inside the code region the straight-line
  run of instructions up to the next control-flow op is decoded once and
  translated into a single specialized Python function (operands,
  offsets, masks, and immediates pre-resolved into literals), compiled
  with :func:`compile` and cached keyed by entry EIP.
* Registers live in Python locals for the duration of a block — the
  register file occupies the state-vector header, which program-visible
  memory can never alias — and are flushed back to the state vector only
  at block exit (or at a fault, see below).
* EIP is materialized only at block exits; halt and breakpoint checks run
  once per block instead of once per instruction.
* Dependency tracking compiles to a second variant of each block whose
  per-instruction byte loops collapse into precomputed per-register
  (offset, width) touch lists applied once per block, with memory and
  EFLAGS marks inlined range-wise at their reference positions.

Soundness invariants (see DESIGN.md "Two-tier interpreter"):

* **Immutable code** — translation is valid forever; there is no
  invalidation protocol because a store into the code range faults
  before writing.
* **Break-IP splitting** — ``Machine.run(break_ips=...)`` must stop
  exactly when the machine *arrives* at a break IP, so the block builder
  never lets a break IP become an interior instruction: blocks are split
  there and the breakpoint check at block exit observes the arrival.
* **Fault exactness** — compiled blocks defer register/EIP writeback,
  so every translated instruction that can fault (memory access,
  division) carries recovery metadata; on a
  :class:`repro.errors.MachineError` the block flushes the registers,
  EFLAGS, EIP, and dependency marks to the byte-identical state the
  reference interpreter would have left, then re-raises.
* **Conservative refusal** — instructions the translator cannot prove
  equivalent (register operands >= 8 that would alias the header,
  addressing modes outside the five defined ones, undecodable bytes,
  EIPs outside the code region) simply end the block; execution falls
  back to the reference ``TransitionContext.step`` for them.

The fast path is on by default whenever a context has a code range; set
``REPRO_FAST_PATH=0`` (or pass ``fast_path=False`` to the context) to
fall back to the reference interpreter end to end.
"""

import os
import struct

from repro.errors import (
    CodeWriteError,
    MachineError,
    SegmentationFault,
)
from repro.isa.encoding import INSTRUCTION_SIZE, decode
from repro.isa.opcodes import Op
from repro.machine.layout import (
    EFLAGS_OFF,
    EIP_OFF,
    MEM_OFF,
    RESERVED_LOW,
    STATUS_OFF,
    STATUS_HALTED,
    STOP_BREAKPOINT,
    STOP_HALTED,
    STOP_LIMIT,
)

_M = 0xFFFFFFFF
_U32 = struct.Struct("<I")
_u32 = _U32.unpack_from
_p32 = _U32.pack_into

#: Upper bound on instructions per translated block (straight-line runs
#: are usually ended far earlier by a control-flow op).
MAX_BLOCK_INSTRUCTIONS = 128

_ENV_VAR = "REPRO_FAST_PATH"


def fast_path_env_enabled():
    """The process-wide default for the fast path (``REPRO_FAST_PATH``)."""
    value = os.environ.get(_ENV_VAR)
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "off", "no", "")


# -- dependency-mark helpers ---------------------------------------------------
# The FSM (repro.machine.depvec): a read promotes NULL(0)->READ(1); a
# write promotes NULL->WRITTEN(2) and READ->WAR(3), i.e. write == OR 2.
# The `0 in <slice>` / all-marked guards make re-marking (the steady
# state inside hot loops) a single C-level containment check.

def _mark_read(g, off, width):
    end = off + width
    if 0 in g[off:end]:
        for i in range(off, end):
            if not g[i]:
                g[i] = 1


def _mark_write(g, off, width):
    end = off + width
    for i in range(off, end):
        s = g[i]
        if s < 2:
            g[i] = s | 2


def _mark_code_read(g, off, width):
    # Not a bulk overwrite: the store-protection check tests only a
    # store's start address, so a word store starting just below
    # code_lo can leave WRITTEN/WAR states on the first code bytes.
    end = off + width
    if 0 in g[off:end]:
        for i in range(off, end):
            if not g[i]:
                g[i] = 1


# -- static access metadata ----------------------------------------------------
# Per-instruction ordered register access lists ('r'/'w', reg index), in
# the exact order the reference handlers perform them, plus the number of
# accesses that happen *before* the instruction's fault point (its
# "fault cut"). EFLAGS and STATUS marks are emitted inline by the
# translator (their order can depend on runtime values, e.g. shifts by a
# register count); memory marks are inherently dynamic.

_ESP = 4
_EAX = 0
_EDX = 2

_RR_ARITH = frozenset((Op.ADD_RR, Op.SUB_RR, Op.ADC_RR, Op.SBB_RR,
                       Op.IMUL_RR, Op.AND_RR, Op.OR_RR, Op.XOR_RR,
                       Op.SHL_RR, Op.SHR_RR, Op.SAR_RR))
_RI_ARITH = frozenset((Op.ADD_RI, Op.SUB_RI, Op.IMUL_RI, Op.AND_RI,
                       Op.OR_RI, Op.XOR_RI, Op.SHL_RI, Op.SHR_RI,
                       Op.SAR_RI))
_R_UNARY = frozenset((Op.INC_R, Op.DEC_R, Op.NEG_R, Op.NOT_R))
_LOADS = frozenset((Op.LOAD, Op.LOAD8U, Op.LOAD8S))
_STORES = frozenset((Op.STORE, Op.STORE8))
_JCC = frozenset((Op.JZ, Op.JNZ, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.JB,
                  Op.JBE, Op.JA, Op.JAE, Op.JS, Op.JNS, Op.JO, Op.JNO))
_SETCC = frozenset((Op.SETZ, Op.SETNZ, Op.SETL, Op.SETLE, Op.SETG,
                    Op.SETGE, Op.SETB, Op.SETA))
_TERMINATORS = frozenset((Op.HLT, Op.JMP, Op.JMP_R, Op.CALL, Op.CALL_R,
                          Op.RET)) | _JCC

#: Opcodes that read EFLAGS / write EFLAGS unconditionally. Shifts by a
#: register count write conditionally and are handled inline.
_READS_FLAGS = frozenset((Op.ADC_RR, Op.SBB_RR, Op.INC_R, Op.DEC_R)) \
    | _JCC | _SETCC
_WRITES_FLAGS = frozenset((Op.ADD_RR, Op.ADD_RI, Op.SUB_RR, Op.SUB_RI,
                           Op.ADC_RR, Op.SBB_RR, Op.IMUL_RR, Op.IMUL_RI,
                           Op.INC_R, Op.DEC_R, Op.NEG_R, Op.AND_RR,
                           Op.AND_RI, Op.OR_RR, Op.OR_RI, Op.XOR_RR,
                           Op.XOR_RI, Op.CMP_RR, Op.CMP_RI, Op.TEST_RR,
                           Op.TEST_RI))
_MAYBE_WRITES_FLAGS = frozenset((Op.SHL_RR, Op.SHR_RR, Op.SAR_RR,
                                 Op.SHL_RI, Op.SHR_RI, Op.SAR_RI))

# Source-level condition expressions over the flags byte `fl`
# (CF=1, ZF=2, SF=4, OF=8); SF != OF is bit 2 of fl ^ (fl >> 1).
_COND_SRC = {
    Op.JZ: "fl & 2",
    Op.JNZ: "not fl & 2",
    Op.JL: "(fl ^ (fl >> 1)) & 4",
    Op.JLE: "fl & 2 or (fl ^ (fl >> 1)) & 4",
    Op.JG: "not (fl & 2 or (fl ^ (fl >> 1)) & 4)",
    Op.JGE: "not (fl ^ (fl >> 1)) & 4",
    Op.JB: "fl & 1",
    Op.JBE: "fl & 3",
    Op.JA: "not fl & 3",
    Op.JAE: "not fl & 1",
    Op.JS: "fl & 4",
    Op.JNS: "not fl & 4",
    Op.JO: "fl & 8",
    Op.JNO: "not fl & 8",
    Op.SETZ: "fl & 2",
    Op.SETNZ: "not fl & 2",
    Op.SETL: "(fl ^ (fl >> 1)) & 4",
    Op.SETLE: "fl & 2 or (fl ^ (fl >> 1)) & 4",
    Op.SETG: "not (fl & 2 or (fl ^ (fl >> 1)) & 4)",
    Op.SETGE: "not (fl ^ (fl >> 1)) & 4",
    Op.SETB: "fl & 1",
    Op.SETA: "not fl & 3",
}


def _ea_regs(mode, rb):
    """Register indices read by an effective-address computation."""
    regs = []
    if mode:
        regs.append((rb >> 4) & 0x0F)
        if mode >= 2:
            regs.append(rb & 0x0F)
    return regs


def _reg_accesses(op, mode, ra, rb):
    """Ordered register accesses and the pre-fault cut for one instruction.

    Returns ``(accesses, cut)`` where ``accesses`` is a list of
    ``('r'|'w', reg_index)`` in reference-handler order and ``cut`` is the
    number of accesses performed before the instruction's fault point
    (meaningful only for faultable instructions).
    """
    ea = [("r", r) for r in _ea_regs(mode, rb)]
    if op in (Op.NOP, Op.HLT, Op.JMP, Op.RET) or op in _JCC:
        if op is Op.RET:
            return [("r", _ESP), ("w", _ESP)], 1
        return [], 0
    if op is Op.MOV_RR:
        return [("r", rb), ("w", ra)], 2
    if op in (Op.MOV_RI,) or op in _SETCC:
        return [("w", ra)], 1
    if op in _LOADS:
        return ea + [("w", ra)], len(ea)
    if op in _STORES:
        return ea + [("r", ra)], len(ea) + 1
    if op is Op.LEA:
        return ea + [("w", ra)], len(ea) + 1
    if op is Op.PUSH_R:
        return [("r", ra), ("r", _ESP), ("w", _ESP)], 3
    if op is Op.PUSH_I:
        return [("r", _ESP), ("w", _ESP)], 2
    if op is Op.POP_R:
        return [("r", _ESP), ("w", _ESP), ("w", ra)], 1
    if op is Op.XCHG:
        return [("r", ra), ("r", rb), ("w", ra), ("w", rb)], 4
    if op in _RR_ARITH:
        return [("r", ra), ("r", rb), ("w", ra)], 3
    if op in _RI_ARITH or op in _R_UNARY:
        return [("r", ra), ("w", ra)], 2
    if op in (Op.CMP_RR, Op.TEST_RR):
        return [("r", ra), ("r", rb)], 2
    if op in (Op.CMP_RI, Op.TEST_RI):
        return [("r", ra)], 1
    if op in (Op.IDIV_R, Op.UDIV_R):
        return [("r", ra), ("r", _EAX), ("w", _EAX), ("w", _EDX)], 2
    if op is Op.JMP_R:
        return [("r", ra)], 1
    if op is Op.CALL:
        return [("r", _ESP), ("w", _ESP)], 2
    if op is Op.CALL_R:
        return [("r", ra), ("r", _ESP), ("w", _ESP)], 3
    raise MachineError("no access metadata for opcode %s" % (op,))


_FAULTABLE = _LOADS | _STORES | frozenset((
    Op.PUSH_R, Op.PUSH_I, Op.POP_R, Op.CALL, Op.CALL_R, Op.RET,
    Op.IDIV_R, Op.UDIV_R))


def _translatable(op, mode, ra, rb):
    """Refuse encodings whose reference semantics would touch the header."""
    if mode > 4:
        return False
    shape_regs = []
    if op in _LOADS or op in _STORES or op is Op.LEA:
        shape_regs = [ra] + _ea_regs(mode, rb)
    elif op in _RR_ARITH or op in (Op.MOV_RR, Op.XCHG, Op.CMP_RR,
                                   Op.TEST_RR):
        shape_regs = [ra, rb]
    elif op in _RI_ARITH or op in _R_UNARY or op in _SETCC or op in (
            Op.MOV_RI, Op.PUSH_R, Op.POP_R, Op.CMP_RI, Op.TEST_RI,
            Op.IDIV_R, Op.UDIV_R, Op.JMP_R, Op.CALL_R):
        shape_regs = [ra]
    return all(r < 8 for r in shape_regs)


# -- the translated block ------------------------------------------------------

class Block:
    """One translated superblock: entry EIP, length, and compiled variants."""

    __slots__ = ("entry", "n", "end", "addrs", "ends_halt", "base", "dep",
                 "reg_marks", "prefault_marks", "_reg_offsets",
                 "_uses_flags")

    def __init__(self, entry, addrs, ends_halt, reg_marks, prefault_marks,
                 reg_offsets, uses_flags):
        self.entry = entry
        self.addrs = addrs
        self.n = len(addrs)
        self.end = entry + 8 * self.n
        self.ends_halt = ends_halt
        #: Per-instruction ordered register marks for fault recovery.
        self.reg_marks = reg_marks
        #: Register marks performed before each instruction's fault point.
        self.prefault_marks = prefault_marks
        self._reg_offsets = reg_offsets
        self._uses_flags = uses_flags
        self.base = None
        self.dep = None

    def recover(self, exc, buf, g, pc, reg_values, fl):
        """Rebuild the exact reference fault state after a mid-block fault.

        Called from the generated ``except MachineError`` clause with the
        faulting instruction's index ``pc`` and the current register
        locals; flushes values, EIP, EFLAGS, and (when tracking) the
        dependency-mark prefix the reference interpreter would have left.
        """
        for off, value in zip(self._reg_offsets, reg_values):
            _p32(buf, off, value)
        if self._uses_flags:
            buf[EFLAGS_OFF] = fl
        _p32(buf, EIP_OFF, self.addrs[pc])
        if g is not None:
            for i in range(pc):
                for kind, reg in self.reg_marks[i]:
                    if kind == "r":
                        _mark_read(g, reg * 4, 4)
                    else:
                        _mark_write(g, reg * 4, 4)
            for kind, reg in self.prefault_marks[pc]:
                if kind == "r":
                    _mark_read(g, reg * 4, 4)
                else:
                    _mark_write(g, reg * 4, 4)
            if pc > 0:
                _mark_write(g, EIP_OFF, 4)
        exc._fp_block_index = pc
        return exc


# -- the translator ------------------------------------------------------------

class _Emitter:
    """Accumulates the source of one block variant."""

    def __init__(self, dep):
        self.dep = dep
        self.lines = []

    def emit(self, line):
        self.lines.append(line)

    def mark(self, call):
        if self.dep:
            self.lines.append(call)


class BlockTranslator:
    """Translates decoded instruction runs into compiled block functions."""

    def __init__(self, context):
        self.context = context
        layout = context.layout
        mem_size = layout.mem_size
        code_lo, code_hi = context.code_lo, context.code_hi

        def _segv(addr, width):
            raise SegmentationFault(
                "access of %d bytes at 0x%x outside [0x%x, 0x%x)"
                % (width, addr, RESERVED_LOW, mem_size))

        def _codew(addr, width):
            raise CodeWriteError(
                "store of %d bytes at 0x%x hits write-protected code "
                "[0x%x, 0x%x)" % (width, addr, code_lo, code_hi))

        def _div0s(eip):
            raise MachineError("signed division by zero at eip=0x%x" % eip)

        def _div0u(eip):
            raise MachineError("unsigned division by zero at eip=0x%x" % eip)

        def _divovf(eip):
            raise MachineError("IDIV quotient overflow at eip=0x%x" % eip)

        #: Shared globals for every generated function of this context.
        self.namespace = {
            "u32": _u32, "p32": _p32,
            "_mr": _mark_read, "_mw": _mark_write, "_mc": _mark_code_read,
            "_sv": _segv, "_cw": _codew,
            "_dzs": _div0s, "_dzu": _div0u, "_ovf": _divovf,
            "MachineError": MachineError,
        }
        self.mem_size = mem_size
        self.code_lo = code_lo
        self.code_hi = code_hi

    # -- block discovery -----------------------------------------------------

    def discover(self, buf, entry, break_set):
        """Decode the straight-line run starting at ``entry``.

        Returns a list of ``(addr, op, mode, ra, rb, imm)`` or ``None``
        when the entry instruction itself cannot be translated.
        """
        context = self.context
        cache = context._decode_cache
        instrs = []
        addr = entry
        while True:
            if addr < self.code_lo or addr + INSTRUCTION_SIZE > self.code_hi:
                break
            if addr != entry and addr in break_set:
                break  # split: arrival at a break IP must be observable
            decoded = cache.get(addr)
            if decoded is None:
                try:
                    decoded = decode(buf, MEM_OFF + addr)
                except Exception:
                    break  # undecodable: reference step reports it
                cache[addr] = decoded
            op, mode, ra, rb, imm = decoded
            if not _translatable(op, mode, ra, rb):
                break
            instrs.append((addr, op, mode, ra, rb, imm))
            if op in _TERMINATORS:
                break
            addr += INSTRUCTION_SIZE
            if len(instrs) >= MAX_BLOCK_INSTRUCTIONS:
                break
        return instrs or None

    # -- source generation ---------------------------------------------------

    def _ea_src(self, mode, rb, imm):
        """Source expression for an effective address (masked to 32 bits)."""
        if mode == 0:
            return repr(imm & _M)
        base = "r%d" % ((rb >> 4) & 0x0F)
        if mode == 1:
            if imm == 0:
                return base
            return "(%s + %d) & %d" % (base, imm, _M)
        index = "r%d" % (rb & 0x0F)
        scale = 1 if mode == 2 else (2 if mode == 3 else 4)
        term = index if scale == 1 else "%s * %d" % (index, scale)
        if imm == 0:
            return "(%s + %s) & %d" % (base, term, _M)
        return "(%s + %s + %d) & %d" % (base, term, imm, _M)

    def _emit_flags_read(self, w):
        w.mark("        if not g[%d]: g[%d] = 1" % (EFLAGS_OFF, EFLAGS_OFF))

    def _emit_flags_write(self, w):
        w.mark("        g[%d] |= 2" % EFLAGS_OFF)

    def _emit_mem_check(self, w, ea, width, store):
        w.emit("        if %s < %d or %s > %d: _sv(%s, %d)"
               % (ea, RESERVED_LOW, ea, self.mem_size - width, ea, width))
        if store:
            w.emit("        if %d <= %s < %d: _cw(%s, %d)"
                   % (self.code_lo, ea, self.code_hi, ea, width))

    def _emit_arith_flags(self, w, kind, a, b, res="_r", t="_t"):
        """Emit ``fl = ...`` for an ALU result (CF=1 ZF=2 SF=4 OF=8)."""
        zf_sf = "(2 if %s == 0 else 0) | ((%s >> 29) & 4)" % (res, res)
        if kind == "add":
            cf = "(1 if %s > %d else 0)" % (t, _M)
            of = "(8 if ~(%s ^ %s) & (%s ^ %s) & %d else 0)" % (
                a, b, a, res, 0x80000000)
            w.emit("        fl = %s | %s | %s" % (cf, zf_sf, of))
        elif kind == "sub":
            cf = "(1 if %s > %s else 0)" % (b, a)
            of = "(8 if (%s ^ %s) & (%s ^ %s) & %d else 0)" % (
                a, b, a, res, 0x80000000)
            w.emit("        fl = %s | %s | %s" % (cf, zf_sf, of))
        elif kind == "logic":
            w.emit("        fl = %s" % zf_sf)
        else:
            raise MachineError("unknown flag kind %r" % (kind,))

    def _emit_instr(self, w, index, instr, faultable):
        addr, op, mode, ra, rb, imm = instr
        A = "r%d" % ra
        B = "r%d" % rb
        if self.context.track_code_reads:
            w.mark("        _mc(g, %d, 8)" % (MEM_OFF + addr))
        if faultable:
            w.emit("        _pc = %d" % index)

        if op is Op.NOP:
            pass
        elif op is Op.MOV_RR:
            w.emit("        %s = %s" % (A, B))
        elif op is Op.MOV_RI:
            w.emit("        %s = %d" % (A, imm & _M))
        elif op in _LOADS:
            width = 4 if op is Op.LOAD else 1
            w.emit("        _ea = %s" % self._ea_src(mode, rb, imm))
            self._emit_mem_check(w, "_ea", width, store=False)
            w.emit("        _o = _ea + %d" % MEM_OFF)
            w.mark("        _mr(g, _o, %d)" % width)
            if op is Op.LOAD:
                w.emit("        %s, = u32(buf, _o)" % A)
            elif op is Op.LOAD8U:
                w.emit("        %s = buf[_o]" % A)
            else:  # LOAD8S
                w.emit("        _v = buf[_o]")
                w.emit("        %s = _v | 4294967040 if _v & 128 else _v" % A)
        elif op in _STORES:
            width = 4 if op is Op.STORE else 1
            w.emit("        _ea = %s" % self._ea_src(mode, rb, imm))
            self._emit_mem_check(w, "_ea", width, store=True)
            w.emit("        _o = _ea + %d" % MEM_OFF)
            if op is Op.STORE:
                w.emit("        p32(buf, _o, %s)" % A)
            else:
                w.emit("        buf[_o] = %s & 255" % A)
            w.mark("        _mw(g, _o, %d)" % width)
        elif op is Op.LEA:
            w.emit("        %s = %s" % (A, self._ea_src(mode, rb, imm)))
        elif op in (Op.PUSH_R, Op.PUSH_I):
            value = A if op is Op.PUSH_R else repr(imm & _M)
            if op is Op.PUSH_R and ra == _ESP:
                w.emit("        _v = r4")
                value = "_v"
            w.emit("        r4 = (r4 - 4) & %d" % _M)
            self._emit_mem_check(w, "r4", 4, store=True)
            w.emit("        _o = r4 + %d" % MEM_OFF)
            w.emit("        p32(buf, _o, %s)" % value)
            w.mark("        _mw(g, _o, 4)")
        elif op is Op.POP_R:
            self._emit_mem_check(w, "r4", 4, store=False)
            w.emit("        _o = r4 + %d" % MEM_OFF)
            w.mark("        _mr(g, _o, 4)")
            w.emit("        _v, = u32(buf, _o)")
            w.emit("        r4 = (r4 + 4) & %d" % _M)
            w.emit("        %s = _v" % A)
        elif op is Op.XCHG:
            if ra != rb:
                w.emit("        %s, %s = %s, %s" % (A, B, B, A))
        elif op in (Op.ADD_RR, Op.ADD_RI):
            b = B if op is Op.ADD_RR else repr(imm & _M)
            w.emit("        _t = %s + %s" % (A, b))
            w.emit("        _r = _t & %d" % _M)
            self._emit_arith_flags(w, "add", A, b)
            self._emit_flags_write(w)
            w.emit("        %s = _r" % A)
        elif op in (Op.SUB_RR, Op.SUB_RI, Op.CMP_RR, Op.CMP_RI):
            b = B if op in (Op.SUB_RR, Op.CMP_RR) else repr(imm & _M)
            w.emit("        _r = (%s - %s) & %d" % (A, b, _M))
            self._emit_arith_flags(w, "sub", A, b)
            self._emit_flags_write(w)
            if op in (Op.SUB_RR, Op.SUB_RI):
                w.emit("        %s = _r" % A)
        elif op is Op.ADC_RR:
            self._emit_flags_read(w)
            w.emit("        _ci = fl & 1")
            w.emit("        _t = %s + %s + _ci" % (A, B))
            w.emit("        _r = _t & %d" % _M)
            w.emit("        _ss = (%s - 4294967296 if %s & 2147483648 else %s)"
                   " + (%s - 4294967296 if %s & 2147483648 else %s) + _ci"
                   % (A, A, A, B, B, B))
            w.emit("        fl = (1 if _t > %d else 0) | (2 if _r == 0 else 0)"
                   " | ((_r >> 29) & 4)"
                   " | (0 if -2147483648 <= _ss < 2147483648 else 8)" % _M)
            self._emit_flags_write(w)
            w.emit("        %s = _r" % A)
        elif op is Op.SBB_RR:
            self._emit_flags_read(w)
            w.emit("        _ci = fl & 1")
            w.emit("        _r = (%s - %s - _ci) & %d" % (A, B, _M))
            w.emit("        _sd = (%s - 4294967296 if %s & 2147483648 else %s)"
                   " - (%s - 4294967296 if %s & 2147483648 else %s) - _ci"
                   % (A, A, A, B, B, B))
            w.emit("        fl = (1 if %s < %s + _ci else 0)"
                   " | (2 if _r == 0 else 0) | ((_r >> 29) & 4)"
                   " | (0 if -2147483648 <= _sd < 2147483648 else 8)" % (A, B))
            self._emit_flags_write(w)
            w.emit("        %s = _r" % A)
        elif op in (Op.IMUL_RR, Op.IMUL_RI):
            if op is Op.IMUL_RR:
                w.emit("        _sb = %s - 4294967296 if %s & 2147483648"
                       " else %s" % (B, B, B))
                sb = "_sb"
            else:
                sb = repr(imm)  # decode() already sign-extended
            w.emit("        _sa = %s - 4294967296 if %s & 2147483648 else %s"
                   % (A, A, A))
            w.emit("        _f = _sa * %s" % sb)
            w.emit("        _r = _f & %d" % _M)
            w.emit("        fl = (0 if -2147483648 <= _f < 2147483648 else 9)"
                   " | (2 if _r == 0 else 0) | ((_r >> 29) & 4)")
            self._emit_flags_write(w)
            w.emit("        %s = _r" % A)
        elif op in (Op.IDIV_R, Op.UDIV_R):
            if op is Op.IDIV_R:
                w.emit("        _d = %s - 4294967296 if %s & 2147483648"
                       " else %s" % (A, A, A))
                w.emit("        if _d == 0: _dzs(%d)" % addr)
                w.emit("        _n = r0 - 4294967296 if r0 & 2147483648"
                       " else r0")
                w.emit("        _q = abs(_n) // abs(_d)")
                w.emit("        if (_n < 0) != (_d < 0): _q = -_q")
                w.emit("        _rm = _n - _q * _d")
                w.emit("        if not -2147483648 <= _q < 2147483648:"
                       " _ovf(%d)" % addr)
                w.emit("        r0 = _q & %d" % _M)
                w.emit("        r2 = _rm & %d" % _M)
            else:
                w.emit("        if %s == 0: _dzu(%d)" % (A, addr))
                w.emit("        _q, _rm = divmod(r0, %s)" % A)
                w.emit("        r0 = _q")
                w.emit("        r2 = _rm")
        elif op in (Op.INC_R, Op.DEC_R):
            self._emit_flags_read(w)
            delta = "+ 1" if op is Op.INC_R else "- 1"
            edge = 0x7FFFFFFF if op is Op.INC_R else 0x80000000
            w.emit("        _r = (%s %s) & %d" % (A, delta, _M))
            w.emit("        fl = (fl & 1) | (2 if _r == 0 else 0)"
                   " | ((_r >> 29) & 4) | (8 if %s == %d else 0)" % (A, edge))
            self._emit_flags_write(w)
            w.emit("        %s = _r" % A)
        elif op is Op.NEG_R:
            w.emit("        _r = (-%s) & %d" % (A, _M))
            w.emit("        fl = (1 if %s else 0) | (2 if _r == 0 else 0)"
                   " | ((_r >> 29) & 4) | (8 if %s == 2147483648 else 0)"
                   % (A, A))
            self._emit_flags_write(w)
            w.emit("        %s = _r" % A)
        elif op is Op.NOT_R:
            w.emit("        %s = %s ^ %d" % (A, A, _M))
        elif op in (Op.AND_RR, Op.AND_RI, Op.OR_RR, Op.OR_RI, Op.XOR_RR,
                    Op.XOR_RI, Op.TEST_RR, Op.TEST_RI):
            sym = {"AND": "&", "OR": "|", "XOR": "^", "TEST": "&"}[
                op.name.split("_")[0]]
            b = B if op.name.endswith("RR") else repr(imm & _M)
            w.emit("        _r = %s %s %s" % (A, sym, b))
            self._emit_arith_flags(w, "logic", A, b)
            self._emit_flags_write(w)
            if op not in (Op.TEST_RR, Op.TEST_RI):
                w.emit("        %s = _r" % A)
        elif op in (Op.SHL_RI, Op.SHR_RI, Op.SAR_RI):
            count = imm & 31
            if count:
                self._emit_shift(w, op.name[:3], A, repr(count), indent=8)
                self._emit_flags_write(w)
                w.emit("        %s = _r" % A)
        elif op in (Op.SHL_RR, Op.SHR_RR, Op.SAR_RR):
            w.emit("        _c = %s & 31" % B)
            w.emit("        if _c:")
            self._emit_shift(w, op.name[:3], A, "_c", indent=12)
            if w.dep:
                w.emit("            g[%d] |= 2" % EFLAGS_OFF)
            w.emit("            %s = _r" % A)
        elif op in _SETCC:
            self._emit_flags_read(w)
            w.emit("        %s = 1 if (%s) else 0" % (A, _COND_SRC[op]))
        elif op is Op.HLT:
            w.emit("        buf[%d] |= %d" % (STATUS_OFF, STATUS_HALTED))
            w.mark("        g[%d] |= 2" % STATUS_OFF)
            w.emit("        _nx = %d" % addr)
        elif op is Op.JMP:
            w.emit("        _nx = %d" % (imm & _M))
        elif op is Op.JMP_R:
            w.emit("        _nx = %s" % A)
        elif op in _JCC:
            self._emit_flags_read(w)
            w.emit("        _nx = %d if (%s) else %d"
                   % (imm & _M, _COND_SRC[op], addr + 8))
        elif op in (Op.CALL, Op.CALL_R):
            if op is Op.CALL_R:
                w.emit("        _tg = %s" % A)
            w.emit("        r4 = (r4 - 4) & %d" % _M)
            self._emit_mem_check(w, "r4", 4, store=True)
            w.emit("        _o = r4 + %d" % MEM_OFF)
            w.emit("        p32(buf, _o, %d)" % ((addr + 8) & _M))
            w.mark("        _mw(g, _o, 4)")
            w.emit("        _nx = %s"
                   % (repr(imm & _M) if op is Op.CALL else "_tg"))
        elif op is Op.RET:
            self._emit_mem_check(w, "r4", 4, store=False)
            w.emit("        _o = r4 + %d" % MEM_OFF)
            w.mark("        _mr(g, _o, 4)")
            w.emit("        _nx, = u32(buf, _o)")
            w.emit("        r4 = (r4 + 4) & %d" % _M)
        else:
            raise MachineError("translator cannot emit opcode %s" % (op,))

    def _emit_shift(self, w, kind, A, count, indent):
        pad = " " * indent
        if kind == "SHL":
            w.emit(pad + "_r = (%s << %s) & %d" % (A, count, _M))
            w.emit(pad + "fl = ((%s >> (32 - %s)) & 1)"
                   " | (2 if _r == 0 else 0) | ((_r >> 29) & 4)" % (A, count))
        elif kind == "SHR":
            w.emit(pad + "_r = %s >> %s" % (A, count))
            w.emit(pad + "fl = ((%s >> (%s - 1)) & 1)"
                   " | (2 if _r == 0 else 0) | ((_r >> 29) & 4)" % (A, count))
        else:  # SAR
            w.emit(pad + "_s = %s - 4294967296 if %s & 2147483648 else %s"
                   % (A, A, A))
            w.emit(pad + "_r = (_s >> %s) & %d" % (count, _M))
            w.emit(pad + "fl = ((_s >> (%s - 1)) & 1)"
                   " | (2 if _r == 0 else 0) | ((_r >> 29) & 4)" % count)

    # -- whole-block assembly -------------------------------------------------

    def translate(self, buf, entry, break_set):
        instrs = self.discover(buf, entry, break_set)
        if instrs is None:
            return None

        accesses = []
        cuts = []
        flags_used = False
        for addr, op, mode, ra, rb, imm in instrs:
            acc, cut = _reg_accesses(op, mode, ra, rb)
            accesses.append(acc)
            cuts.append(cut)
            if op in _READS_FLAGS or op in _WRITES_FLAGS \
                    or op in _MAYBE_WRITES_FLAGS:
                flags_used = True

        used_regs = sorted({r for acc in accesses for __, r in acc})
        written_regs = sorted({r for acc in accesses
                               for kind, r in acc if kind == "w"})
        faultable = [instr[1] in _FAULTABLE for instr in instrs]
        any_fault = any(faultable)
        last_op = instrs[-1][1]
        ends_halt = last_op is Op.HLT
        is_terminated = last_op in _TERMINATORS
        end_addr = instrs[-1][0] + 8

        # Collapsed per-register touch list: the FSM net effect of the
        # whole block on a register is determined by its first access
        # kind and whether it is ever written.
        first_kind = {}
        for acc in accesses:
            for kind, reg in acc:
                first_kind.setdefault(reg, kind)

        block = Block(
            entry=entry,
            addrs=tuple(instr[0] for instr in instrs),
            ends_halt=ends_halt,
            reg_marks=tuple(tuple(acc) for acc in accesses),
            prefault_marks=tuple(tuple(acc[:cut])
                                 for acc, cut in zip(accesses, cuts)),
            reg_offsets=tuple(r * 4 for r in used_regs),
            uses_flags=flags_used,
        )

        for dep in (False, True):
            w = _Emitter(dep)
            args = "buf, g" if dep else "buf"
            w.emit("def _block(%s):" % args)
            w.mark("    _mr(g, %d, 4)" % EIP_OFF)
            for r in used_regs:
                w.emit("    r%d, = u32(buf, %d)" % (r, r * 4))
            if flags_used:
                w.emit("    fl = buf[%d]" % EFLAGS_OFF)
            body = _Emitter(dep)
            for i, instr in enumerate(instrs):
                self._emit_instr(body, i, instr, faultable[i])
            if not is_terminated:
                body.emit("        _nx = %d" % end_addr)
            if any_fault:
                w.emit("    _pc = 0")
                w.emit("    try:")
                w.lines.extend(body.lines)
                w.emit("    except MachineError as _e:")
                regs_tuple = "(%s)" % "".join("r%d, " % r for r in used_regs)
                w.emit("        _rec(_e, buf, %s, _pc, %s, %s)"
                       % ("g" if dep else "None", regs_tuple,
                          "fl" if flags_used else "0"))
                w.emit("        raise")
            else:
                # No fault sites: inline the body without the try frame.
                w.lines.extend(line[4:] for line in body.lines)
            for r in written_regs:
                w.emit("    p32(buf, %d, r%d)" % (r * 4, r))
            if flags_used:
                w.emit("    buf[%d] = fl" % EFLAGS_OFF)
            w.emit("    p32(buf, %d, _nx)" % EIP_OFF)
            if dep:
                for reg in used_regs:
                    if first_kind[reg] == "r":
                        w.emit("    _mr(g, %d, 4)" % (reg * 4))
                for reg in used_regs:
                    if reg in written_regs:
                        w.emit("    _mw(g, %d, 4)" % (reg * 4))
                w.emit("    _mw(g, %d, 4)" % EIP_OFF)
            w.emit("    return _nx")

            source = "\n".join(w.lines) + "\n"
            namespace = dict(self.namespace)
            namespace["_rec"] = block.recover
            code = compile(source, "<block 0x%x%s>"
                           % (entry, "/dep" if dep else ""), "exec")
            exec(code, namespace)
            if dep:
                block.dep = namespace["_block"]
            else:
                block.base = namespace["_block"]
        return block


# -- the cache and its run loops -----------------------------------------------

class BlockCache:
    """Per-context store of translated blocks plus the block run loops.

    Blocks are keyed by ``(break-IP set, entry EIP)``: the same code
    translated under different breakpoint sets splits differently, and
    engines reuse a small number of distinct break sets (one per
    recognized phase), so each set gets its own dict. ``False`` entries
    memoize in-code EIPs the translator refused.
    """

    def __init__(self, context):
        self.context = context
        self.translator = BlockTranslator(context)
        self._by_break = {}

    # -- statistics ----------------------------------------------------------

    def compiled_block_count(self):
        return sum(sum(1 for b in blocks.values() if b)
                   for blocks in self._by_break.values())

    def blocks_for(self, break_ips):
        key = frozenset(break_ips) if break_ips else frozenset()
        blocks = self._by_break.get(key)
        if blocks is None:
            blocks = self._by_break[key] = {}
        return key, blocks

    # -- run loops -----------------------------------------------------------

    def run(self, buf, g, max_instructions, break_ips):
        """Run until halt, breakpoint arrival, or budget exhaustion.

        Mirrors the reference loop of :meth:`Machine.run` exactly
        (including its stop-reason priorities and its behavior of
        executing at least one instruction when starting *on* a break
        IP). Returns ``(executed, reason)``. On a fault the propagating
        exception carries ``_fp_executed``, the count of instructions
        retired before it.
        """
        context = self.context
        break_set, blocks = self.blocks_for(break_ips)
        translate = self.translator.translate
        code_lo, code_hi = context.code_lo, context.code_hi
        step = context.step
        remaining = max_instructions
        executed = 0
        eip, = _u32(buf, EIP_OFF)

        while True:
            block = blocks.get(eip)
            if block is None and code_lo <= eip < code_hi:
                block = translate(buf, eip, break_set)
                blocks[eip] = block if block is not None else False
            if block:
                n = block.n
                if remaining is None or n <= remaining:
                    try:
                        eip = (block.base(buf) if g is None
                               else block.dep(buf, g))
                    except MachineError as exc:
                        exc._fp_executed = executed + getattr(
                            exc, "_fp_block_index", 0)
                        raise
                    executed += n
                    if block.ends_halt:
                        return executed, STOP_HALTED
                    if break_set and eip in break_set:
                        return executed, STOP_BREAKPOINT
                    if remaining is not None:
                        remaining -= n
                        if remaining <= 0:
                            return executed, STOP_LIMIT
                    continue
            # Reference single-step: untranslatable EIP or a budget
            # smaller than the next block.
            if remaining is not None and remaining <= 0:
                return executed, STOP_LIMIT
            try:
                step(buf, g)
            except MachineError as exc:
                exc._fp_executed = executed
                raise
            executed += 1
            if buf[STATUS_OFF] & STATUS_HALTED:
                return executed, STOP_HALTED
            eip, = _u32(buf, EIP_OFF)
            if break_set and eip in break_set:
                return executed, STOP_BREAKPOINT
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return executed, STOP_LIMIT

    def ip_trace(self, buf, max_instructions):
        """Fast-path twin of :meth:`Machine.ip_trace`.

        Returns ``(trace, executed)``; a block contributes its
        precomputed address tuple without re-reading EIP per
        instruction. On a fault the trace is truncated to the addresses
        actually entered (as the reference loop would have built it) but
        is lost to the caller, exactly like the reference path.
        """
        context = self.context
        __, blocks = self.blocks_for(None)
        translate = self.translator.translate
        code_lo, code_hi = context.code_lo, context.code_hi
        step = context.step
        trace = []
        executed = 0
        remaining = max_instructions
        while remaining > 0:
            if buf[STATUS_OFF] & STATUS_HALTED:
                break
            eip, = _u32(buf, EIP_OFF)
            block = blocks.get(eip)
            if block is None and code_lo <= eip < code_hi:
                block = translate(buf, eip, frozenset())
                blocks[eip] = block if block is not None else False
            if block and block.n <= remaining:
                trace.extend(block.addrs)
                try:
                    block.base(buf)
                except MachineError as exc:
                    k = getattr(exc, "_fp_block_index", 0)
                    del trace[len(trace) - block.n + k + 1:]
                    exc._fp_executed = executed + k
                    raise
                executed += block.n
                remaining -= block.n
            else:
                trace.append(eip)
                try:
                    step(buf, None)
                except MachineError as exc:
                    exc._fp_executed = executed
                    raise
                executed += 1
                remaining -= 1
        return trace, executed
