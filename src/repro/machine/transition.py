"""The transition function: execute one instruction on a state vector.

This is the paper's ``transition(uint8_t *x, uint8_t *g, int n)`` (§4.1):
a pure function of the state vector with no hidden state. It fetches the
instruction referenced by EIP, simulates it, writes the resulting changes
back into ``x``, and — when a dependency vector ``g`` is supplied —
updates the byte-granularity read/write FSM described in
:mod:`repro.machine.depvec` on every access it performs.

For speed the hot path works on raw ``bytearray`` buffers and dispatches
through a handler table indexed by opcode. :class:`TransitionContext`
carries the per-program constants (layout, write-protected code range, and
a decode cache that is sound because the code region is immutable).
"""

from repro.errors import (
    CodeWriteError,
    IllegalInstruction,
    MachineError,
    SegmentationFault,
)
from repro.isa.encoding import INSTRUCTION_SIZE, decode
from repro.isa.opcodes import Op
from repro.isa.registers import Reg
from repro.machine.blockcache import BlockCache, fast_path_env_enabled
from repro.machine.layout import (
    EFLAGS_OFF,
    EIP_OFF,
    MEM_OFF,
    RESERVED_LOW,
    STATUS_OFF,
    STATUS_HALTED,
    read_word,
    write_word,
)

_M = 0xFFFFFFFF
_SIGN = 0x80000000

_CF = 1
_ZF = 2
_SF = 4
_OF = 8

_ESP = int(Reg.ESP)
_EAX = int(Reg.EAX)
_EDX = int(Reg.EDX)


def _s32(v):
    """Interpret an unsigned 32-bit value as signed."""
    return v - 0x100000000 if v & _SIGN else v


# -- raw accessors with inline dependency FSM --------------------------------

def _read_reg(buf, g, r):
    off = r * 4
    if g is not None:
        for i in range(off, off + 4):
            if g[i] == 0:
                g[i] = 1
    return (buf[off] | (buf[off + 1] << 8) | (buf[off + 2] << 16)
            | (buf[off + 3] << 24))


def _write_reg(buf, g, r, v):
    off = r * 4
    v &= _M
    buf[off] = v & 0xFF
    buf[off + 1] = (v >> 8) & 0xFF
    buf[off + 2] = (v >> 16) & 0xFF
    buf[off + 3] = (v >> 24) & 0xFF
    if g is not None:
        for i in range(off, off + 4):
            s = g[i]
            if s == 0:
                g[i] = 2
            elif s == 1:
                g[i] = 3


def _read_flags(buf, g):
    if g is not None and g[EFLAGS_OFF] == 0:
        g[EFLAGS_OFF] = 1
    return buf[EFLAGS_OFF]


def _write_flags(buf, g, v):
    buf[EFLAGS_OFF] = v & 0xFF
    if g is not None:
        s = g[EFLAGS_OFF]
        if s == 0:
            g[EFLAGS_OFF] = 2
        elif s == 1:
            g[EFLAGS_OFF] = 3


def _arith_flags(res, cf, of):
    f = 0
    if cf:
        f |= _CF
    if res == 0:
        f |= _ZF
    if res & _SIGN:
        f |= _SF
    if of:
        f |= _OF
    return f


class TransitionContext:
    """Per-program execution context for the transition function.

    Parameters
    ----------
    layout:
        The :class:`repro.machine.layout.StateLayout` of the state vectors
        this context will execute.
    code_range:
        Optional ``(lo, hi)`` program-address pair delimiting the immutable
        code region. When given, stores into it raise
        :class:`repro.errors.CodeWriteError` and decoded instructions are
        memoized by address.
    track_code_reads:
        When True (the faithful mode), instruction fetches mark the fetched
        code bytes as read in the dependency vector. The default False
        keeps cache entries sparse; it is sound because the code region is
        write-protected and therefore trivially matches on every lookup.
    fast_path:
        Tri-state switch for the basic-block translation cache
        (:mod:`repro.machine.blockcache`). ``None`` (the default) follows
        the ``REPRO_FAST_PATH`` environment variable (on unless set to a
        falsy value); ``False`` forces the reference interpreter;
        ``True`` requests the fast path. Either way the fast path only
        activates when a ``code_range`` is given — block translation is
        sound only over write-protected code.
    """

    def __init__(self, layout, code_range=None, track_code_reads=False,
                 fast_path=None):
        self.layout = layout
        if code_range is not None:
            lo, hi = code_range
            if lo < 0 or hi > layout.mem_size or lo >= hi:
                raise MachineError("invalid code range (%r, %r)" % (lo, hi))
            self.code_lo, self.code_hi = lo, hi
        else:
            self.code_lo = self.code_hi = None
        self.track_code_reads = bool(track_code_reads)
        self._decode_cache = {}
        self._handlers = _build_handlers()
        if fast_path is None:
            fast_path = fast_path_env_enabled()
        if fast_path and self.code_lo is not None:
            self.fast_path = BlockCache(self)
        else:
            self.fast_path = None

    # -- memory helpers ------------------------------------------------------

    def _check(self, addr, width):
        if addr < RESERVED_LOW or addr + width > self.layout.mem_size:
            raise SegmentationFault(
                "access of %d bytes at 0x%x outside [0x%x, 0x%x)"
                % (width, addr, RESERVED_LOW, self.layout.mem_size))

    def _check_store(self, addr, width):
        self._check(addr, width)
        if self.code_lo is not None and self.code_lo <= addr < self.code_hi:
            raise CodeWriteError(
                "store of %d bytes at 0x%x hits write-protected code "
                "[0x%x, 0x%x)" % (width, addr, self.code_lo, self.code_hi))

    def _mem_read(self, buf, g, addr, width):
        self._check(addr, width)
        off = MEM_OFF + addr
        if g is not None:
            for i in range(off, off + width):
                if g[i] == 0:
                    g[i] = 1
        v = 0
        for k in range(width):
            v |= buf[off + k] << (8 * k)
        return v

    def _mem_write(self, buf, g, addr, value, width):
        self._check_store(addr, width)
        off = MEM_OFF + addr
        for k in range(width):
            buf[off + k] = (value >> (8 * k)) & 0xFF
        if g is not None:
            for i in range(off, off + width):
                s = g[i]
                if s == 0:
                    g[i] = 2
                elif s == 1:
                    g[i] = 3

    def _ea(self, buf, g, mode, rb, imm):
        """Compute an effective address from the memory-operand fields."""
        ea = imm
        if mode:  # any base-relative mode
            base = (rb >> 4) & 0x0F
            ea += _read_reg(buf, g, base)
            if mode >= 2:
                index = rb & 0x0F
                scale = 1 if mode == 2 else (2 if mode == 3 else 4)
                ea += _read_reg(buf, g, index) * scale
        return ea & _M

    def _push(self, buf, g, value):
        sp = (_read_reg(buf, g, _ESP) - 4) & _M
        _write_reg(buf, g, _ESP, sp)
        self._mem_write(buf, g, sp, value, 4)

    def _pop(self, buf, g):
        sp = _read_reg(buf, g, _ESP)
        value = self._mem_read(buf, g, sp, 4)
        _write_reg(buf, g, _ESP, (sp + 4) & _M)
        return value

    # -- fetch/decode ---------------------------------------------------------

    def _fetch(self, buf, g, eip):
        cached = self._decode_cache.get(eip)
        in_code = (self.code_lo is not None
                   and self.code_lo <= eip < self.code_hi)
        if cached is None or not in_code:
            self._check(eip, INSTRUCTION_SIZE)
            off = MEM_OFF + eip
            try:
                cached = decode(buf, off)
            except Exception as exc:
                raise IllegalInstruction(
                    "cannot decode instruction at eip=0x%x: %s" % (eip, exc))
            if in_code:
                self._decode_cache[eip] = cached
        if g is not None and self.track_code_reads:
            off = MEM_OFF + eip
            for i in range(off, off + INSTRUCTION_SIZE):
                if g[i] == 0:
                    g[i] = 1
        return cached

    # -- the transition itself -----------------------------------------------

    def step(self, buf, g=None):
        """Execute one instruction in-place on raw buffer ``buf``.

        ``buf`` is the state vector as a ``bytearray``; ``g`` the optional
        dependency vector of the same length. Returns the opcode executed
        (useful for tracing); raises a :class:`repro.errors.MachineError`
        subclass on faults.
        """
        # Read EIP (a dependency of every instruction).
        if g is not None:
            for i in range(EIP_OFF, EIP_OFF + 4):
                if g[i] == 0:
                    g[i] = 1
        eip = read_word(buf, EIP_OFF)

        op, mode, ra, rb, imm = self._fetch(buf, g, eip)
        handler = self._handlers.get(int(op))
        if handler is None:
            raise IllegalInstruction(
                "no handler for opcode %s at eip=0x%x" % (op, eip))
        next_eip = handler(self, buf, g, mode, ra, rb, imm, eip)

        # Write EIP back (every instruction writes it).
        write_word(buf, EIP_OFF, next_eip)
        if g is not None:
            for i in range(EIP_OFF, EIP_OFF + 4):
                s = g[i]
                if s == 0:
                    g[i] = 2
                elif s == 1:
                    g[i] = 3
        return op


# -- handlers ------------------------------------------------------------------
# Each handler returns the next EIP value. ``self`` is the context.

def _h_nop(self, buf, g, mode, ra, rb, imm, eip):
    return eip + 8


def _h_hlt(self, buf, g, mode, ra, rb, imm, eip):
    buf[STATUS_OFF] |= STATUS_HALTED
    if g is not None:
        s = g[STATUS_OFF]
        if s == 0:
            g[STATUS_OFF] = 2
        elif s == 1:
            g[STATUS_OFF] = 3
    return eip  # halt is a fixed point of the transition function


def _h_mov_rr(self, buf, g, mode, ra, rb, imm, eip):
    _write_reg(buf, g, ra, _read_reg(buf, g, rb))
    return eip + 8


def _h_mov_ri(self, buf, g, mode, ra, rb, imm, eip):
    _write_reg(buf, g, ra, imm & _M)
    return eip + 8


def _h_load(self, buf, g, mode, ra, rb, imm, eip):
    ea = self._ea(buf, g, mode, rb, imm)
    _write_reg(buf, g, ra, self._mem_read(buf, g, ea, 4))
    return eip + 8


def _h_store(self, buf, g, mode, ra, rb, imm, eip):
    ea = self._ea(buf, g, mode, rb, imm)
    self._mem_write(buf, g, ea, _read_reg(buf, g, ra), 4)
    return eip + 8


def _h_load8u(self, buf, g, mode, ra, rb, imm, eip):
    ea = self._ea(buf, g, mode, rb, imm)
    _write_reg(buf, g, ra, self._mem_read(buf, g, ea, 1))
    return eip + 8


def _h_load8s(self, buf, g, mode, ra, rb, imm, eip):
    ea = self._ea(buf, g, mode, rb, imm)
    v = self._mem_read(buf, g, ea, 1)
    if v & 0x80:
        v |= 0xFFFFFF00
    _write_reg(buf, g, ra, v)
    return eip + 8


def _h_store8(self, buf, g, mode, ra, rb, imm, eip):
    ea = self._ea(buf, g, mode, rb, imm)
    self._mem_write(buf, g, ea, _read_reg(buf, g, ra) & 0xFF, 1)
    return eip + 8


def _h_lea(self, buf, g, mode, ra, rb, imm, eip):
    _write_reg(buf, g, ra, self._ea(buf, g, mode, rb, imm))
    return eip + 8


def _h_push_r(self, buf, g, mode, ra, rb, imm, eip):
    self._push(buf, g, _read_reg(buf, g, ra))
    return eip + 8


def _h_push_i(self, buf, g, mode, ra, rb, imm, eip):
    self._push(buf, g, imm & _M)
    return eip + 8


def _h_pop_r(self, buf, g, mode, ra, rb, imm, eip):
    _write_reg(buf, g, ra, self._pop(buf, g))
    return eip + 8


def _h_xchg(self, buf, g, mode, ra, rb, imm, eip):
    a = _read_reg(buf, g, ra)
    b = _read_reg(buf, g, rb)
    _write_reg(buf, g, ra, b)
    _write_reg(buf, g, rb, a)
    return eip + 8


def _add_core(self, buf, g, ra, a, b, eip):
    t = a + b
    res = t & _M
    cf = t > _M
    of = (~(a ^ b)) & (a ^ res) & _SIGN
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, cf, of))
    return eip + 8


def _h_add_rr(self, buf, g, mode, ra, rb, imm, eip):
    return _add_core(self, buf, g, ra, _read_reg(buf, g, ra),
                     _read_reg(buf, g, rb), eip)


def _h_add_ri(self, buf, g, mode, ra, rb, imm, eip):
    return _add_core(self, buf, g, ra, _read_reg(buf, g, ra), imm & _M, eip)


def _sub_flags(a, b):
    res = (a - b) & _M
    cf = b > a
    of = (a ^ b) & (a ^ res) & _SIGN
    return res, _arith_flags(res, cf, of)


def _h_sub_rr(self, buf, g, mode, ra, rb, imm, eip):
    res, f = _sub_flags(_read_reg(buf, g, ra), _read_reg(buf, g, rb))
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, f)
    return eip + 8


def _h_sub_ri(self, buf, g, mode, ra, rb, imm, eip):
    res, f = _sub_flags(_read_reg(buf, g, ra), imm & _M)
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, f)
    return eip + 8


def _h_adc_rr(self, buf, g, mode, ra, rb, imm, eip):
    cf_in = _read_flags(buf, g) & _CF
    a = _read_reg(buf, g, ra)
    b = _read_reg(buf, g, rb)
    t = a + b + cf_in
    res = t & _M
    ssum = _s32(a) + _s32(b) + cf_in
    of = not (-(1 << 31) <= ssum < (1 << 31))
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, t > _M, of))
    return eip + 8


def _h_sbb_rr(self, buf, g, mode, ra, rb, imm, eip):
    cf_in = _read_flags(buf, g) & _CF
    a = _read_reg(buf, g, ra)
    b = _read_reg(buf, g, rb)
    res = (a - b - cf_in) & _M
    sdiff = _s32(a) - _s32(b) - cf_in
    of = not (-(1 << 31) <= sdiff < (1 << 31))
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, a < b + cf_in, of))
    return eip + 8


def _imul_core(self, buf, g, ra, a, b, eip):
    full = _s32(a) * _s32(b)
    res = full & _M
    overflow = not (-(1 << 31) <= full < (1 << 31))
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, overflow, overflow))
    return eip + 8


def _h_imul_rr(self, buf, g, mode, ra, rb, imm, eip):
    return _imul_core(self, buf, g, ra, _read_reg(buf, g, ra),
                      _read_reg(buf, g, rb), eip)


def _h_imul_ri(self, buf, g, mode, ra, rb, imm, eip):
    return _imul_core(self, buf, g, ra, _read_reg(buf, g, ra), imm & _M, eip)


def _h_idiv_r(self, buf, g, mode, ra, rb, imm, eip):
    divisor = _s32(_read_reg(buf, g, ra))
    dividend = _s32(_read_reg(buf, g, _EAX))
    if divisor == 0:
        raise MachineError("signed division by zero at eip=0x%x" % eip)
    q = abs(dividend) // abs(divisor)
    if (dividend < 0) != (divisor < 0):
        q = -q
    rem = dividend - q * divisor
    if not (-(1 << 31) <= q < (1 << 31)):
        raise MachineError("IDIV quotient overflow at eip=0x%x" % eip)
    _write_reg(buf, g, _EAX, q & _M)
    _write_reg(buf, g, _EDX, rem & _M)
    return eip + 8


def _h_udiv_r(self, buf, g, mode, ra, rb, imm, eip):
    divisor = _read_reg(buf, g, ra)
    dividend = _read_reg(buf, g, _EAX)
    if divisor == 0:
        raise MachineError("unsigned division by zero at eip=0x%x" % eip)
    _write_reg(buf, g, _EAX, dividend // divisor)
    _write_reg(buf, g, _EDX, dividend % divisor)
    return eip + 8


def _h_inc_r(self, buf, g, mode, ra, rb, imm, eip):
    a = _read_reg(buf, g, ra)
    res = (a + 1) & _M
    cf = _read_flags(buf, g) & _CF  # INC preserves CF, as on x86
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, cf, a == 0x7FFFFFFF))
    return eip + 8


def _h_dec_r(self, buf, g, mode, ra, rb, imm, eip):
    a = _read_reg(buf, g, ra)
    res = (a - 1) & _M
    cf = _read_flags(buf, g) & _CF
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, cf, a == _SIGN))
    return eip + 8


def _h_neg_r(self, buf, g, mode, ra, rb, imm, eip):
    a = _read_reg(buf, g, ra)
    res = (-a) & _M
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, a != 0, a == _SIGN))
    return eip + 8


def _h_not_r(self, buf, g, mode, ra, rb, imm, eip):
    _write_reg(buf, g, ra, (~_read_reg(buf, g, ra)) & _M)
    return eip + 8


def _logic_core(self, buf, g, ra, res, eip, write_reg=True):
    if write_reg:
        _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, False, False))
    return eip + 8


def _h_and_rr(self, buf, g, mode, ra, rb, imm, eip):
    return _logic_core(self, buf, g, ra,
                       _read_reg(buf, g, ra) & _read_reg(buf, g, rb), eip)


def _h_and_ri(self, buf, g, mode, ra, rb, imm, eip):
    return _logic_core(self, buf, g, ra,
                       _read_reg(buf, g, ra) & (imm & _M), eip)


def _h_or_rr(self, buf, g, mode, ra, rb, imm, eip):
    return _logic_core(self, buf, g, ra,
                       _read_reg(buf, g, ra) | _read_reg(buf, g, rb), eip)


def _h_or_ri(self, buf, g, mode, ra, rb, imm, eip):
    return _logic_core(self, buf, g, ra,
                       _read_reg(buf, g, ra) | (imm & _M), eip)


def _h_xor_rr(self, buf, g, mode, ra, rb, imm, eip):
    return _logic_core(self, buf, g, ra,
                       _read_reg(buf, g, ra) ^ _read_reg(buf, g, rb), eip)


def _h_xor_ri(self, buf, g, mode, ra, rb, imm, eip):
    return _logic_core(self, buf, g, ra,
                       _read_reg(buf, g, ra) ^ (imm & _M), eip)


def _shift_core(self, buf, g, ra, a, count, kind, eip):
    count &= 31
    if count == 0:
        _write_reg(buf, g, ra, a)  # value unchanged, but still a write
        return eip + 8
    if kind == "shl":
        res = (a << count) & _M
        cf = (a >> (32 - count)) & 1
    elif kind == "shr":
        res = a >> count
        cf = (a >> (count - 1)) & 1
    else:  # sar
        sa = _s32(a)
        res = (sa >> count) & _M
        cf = (sa >> (count - 1)) & 1
    _write_reg(buf, g, ra, res)
    _write_flags(buf, g, _arith_flags(res, cf, False))
    return eip + 8


def _h_shl_ri(self, buf, g, mode, ra, rb, imm, eip):
    return _shift_core(self, buf, g, ra, _read_reg(buf, g, ra), imm, "shl", eip)


def _h_shl_rr(self, buf, g, mode, ra, rb, imm, eip):
    return _shift_core(self, buf, g, ra, _read_reg(buf, g, ra),
                       _read_reg(buf, g, rb), "shl", eip)


def _h_shr_ri(self, buf, g, mode, ra, rb, imm, eip):
    return _shift_core(self, buf, g, ra, _read_reg(buf, g, ra), imm, "shr", eip)


def _h_shr_rr(self, buf, g, mode, ra, rb, imm, eip):
    return _shift_core(self, buf, g, ra, _read_reg(buf, g, ra),
                       _read_reg(buf, g, rb), "shr", eip)


def _h_sar_ri(self, buf, g, mode, ra, rb, imm, eip):
    return _shift_core(self, buf, g, ra, _read_reg(buf, g, ra), imm, "sar", eip)


def _h_sar_rr(self, buf, g, mode, ra, rb, imm, eip):
    return _shift_core(self, buf, g, ra, _read_reg(buf, g, ra),
                       _read_reg(buf, g, rb), "sar", eip)


def _h_cmp_rr(self, buf, g, mode, ra, rb, imm, eip):
    __, f = _sub_flags(_read_reg(buf, g, ra), _read_reg(buf, g, rb))
    _write_flags(buf, g, f)
    return eip + 8


def _h_cmp_ri(self, buf, g, mode, ra, rb, imm, eip):
    __, f = _sub_flags(_read_reg(buf, g, ra), imm & _M)
    _write_flags(buf, g, f)
    return eip + 8


def _h_test_rr(self, buf, g, mode, ra, rb, imm, eip):
    res = _read_reg(buf, g, ra) & _read_reg(buf, g, rb)
    _write_flags(buf, g, _arith_flags(res, False, False))
    return eip + 8


def _h_test_ri(self, buf, g, mode, ra, rb, imm, eip):
    res = _read_reg(buf, g, ra) & (imm & _M)
    _write_flags(buf, g, _arith_flags(res, False, False))
    return eip + 8


def _h_jmp(self, buf, g, mode, ra, rb, imm, eip):
    return imm & _M


def _h_jmp_r(self, buf, g, mode, ra, rb, imm, eip):
    return _read_reg(buf, g, ra)


def _make_jcc(cond):
    def handler(self, buf, g, mode, ra, rb, imm, eip):
        return (imm & _M) if cond(_read_flags(buf, g)) else eip + 8
    return handler


_COND = {
    Op.JZ: lambda f: f & _ZF,
    Op.JNZ: lambda f: not f & _ZF,
    Op.JL: lambda f: bool(f & _SF) != bool(f & _OF),
    Op.JLE: lambda f: (f & _ZF) or bool(f & _SF) != bool(f & _OF),
    Op.JG: lambda f: not (f & _ZF) and bool(f & _SF) == bool(f & _OF),
    Op.JGE: lambda f: bool(f & _SF) == bool(f & _OF),
    Op.JB: lambda f: f & _CF,
    Op.JBE: lambda f: f & (_CF | _ZF),
    Op.JA: lambda f: not f & (_CF | _ZF),
    Op.JAE: lambda f: not f & _CF,
    Op.JS: lambda f: f & _SF,
    Op.JNS: lambda f: not f & _SF,
    Op.JO: lambda f: f & _OF,
    Op.JNO: lambda f: not f & _OF,
}


def _h_call(self, buf, g, mode, ra, rb, imm, eip):
    self._push(buf, g, eip + 8)
    return imm & _M


def _h_call_r(self, buf, g, mode, ra, rb, imm, eip):
    target = _read_reg(buf, g, ra)
    self._push(buf, g, eip + 8)
    return target


def _h_ret(self, buf, g, mode, ra, rb, imm, eip):
    return self._pop(buf, g)


def _make_setcc(cond):
    def handler(self, buf, g, mode, ra, rb, imm, eip):
        _write_reg(buf, g, ra, 1 if cond(_read_flags(buf, g)) else 0)
        return eip + 8
    return handler


_SET_COND = {
    Op.SETZ: _COND[Op.JZ],
    Op.SETNZ: _COND[Op.JNZ],
    Op.SETL: _COND[Op.JL],
    Op.SETLE: _COND[Op.JLE],
    Op.SETG: _COND[Op.JG],
    Op.SETGE: _COND[Op.JGE],
    Op.SETB: _COND[Op.JB],
    Op.SETA: _COND[Op.JA],
}


def _build_handlers():
    handlers = {
        Op.NOP: _h_nop,
        Op.HLT: _h_hlt,
        Op.MOV_RR: _h_mov_rr,
        Op.MOV_RI: _h_mov_ri,
        Op.LOAD: _h_load,
        Op.STORE: _h_store,
        Op.LOAD8U: _h_load8u,
        Op.LOAD8S: _h_load8s,
        Op.STORE8: _h_store8,
        Op.LEA: _h_lea,
        Op.PUSH_R: _h_push_r,
        Op.PUSH_I: _h_push_i,
        Op.POP_R: _h_pop_r,
        Op.XCHG: _h_xchg,
        Op.ADD_RR: _h_add_rr,
        Op.ADD_RI: _h_add_ri,
        Op.SUB_RR: _h_sub_rr,
        Op.SUB_RI: _h_sub_ri,
        Op.ADC_RR: _h_adc_rr,
        Op.SBB_RR: _h_sbb_rr,
        Op.IMUL_RR: _h_imul_rr,
        Op.IMUL_RI: _h_imul_ri,
        Op.IDIV_R: _h_idiv_r,
        Op.UDIV_R: _h_udiv_r,
        Op.INC_R: _h_inc_r,
        Op.DEC_R: _h_dec_r,
        Op.NEG_R: _h_neg_r,
        Op.NOT_R: _h_not_r,
        Op.AND_RR: _h_and_rr,
        Op.AND_RI: _h_and_ri,
        Op.OR_RR: _h_or_rr,
        Op.OR_RI: _h_or_ri,
        Op.XOR_RR: _h_xor_rr,
        Op.XOR_RI: _h_xor_ri,
        Op.SHL_RI: _h_shl_ri,
        Op.SHL_RR: _h_shl_rr,
        Op.SHR_RI: _h_shr_ri,
        Op.SHR_RR: _h_shr_rr,
        Op.SAR_RI: _h_sar_ri,
        Op.SAR_RR: _h_sar_rr,
        Op.CMP_RR: _h_cmp_rr,
        Op.CMP_RI: _h_cmp_ri,
        Op.TEST_RR: _h_test_rr,
        Op.TEST_RI: _h_test_ri,
        Op.JMP: _h_jmp,
        Op.JMP_R: _h_jmp_r,
        Op.CALL: _h_call,
        Op.CALL_R: _h_call_r,
        Op.RET: _h_ret,
    }
    for op, cond in _COND.items():
        handlers[op] = _make_jcc(cond)
    for op, cond in _SET_COND.items():
        handlers[op] = _make_setcc(cond)
    return {int(op): fn for op, fn in handlers.items()}


def transition(state, dep=None, context=None):
    """Execute one instruction on a :class:`StateVector`.

    This is the convenience form of the paper's ``transition(x, g, n)``;
    performance-sensitive callers hold a :class:`TransitionContext` and
    call :meth:`TransitionContext.step` on raw buffers instead.
    """
    if context is None:
        context = TransitionContext(state.layout)
    buf = dep.buf if dep is not None else None
    return context.step(state.buf, buf)
