"""The trajectory-based functional simulator (TBFS) for SVM32.

This package is the substrate the paper calls TBFS: a functional simulator
whose entire machine state — registers, instruction pointer, flags, and
memory — lives in one flat byte vector, and whose ``transition`` function
executes exactly one instruction while accumulating byte-granularity
dependency information. Every higher layer (recognizer, predictors, cache,
engine) treats execution purely as a walk through this state space.
"""

from repro.machine.layout import StateLayout
from repro.machine.state import StateVector
from repro.machine.depvec import (
    DEP_NULL,
    DEP_READ,
    DEP_WRITTEN,
    DEP_WAR,
    DepVector,
)
from repro.machine.blockcache import BlockCache, fast_path_env_enabled
from repro.machine.transition import TransitionContext, transition
from repro.machine.executor import Machine, RunResult
from repro.machine.diff import encode_delta, apply_delta, delta_size_bits

__all__ = [
    "BlockCache",
    "fast_path_env_enabled",
    "StateLayout",
    "StateVector",
    "DEP_NULL",
    "DEP_READ",
    "DEP_WRITTEN",
    "DEP_WAR",
    "DepVector",
    "TransitionContext",
    "transition",
    "Machine",
    "RunResult",
    "encode_delta",
    "apply_delta",
    "delta_size_bits",
]
