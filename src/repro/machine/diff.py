"""Binary delta codec for state vectors.

The paper compresses cache queries and responses with the Myers O(ND)
binary differencing algorithm; only the *size* of the delta enters any
measurement, so this module implements a byte-run delta with the same
interface: a compact encoding of the positions and contents at which two
equal-length buffers differ. Runs separated by gaps of at most
:data:`MERGE_GAP` bytes are coalesced, which approximates the minimal
delta for the sparse, clustered changes state vectors exhibit.

Delta format (all integers LEB128 varints)::

    [count] then per run: [offset gap from end of previous run] [length] [bytes]
"""

from repro.errors import MachineError

#: Adjacent differing runs closer than this many bytes are merged.
MERGE_GAP = 4


def _write_varint(out, value):
    if value < 0:
        raise MachineError("varint cannot encode negative value %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data, pos):
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise MachineError("truncated varint in delta")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def diff_runs(old, new):
    """Return the differing runs between two equal-length buffers.

    Each run is ``(offset, bytes)`` taken from ``new``. Runs are maximal
    after merging gaps of up to :data:`MERGE_GAP` unchanged bytes.
    """
    if len(old) != len(new):
        raise MachineError(
            "cannot diff buffers of different lengths (%d vs %d)"
            % (len(old), len(new)))
    runs = []
    i = 0
    n = len(old)
    while i < n:
        if old[i] == new[i]:
            i += 1
            continue
        start = i
        last_diff = i
        i += 1
        while i < n and i - last_diff <= MERGE_GAP:
            if old[i] != new[i]:
                last_diff = i
            i += 1
        end = last_diff + 1
        runs.append((start, bytes(new[start:end])))
        i = end
    return runs


def encode_delta(old, new):
    """Encode the byte-level difference ``old -> new`` as a delta blob."""
    runs = diff_runs(old, new)
    out = bytearray()
    _write_varint(out, len(runs))
    prev_end = 0
    for offset, data in runs:
        _write_varint(out, offset - prev_end)
        _write_varint(out, len(data))
        out.extend(data)
        prev_end = offset + len(data)
    return bytes(out)


def apply_delta(old, delta):
    """Reconstruct ``new`` from ``old`` and a delta blob."""
    out = bytearray(old)
    count, pos = _read_varint(delta, 0)
    cursor = 0
    for __ in range(count):
        gap, pos = _read_varint(delta, pos)
        length, pos = _read_varint(delta, pos)
        offset = cursor + gap
        if offset + length > len(out):
            raise MachineError("delta run exceeds buffer length")
        out[offset:offset + length] = delta[pos:pos + length]
        pos += length
        cursor = offset + length
    if pos != len(delta):
        raise MachineError("trailing bytes in delta blob")
    return out


def delta_size_bits(old, new):
    """Size in bits of the encoded delta (the paper's query-size metric)."""
    return len(encode_delta(old, new)) * 8
