"""Run loops over the transition function.

:class:`Machine` owns a state vector plus a transition context and
provides the run primitives every higher layer is built from: run for a
bounded number of instructions, run until a set of instruction-pointer
breakpoints (how the recognizer samples RIP states), or run to the halt
fixed point.
"""

from repro.errors import MachineError
from repro.machine.layout import (
    EIP_OFF,
    STATUS_OFF,
    STATUS_HALTED,
    STOP_BREAKPOINT,
    STOP_HALTED,
    STOP_LIMIT,
    read_word,
)
from repro.machine.state import StateVector
from repro.machine.transition import TransitionContext


class RunResult:
    """Outcome of one :meth:`Machine.run` call."""

    __slots__ = ("instructions", "reason", "eip")

    def __init__(self, instructions, reason, eip):
        self.instructions = instructions
        self.reason = reason
        self.eip = eip

    def __repr__(self):
        return "RunResult(instructions=%d, reason=%r, eip=0x%x)" % (
            self.instructions, self.reason, self.eip)


class Machine:
    """A state vector bound to a transition context, with run loops."""

    def __init__(self, state, context=None):
        if not isinstance(state, StateVector):
            raise MachineError("state must be a StateVector")
        self.state = state
        self.context = context or TransitionContext(state.layout)
        self.instruction_count = 0

    @property
    def halted(self):
        return bool(self.state.buf[STATUS_OFF] & STATUS_HALTED)

    @property
    def eip(self):
        return self.state.eip

    def step(self, dep=None):
        """Execute exactly one instruction."""
        g = dep.buf if dep is not None else None
        op = self.context.step(self.state.buf, g)
        self.instruction_count += 1
        return op

    def run(self, max_instructions=None, break_ips=None, dep=None):
        """Run until halt, an IP breakpoint, or an instruction budget.

        ``break_ips`` is an optional set of instruction-pointer values; the
        run stops *after* the machine arrives at one of them (the
        breakpoint state itself is the current state on return). Returns a
        :class:`RunResult`.
        """
        buf = self.state.buf
        g = dep.buf if dep is not None else None
        step = self.context.step
        remaining = max_instructions
        executed = 0

        if buf[STATUS_OFF] & STATUS_HALTED:
            return RunResult(0, STOP_HALTED, self.state.eip)

        fast_path = self.context.fast_path
        if fast_path is not None:
            executed, reason = fast_path.run(buf, g, max_instructions,
                                             break_ips)
            self.instruction_count += executed
            return RunResult(executed, reason, self.state.eip)

        reason = STOP_LIMIT
        while True:
            if remaining is not None:
                if remaining <= 0:
                    reason = STOP_LIMIT
                    break
                remaining -= 1
            step(buf, g)
            executed += 1
            if buf[STATUS_OFF] & STATUS_HALTED:
                reason = STOP_HALTED
                break
            if break_ips is not None:
                eip = read_word(buf, EIP_OFF)
                if eip in break_ips:
                    reason = STOP_BREAKPOINT
                    break
        self.instruction_count += executed
        return RunResult(executed, reason, self.state.eip)

    def run_to_halt(self, max_instructions=10_000_000, dep=None):
        """Run to the halt fixed point; raise if the budget is exhausted."""
        result = self.run(max_instructions=max_instructions, dep=dep)
        if result.reason != STOP_HALTED:
            raise MachineError(
                "program did not halt within %d instructions (eip=0x%x)"
                % (max_instructions, result.eip))
        return result

    def ip_trace(self, max_instructions):
        """Execute up to ``max_instructions``, returning the EIP sequence.

        The returned list contains the EIP of each instruction *before* it
        executed — the sequence of points at which the trajectory crossed
        instruction-boundary hyperplanes.
        """
        buf = self.state.buf
        fast_path = self.context.fast_path
        if fast_path is not None:
            try:
                trace, executed = fast_path.ip_trace(buf, max_instructions)
            except MachineError as exc:
                self.instruction_count += getattr(exc, "_fp_executed", 0)
                raise
            self.instruction_count += executed
            return trace

        trace = []
        step = self.context.step
        for __ in range(max_instructions):
            if buf[STATUS_OFF] & STATUS_HALTED:
                break
            trace.append(read_word(buf, EIP_OFF))
            step(buf, None)
            self.instruction_count += 1
        return trace
