"""Typed accessors over the flat state vector.

:class:`StateVector` is a thin convenience wrapper around a ``bytearray``.
The hot path (the transition function) bypasses these accessors and works
on the raw buffer directly; everything else — loaders, tests, predictors,
cache inspection — goes through this class.
"""

from repro.errors import MachineError
from repro.isa.registers import Reg
from repro.machine.layout import (
    StateLayout,
    REG_OFF,
    EIP_OFF,
    EFLAGS_OFF,
    STATUS_OFF,
    MEM_OFF,
    STATUS_HALTED,
)

_U32_MASK = 0xFFFFFFFF


class StateVector:
    """A complete machine state: registers, EIP, EFLAGS, STATUS, memory."""

    __slots__ = ("layout", "buf")

    def __init__(self, layout, buf=None):
        if not isinstance(layout, StateLayout):
            raise MachineError("layout must be a StateLayout")
        if buf is None:
            buf = bytearray(layout.size)
        elif len(buf) != layout.size:
            raise MachineError(
                "buffer length %d does not match layout size %d"
                % (len(buf), layout.size))
        self.layout = layout
        self.buf = buf

    # -- construction -----------------------------------------------------

    def clone(self):
        """Deep copy (a distinct point in state space)."""
        return StateVector(self.layout, bytearray(self.buf))

    # -- registers ----------------------------------------------------------

    def get_reg(self, reg):
        off = REG_OFF + 4 * int(reg)
        return int.from_bytes(self.buf[off:off + 4], "little")

    def set_reg(self, reg, value):
        off = REG_OFF + 4 * int(reg)
        self.buf[off:off + 4] = (value & _U32_MASK).to_bytes(4, "little")

    def get_reg_signed(self, reg):
        value = self.get_reg(reg)
        return value - (1 << 32) if value >= (1 << 31) else value

    @property
    def eip(self):
        return int.from_bytes(self.buf[EIP_OFF:EIP_OFF + 4], "little")

    @eip.setter
    def eip(self, value):
        self.buf[EIP_OFF:EIP_OFF + 4] = (value & _U32_MASK).to_bytes(4, "little")

    @property
    def eflags(self):
        return int.from_bytes(self.buf[EFLAGS_OFF:EFLAGS_OFF + 4], "little")

    @eflags.setter
    def eflags(self, value):
        self.buf[EFLAGS_OFF:EFLAGS_OFF + 4] = (value & _U32_MASK).to_bytes(
            4, "little")

    def get_flag(self, flag):
        return bool(self.eflags & int(flag))

    def set_flag(self, flag, on):
        flags = self.eflags
        self.eflags = (flags | int(flag)) if on else (flags & ~int(flag))

    @property
    def status(self):
        return int.from_bytes(self.buf[STATUS_OFF:STATUS_OFF + 4], "little")

    @status.setter
    def status(self, value):
        self.buf[STATUS_OFF:STATUS_OFF + 4] = (value & _U32_MASK).to_bytes(
            4, "little")

    @property
    def halted(self):
        return bool(self.status & STATUS_HALTED)

    # -- memory -------------------------------------------------------------

    def read_u32(self, addr):
        self.layout.check_access(addr, 4)
        off = MEM_OFF + addr
        return int.from_bytes(self.buf[off:off + 4], "little")

    def read_i32(self, addr):
        value = self.read_u32(addr)
        return value - (1 << 32) if value >= (1 << 31) else value

    def write_u32(self, addr, value):
        self.layout.check_access(addr, 4)
        off = MEM_OFF + addr
        self.buf[off:off + 4] = (value & _U32_MASK).to_bytes(4, "little")

    def read_u8(self, addr):
        self.layout.check_access(addr, 1)
        return self.buf[MEM_OFF + addr]

    def write_u8(self, addr, value):
        self.layout.check_access(addr, 1)
        self.buf[MEM_OFF + addr] = value & 0xFF

    def read_bytes(self, addr, length):
        self.layout.check_access(addr, length)
        off = MEM_OFF + addr
        return bytes(self.buf[off:off + length])

    def write_bytes(self, addr, data):
        self.layout.check_access(addr, len(data))
        off = MEM_OFF + addr
        self.buf[off:off + len(data)] = data

    def read_words(self, addr, count):
        """Read ``count`` consecutive signed 32-bit words."""
        return [self.read_i32(addr + 4 * i) for i in range(count)]

    # -- comparison -----------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, StateVector):
            return NotImplemented
        return self.layout == other.layout and self.buf == other.buf

    def __hash__(self):
        raise TypeError("StateVector is mutable and unhashable")

    def differing_indices(self, other):
        """Vector indices at which two states differ (for excitations)."""
        if self.layout != other.layout:
            raise MachineError("cannot diff states with different layouts")
        a, b = self.buf, other.buf
        return [i for i in range(len(a)) if a[i] != b[i]]

    def __repr__(self):
        regs = " ".join(
            "%s=%#x" % (r.name.lower(), self.get_reg(r)) for r in Reg)
        return "<StateVector eip=%#x flags=%#x %s%s>" % (
            self.eip, self.eflags, regs, " HALTED" if self.halted else "")
