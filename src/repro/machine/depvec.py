"""The byte-granularity dependency vector and its finite state machine.

This is the paper's ``g`` vector (§4.1): one status byte per state-vector
byte, updated on every read and write performed by the transition
function. The four statuses and their transitions:

=====================  =====================================================
``DEP_NULL`` (0)       never touched
``DEP_READ`` (1)       read before any write — a true input dependency
``DEP_WRITTEN`` (2)    written without a prior read — a pure output
``DEP_WAR`` (3)        written after read — both input and output
=====================  =====================================================

FSM: a read promotes NULL -> READ and leaves everything else alone; a
write promotes NULL -> WRITTEN and READ -> WAR and leaves WRITTEN/WAR
alone. Consequently:

* bytes with status READ or WAR are exactly the bytes a speculative
  execution *depends on* (its cache-entry start state), and
* bytes with status WRITTEN or WAR are exactly the bytes it *changes*
  (its cache-entry end state).
"""

DEP_NULL = 0
DEP_READ = 1
DEP_WRITTEN = 2
DEP_WAR = 3


class DepVector:
    """Dependency status for every byte of a state vector."""

    __slots__ = ("buf",)

    def __init__(self, size_or_buf):
        if isinstance(size_or_buf, int):
            self.buf = bytearray(size_or_buf)
        else:
            self.buf = bytearray(size_or_buf)

    def __len__(self):
        return len(self.buf)

    def reset(self):
        """Return every byte to ``DEP_NULL`` (start of a speculation)."""
        for i in range(len(self.buf)):
            self.buf[i] = 0

    # The transition function inlines these updates on its hot path; the
    # methods exist for tests and non-critical callers.

    def mark_read(self, index, length=1):
        buf = self.buf
        for i in range(index, index + length):
            if buf[i] == DEP_NULL:
                buf[i] = DEP_READ

    def mark_write(self, index, length=1):
        buf = self.buf
        for i in range(index, index + length):
            s = buf[i]
            if s == DEP_NULL:
                buf[i] = DEP_WRITTEN
            elif s == DEP_READ:
                buf[i] = DEP_WAR

    # -- summaries -----------------------------------------------------------

    def read_indices(self):
        """Indices the computation depends on (READ or WAR)."""
        return [i for i, s in enumerate(self.buf) if s == DEP_READ or s == DEP_WAR]

    def written_indices(self):
        """Indices the computation modifies (WRITTEN or WAR)."""
        return [i for i, s in enumerate(self.buf)
                if s == DEP_WRITTEN or s == DEP_WAR]

    def touched_indices(self):
        """All non-NULL indices."""
        return [i for i, s in enumerate(self.buf) if s != DEP_NULL]

    def counts(self):
        """Return a dict mapping each status to its byte count."""
        out = {DEP_NULL: 0, DEP_READ: 0, DEP_WRITTEN: 0, DEP_WAR: 0}
        for s in self.buf:
            out[s] += 1
        return out

    def __repr__(self):
        c = self.counts()
        return "<DepVector read=%d written=%d war=%d null=%d>" % (
            c[DEP_READ], c[DEP_WRITTEN], c[DEP_WAR], c[DEP_NULL])
