"""A shared, sharded trajectory-cache store for cross-run reuse.

The paper's premise is that learned predictors and cached trajectories
amortize across *repeated executions* of the same program (§6: "we have
only just begun exploring reusing the trajectory cache across different
invocations"). A one-shot ``repro run`` throws that accumulation away;
``repro serve`` keeps it here.

The store is a dictionary of **shards**: one
:class:`~repro.core.trajectory_cache.TrajectoryCache` per *namespace*,
where a namespace is a program's image hash
(:meth:`~repro.loader.image.Program.image_hash`). Keying by image hash
gives exactly the sharing the correctness argument allows: every client
running byte-identical code shares one warm shard (a cache entry is an
exact fact about that program's transition function, so it is valid for
every run of that program), while programs that differ in a single
instruction byte land in different shards and can never cross-pollinate.

Persistence rides the existing CRC'd :mod:`repro.core.cache_io` format:
each shard serializes to ``<namespace>.tcache`` in the store directory,
written atomically (tmp + rename) on a cadence the daemon controls plus
always at shutdown, and reloaded on daemon start (the warm-start story).
A shard whose blob fails structural validation on load — truncation,
bad magic, framing damage — is **quarantined**: renamed to
``*.tcache.quarantined`` and replaced by an empty shard, never parsed
into live entries. Per-entry CRC failures inside an intact blob are
quarantined entry-by-entry by ``cache_io`` itself and surface in
``entries_quarantined``.

Disk exhaustion degrades durability, never correctness: a flush that
hits ``ENOSPC`` removes its temp file, prunes the oldest shard files to
make room, and retries; if the disk is still full, the store **suspends
write-through** — shards stay dirty in memory, served results remain
exact, and the next flush that succeeds (space came back) clears the
flag and resumes persistence. See :meth:`flush`.

Thread safety: every public method takes the store lock; shards handed
out by :meth:`snapshot` are immutable entry lists, so engine threads
never touch a live shard concurrently.
"""

import errno
import os
import re
import threading

from repro.core import cache_io
from repro.core.trajectory_cache import TrajectoryCache
from repro.errors import EngineError


# ENOSPC classification lives in repro.runtime.resources (the unified
# governor); imported lazily so this core module never drags the whole
# runtime package in at import time.
def _is_enospc(exc):
    from repro.runtime.resources import is_enospc
    return is_enospc(exc)

#: Shard filename suffix (namespace is a hex digest).
SHARD_SUFFIX = ".tcache"
QUARANTINE_SUFFIX = ".quarantined"

_NAMESPACE_RE = re.compile(r"^[0-9a-f]{8,64}$")


def valid_namespace(namespace):
    """Namespaces are lowercase hex digests — nothing else may name a
    shard file (a client-supplied namespace must not traverse paths)."""
    return bool(_NAMESPACE_RE.match(namespace or ""))


def entry_signature(entry):
    """Content identity of a cache entry, for cross-run deduplication.

    Two entries with the same signature fast-forward identically, so
    merging a job's learned cache back into a shared shard keeps only
    one copy no matter how many runs rediscover the same segment.
    """
    return (entry.rip, entry.length, bool(entry.halted),
            entry.start_indices.tobytes(), entry.start_values.tobytes(),
            entry.end_indices.tobytes(), entry.end_values.tobytes())


class CacheSnapshot:
    """An immutable view of one shard, safe to hand to an engine thread
    as ``initial_cache`` (the engine only iterates :meth:`entries`)."""

    __slots__ = ("namespace", "_entries")

    def __init__(self, namespace, entries):
        self.namespace = namespace
        self._entries = tuple(entries)

    def entries(self):
        return iter(self._entries)

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return "CacheSnapshot(%s, entries=%d)" % (self.namespace[:12],
                                                  len(self._entries))


class SharedCacheStore:
    """Namespace-sharded trajectory caches with durable persistence.

    ``directory=None`` keeps the store purely in memory (tests, or a
    daemon run without ``--cache-dir``). ``capacity_bytes`` bounds each
    shard individually, using the cache's own FIFO eviction.
    """

    def __init__(self, directory=None, capacity_bytes=None):
        self.directory = directory
        self.capacity_bytes = capacity_bytes
        self._lock = threading.RLock()
        self._shards = {}  # namespace -> TrajectoryCache
        self._signatures = {}  # namespace -> set of entry signatures
        self._dirty = set()  # namespaces changed since their last flush
        # -- counters (exposed via stats_dict) -------------------------
        self.shards_loaded = 0
        self.entries_loaded = 0
        self.shards_quarantined = 0
        self.entries_quarantined = 0
        self.entries_merged = 0
        self.entries_deduped = 0
        self.flushes = 0
        # -- disk-pressure state (see flush) ---------------------------
        self.enospc_events = 0
        self.shards_pruned = 0
        self.write_through_suspended = False
        self.write_through_resumes = 0
        self._pending_enospc = 0  # injected faults (tests / repro chaos)
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load_all()

    # -- loading -------------------------------------------------------------

    def _shard_path(self, namespace):
        return os.path.join(self.directory, namespace + SHARD_SUFFIX)

    def _load_all(self):
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(SHARD_SUFFIX):
                continue
            namespace = name[:-len(SHARD_SUFFIX)]
            if not valid_namespace(namespace):
                continue
            self._load_shard(namespace)

    def _load_shard(self, namespace):
        path = self._shard_path(namespace)
        try:
            cache = cache_io.load_cache(path,
                                        capacity_bytes=self.capacity_bytes)
        except (EngineError, OSError):
            # Structural damage: nothing in the blob can be trusted.
            # Quarantine the file — keep the evidence, never load it —
            # and let the namespace start over empty.
            try:
                os.replace(path, path + QUARANTINE_SUFFIX)
            except OSError:
                pass
            self.shards_quarantined += 1
            return
        self.entries_quarantined += cache.n_quarantined
        self._shards[namespace] = cache
        self._signatures[namespace] = {
            entry_signature(e) for e in cache.entries()}
        self.shards_loaded += 1
        self.entries_loaded += cache.n_entries

    # -- access --------------------------------------------------------------

    def _shard(self, namespace):
        shard = self._shards.get(namespace)
        if shard is None:
            shard = TrajectoryCache(capacity_bytes=self.capacity_bytes)
            self._shards[namespace] = shard
            self._signatures[namespace] = set()
        return shard

    def namespaces(self):
        with self._lock:
            return sorted(self._shards)

    def entry_count(self, namespace):
        with self._lock:
            shard = self._shards.get(namespace)
            return shard.n_entries if shard is not None else 0

    def snapshot(self, namespace):
        """Immutable entry list for one namespace (possibly empty)."""
        if not valid_namespace(namespace):
            raise EngineError("invalid cache namespace %r" % (namespace,))
        with self._lock:
            shard = self._shards.get(namespace)
            entries = list(shard.entries()) if shard is not None else ()
            return CacheSnapshot(namespace, entries)

    def merge(self, namespace, entries):
        """Fold a finished job's learned entries into the shared shard.

        Deduplicates by content signature — re-running a warm program
        re-derives the same segments, and the shard must not grow by a
        copy per run. Returns the number of genuinely new entries.
        """
        if not valid_namespace(namespace):
            raise EngineError("invalid cache namespace %r" % (namespace,))
        added = 0
        with self._lock:
            shard = self._shard(namespace)
            signatures = self._signatures[namespace]
            for entry in entries:
                signature = entry_signature(entry)
                if signature in signatures:
                    self.entries_deduped += 1
                    continue
                signatures.add(signature)
                shard.insert(entry.with_ready_time(0.0))
                added += 1
            if added:
                self.entries_merged += added
                self._dirty.add(namespace)
        return added

    # -- persistence ---------------------------------------------------------

    def inject_enospc(self, n=1):
        """Arm ``n`` deterministic disk-full faults: the next ``n``
        shard writes raise ``ENOSPC`` before touching the filesystem.
        The hook behind the ``disk_full`` chaos fault kind and the
        satellite ENOSPC tests — it exercises exactly the code path a
        real full disk would, without needing one."""
        with self._lock:
            self._pending_enospc += int(n)

    def _write_shard(self, path, blob):
        with self._lock:
            if self._pending_enospc > 0:
                self._pending_enospc -= 1
                raise OSError(errno.ENOSPC, "injected disk-full", path)
        cache_io.write_atomic(path, blob)

    def _prune_for_space(self, exclude, needed):
        """Oldest-first removal of shard artifacts to free ``needed``
        bytes: quarantined blobs go first (dead evidence), then the
        stalest ``.tcache`` files by mtime, never ``exclude`` (the file
        we are trying to write). A pruned namespace whose shard is still
        in memory is re-marked dirty so its durability recovers once
        space returns. Returns the number of files removed."""
        candidates = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if not (name.endswith(SHARD_SUFFIX)
                    or name.endswith(SHARD_SUFFIX + QUARANTINE_SUFFIX)):
                continue
            path = os.path.join(self.directory, name)
            if path == exclude:
                continue
            try:
                stat = os.stat(path)
            except OSError:
                continue
            quarantined = name.endswith(QUARANTINE_SUFFIX)
            candidates.append((not quarantined, stat.st_mtime, path,
                               stat.st_size, quarantined))
        candidates.sort()
        pruned = freed = 0
        for __, __, path, size, quarantined in candidates:
            try:
                os.unlink(path)
            except OSError:
                continue
            pruned += 1
            freed += size
            if not quarantined:
                namespace = os.path.basename(path)[:-len(SHARD_SUFFIX)]
                if namespace in self._shards:
                    self._dirty.add(namespace)
            if freed >= needed:
                break
        self.shards_pruned += pruned
        return pruned

    def _flush_one(self, target):
        """Write one shard, degrading under disk pressure.

        The ladder: write atomically; on ``ENOSPC`` prune the oldest
        shard files and retry once; if the disk is *still* full, leave
        the shard dirty and suspend write-through. Any successful write
        while suspended lifts the suspension — recovery needs no
        operator action beyond freeing space. Returns True if the shard
        reached disk."""
        shard = self._shards.get(target)
        if shard is None:
            return False
        path = self._shard_path(target)
        blob = cache_io.serialize_cache(shard)
        for attempt in (0, 1):
            try:
                self._write_shard(path, blob)
            except OSError as exc:
                if not _is_enospc(exc):
                    raise
                self.enospc_events += 1
                if attempt == 0 and self._prune_for_space(path, len(blob)):
                    continue  # freed something: one retry
                self.write_through_suspended = True
                return False
            self._dirty.discard(target)
            if self.write_through_suspended:
                self.write_through_suspended = False
                self.write_through_resumes += 1
            return True
        return False

    def flush(self, namespace=None, force=False):
        """Persist dirty shards (or one, or all with ``force``).

        Atomic per shard: serialize, write to a temp file, rename. A
        daemon killed mid-flush leaves either the old blob or the new
        one, never a torn file. No-op without a directory. Returns the
        number of shard files written.

        A shard write that fails with ``ENOSPC`` degrades instead of
        raising (see :meth:`_flush_one`): prune, retry, then suspend
        write-through with the shard kept dirty in memory. Results stay
        byte-exact throughout — only durability is deferred, and it
        catches up automatically on the first flush after space
        returns."""
        if self.directory is None:
            return 0
        written = 0
        with self._lock:
            if namespace is not None:
                targets = [namespace] if (force or namespace in self._dirty) \
                    else []
            else:
                targets = sorted(self._shards) if force \
                    else sorted(self._dirty)
            for target in targets:
                if self._flush_one(target):
                    written += 1
                elif self.write_through_suspended:
                    # The disk is full even after pruning; the remaining
                    # targets would fail identically. Keep them dirty
                    # and let the next flush try again.
                    break
            if written:
                self.flushes += 1
        return written

    def dirty_namespaces(self):
        with self._lock:
            return sorted(self._dirty)

    # -- reporting -----------------------------------------------------------

    def stats_dict(self):
        with self._lock:
            shards = {
                namespace: {
                    "entries": shard.n_entries,
                    "bytes": shard.total_bytes,
                    "inserted": shard.n_inserted,
                    "evicted": shard.n_evicted,
                }
                for namespace, shard in sorted(self._shards.items())
            }
            return {
                "directory": self.directory,
                "namespaces": len(self._shards),
                "total_entries": sum(s.n_entries
                                     for s in self._shards.values()),
                "total_bytes": sum(s.total_bytes
                                   for s in self._shards.values()),
                "shards": shards,
                "shards_loaded": self.shards_loaded,
                "entries_loaded": self.entries_loaded,
                "shards_quarantined": self.shards_quarantined,
                "entries_quarantined": self.entries_quarantined,
                "entries_merged": self.entries_merged,
                "entries_deduped": self.entries_deduped,
                "flushes": self.flushes,
                "enospc_events": self.enospc_events,
                "shards_pruned": self.shards_pruned,
                "write_through_suspended": self.write_through_suspended,
                "write_through_resumes": self.write_through_resumes,
            }

    def __repr__(self):
        with self._lock:
            return "<SharedCacheStore namespaces=%d entries=%d>" % (
                len(self._shards),
                sum(s.n_entries for s in self._shards.values()))
