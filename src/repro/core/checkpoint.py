"""Durable checkpoint/restore for long runs.

A multi-hour ``repro scale`` run used to lose everything on a crash.
This module makes runs resumable: a checkpoint is an atomic snapshot of
the main thread's machine state, its cumulative instruction count, and
(optionally) the trajectory cache — everything needed to continue the
deterministic computation and keep the speculation tier warm. Because
the transition function is deterministic, a resumed run *must* reach
the same final state byte-for-byte as an uninterrupted one; the
checkpoint tests assert exactly that.

File format (``ckpt-<seq>.ascp``)::

    [4B magic "ASCK" | u16 version | u16 n_sections]
    n_sections x [4B tag | u64 length | payload | u32 CRC32(payload)]

Sections: ``META`` (JSON: program name, instruction count, sequence),
``STAT`` (raw machine state bytes), ``CACH`` (a
:mod:`repro.core.cache_io` blob, optional). Every section carries its
own CRC32 so a torn or bit-rotted file is rejected loudly instead of
resuming from garbage.

Durability discipline: write to ``<name>.tmp``, flush, ``fsync``,
``os.replace`` into place, then fsync the directory. A crash mid-write
leaves only a ``.tmp`` file, which readers ignore — the previous
checkpoint remains the latest valid one. :func:`load_latest` walks
newest-to-oldest past corrupt files.
"""

import json
import os
import struct
import zlib

from repro.core import cache_io
from repro.errors import EngineError

_MAGIC = b"ASCK"
_VERSION = 1

_HEADER = struct.Struct("<4sHH")

SECTION_META = b"META"
SECTION_STATE = b"STAT"
SECTION_CACHE = b"CACH"

_PREFIX = "ckpt-"
_SUFFIX = ".ascp"


class Checkpoint:
    """One loaded checkpoint."""

    def __init__(self, meta, state, cache_blob=None):
        self.meta = meta
        self.state = state  # bytes: the full machine state vector
        self.cache_blob = cache_blob

    @property
    def instruction_count(self):
        return int(self.meta.get("instruction_count", 0))

    @property
    def sequence(self):
        return int(self.meta.get("sequence", 0))

    @property
    def program_name(self):
        return self.meta.get("program")

    def load_cache(self, capacity_bytes=None):
        """Rebuild the snapshotted trajectory cache (or ``None``)."""
        if self.cache_blob is None:
            return None
        return cache_io.deserialize_cache(self.cache_blob,
                                          capacity_bytes=capacity_bytes)

    def __repr__(self):
        return ("Checkpoint(seq=%d, program=%r, instructions=%d, "
                "state=%dB, cache=%s)"
                % (self.sequence, self.program_name, self.instruction_count,
                   len(self.state),
                   "yes" if self.cache_blob is not None else "no"))


# -- encoding ----------------------------------------------------------------

def encode_checkpoint(state, instruction_count, cache=None, meta=None):
    """Serialize a checkpoint to bytes."""
    info = dict(meta or {})
    info["instruction_count"] = int(instruction_count)
    sections = [
        (SECTION_META, json.dumps(info, sort_keys=True).encode("utf-8")),
        (SECTION_STATE, bytes(state)),
    ]
    if cache is not None:
        sections.append((SECTION_CACHE, cache_io.serialize_cache(cache)))
    out = bytearray(_HEADER.pack(_MAGIC, _VERSION, len(sections)))
    for tag, payload in sections:
        out += cache_io.encode_section(tag, payload)
    return bytes(out)


def decode_checkpoint(data):
    """Inverse of :func:`encode_checkpoint`; raises :class:`EngineError`
    on any structural damage or CRC mismatch."""
    if len(data) < _HEADER.size:
        raise EngineError("checkpoint too short for header")
    magic, version, n_sections = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise EngineError("not a checkpoint file (bad magic)")
    if version != _VERSION:
        raise EngineError("unsupported checkpoint version %d" % version)
    pos = _HEADER.size
    sections = {}
    for __ in range(n_sections):
        tag, payload, pos = cache_io.decode_section(data, pos)
        sections[tag] = payload
    if pos != len(data):
        raise EngineError("trailing bytes in checkpoint")
    if SECTION_META not in sections or SECTION_STATE not in sections:
        raise EngineError("checkpoint missing a required section")
    try:
        meta = json.loads(sections[SECTION_META].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise EngineError("checkpoint META section is not valid JSON")
    return Checkpoint(meta, sections[SECTION_STATE],
                      sections.get(SECTION_CACHE))


# -- in-memory snapshots -----------------------------------------------------

def snapshot_state(state, instruction_count, meta=None):
    """Atomic in-memory snapshot of machine state + progress.

    Same CRC-sectioned blob a durable checkpoint uses, minus the file:
    the verify subsystem keeps one of these per audited splice so a
    divergent entry can be rolled back with the exact machinery (and
    the same corruption detection) a crash restore gets.
    """
    return encode_checkpoint(state, instruction_count, meta=meta)


def restore_state(blob):
    """Decode an in-memory snapshot; returns a :class:`Checkpoint`."""
    return decode_checkpoint(blob)


# -- files -------------------------------------------------------------------

def write_checkpoint(path, state, instruction_count, cache=None, meta=None):
    """Atomically write a checkpoint: tmp + fsync + rename."""
    path = os.fspath(path)
    blob = encode_checkpoint(state, instruction_count, cache=cache,
                             meta=meta)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass  # directory fsync is best-effort (not all platforms allow it)
    return path


def read_checkpoint(path):
    with open(path, "rb") as handle:
        return decode_checkpoint(handle.read())


def checkpoint_paths(directory):
    """Checkpoint files in ``directory``, oldest first. ``.tmp``
    leftovers from a crash mid-write are ignored."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            continue
        seq = name[len(_PREFIX):-len(_SUFFIX)]
        if seq.isdigit():
            found.append((int(seq), os.path.join(directory, name)))
    found.sort()
    return [path for __, path in found]


def latest_checkpoint(directory):
    paths = checkpoint_paths(directory)
    return paths[-1] if paths else None


def load_latest(directory):
    """Newest checkpoint that validates, or ``None``.

    Walks newest-to-oldest so one corrupt (torn, bit-rotted) file falls
    back to the previous durable snapshot instead of aborting.
    """
    for path in reversed(checkpoint_paths(directory)):
        try:
            return read_checkpoint(path)
        except (EngineError, OSError):
            continue
    return None


class Checkpointer:
    """Periodic checkpoint writer for one run.

    ``every_instructions`` is the snapshot cadence measured in
    retired-or-fast-forwarded instructions; :meth:`maybe_save` is cheap
    to call at every superstep boundary. ``keep`` bounds disk usage by
    pruning all but the newest N checkpoints.
    """

    def __init__(self, directory, every_instructions=1_000_000, keep=3,
                 program=None):
        if every_instructions is not None and every_instructions < 1:
            raise EngineError("checkpoint cadence must be >= 1 instruction")
        self.directory = os.fspath(directory)
        self.every_instructions = every_instructions
        self.keep = keep
        self.program = program
        os.makedirs(self.directory, exist_ok=True)
        paths = checkpoint_paths(self.directory)
        if paths:
            last = os.path.basename(paths[-1])
            self._sequence = int(last[len(_PREFIX):-len(_SUFFIX)])
        else:
            self._sequence = 0
        self._last_saved_instructions = None
        self.saves = 0

    def note_resumed(self, instruction_count):
        """Anchor the cadence after a resume (don't re-save at once)."""
        self._last_saved_instructions = instruction_count

    def due(self, instruction_count):
        if self.every_instructions is None:
            return False
        if self._last_saved_instructions is None:
            return instruction_count >= self.every_instructions
        return (instruction_count - self._last_saved_instructions
                >= self.every_instructions)

    def maybe_save(self, instruction_count, state, cache=None):
        """Save if the cadence is due; returns the path or ``None``."""
        if not self.due(instruction_count):
            return None
        return self.save(instruction_count, state, cache=cache)

    def save(self, instruction_count, state, cache=None):
        self._sequence += 1
        name = "%s%08d%s" % (_PREFIX, self._sequence, _SUFFIX)
        path = write_checkpoint(
            os.path.join(self.directory, name), state, instruction_count,
            cache=cache, meta={"program": self.program,
                               "sequence": self._sequence})
        self._last_saved_instructions = instruction_count
        self.saves += 1
        self._prune()
        return path

    def _prune(self):
        if self.keep is None:
            return
        paths = checkpoint_paths(self.directory)
        for path in paths[:-self.keep] if self.keep else paths:
            try:
                os.unlink(path)
            except OSError:
                pass

    def __repr__(self):
        return ("Checkpointer(%r, every=%s, keep=%s, saves=%d)"
                % (self.directory, self.every_instructions, self.keep,
                   self.saves))
