"""Statistics collectors for prediction quality and engine runs.

:class:`PredictionStats` records, per observed RIP transition, which bits
each expert got wrong and what the combined and equal-weight votes were.
From that it derives the three error rates of the paper's Table 2:
equal-weight, hindsight-optimal (the best single expert per bit, chosen
after the fact — the regret-bound comparator), and the actual RWMA rate.

A prediction is counted correct the way the paper counts it: the
predicted state vector matches the true next state on the *relevant*
bits. Pass ``relevant_bits`` (e.g. the union of dependency bits observed
in cache entries) to score that way; default is all target bits.
"""

import numpy as np


class PredictionStats:
    def __init__(self, expert_names):
        self.expert_names = list(expert_names)
        self._expert_errors = []  # per obs: list of packed error bitmaps
        self._ensemble_errors = []  # packed (ensemble_bits != actual)
        self._equal_errors = []  # packed (equal_bits != actual)
        self._n_bits = []  # bits scored at each observation
        self.observations = 0

    def record(self, outcome):
        """Ingest an :class:`...ensemble.ObserveOutcome`."""
        if not outcome.scored:
            return
        self.observations += 1
        self._n_bits.append(len(outcome.actual_bits))
        self._expert_errors.append(
            [np.packbits(err) for err in outcome.expert_errors])
        self._ensemble_errors.append(
            np.packbits(outcome.ensemble_bits != outcome.actual_bits))
        self._equal_errors.append(
            np.packbits(outcome.equal_weight_bits != outcome.actual_bits))

    # -- unpacking helpers ---------------------------------------------------

    def _unpack(self, packed, n_bits, max_bits):
        bits = np.unpackbits(packed)[:n_bits]
        if n_bits < max_bits:
            bits = np.concatenate(
                [bits, np.zeros(max_bits - n_bits, dtype=np.uint8)])
        return bits

    def _error_matrix(self, packed_list):
        """(observations x max_bits) 0/1 error matrix."""
        if not packed_list:
            return np.zeros((0, 0), dtype=np.uint8)
        max_bits = max(self._n_bits)
        rows = [self._unpack(p, n, max_bits)
                for p, n in zip(packed_list, self._n_bits)]
        return np.array(rows, dtype=np.uint8)

    def _state_error_rate(self, matrix, relevant_bits=None):
        if matrix.size == 0:
            return 0.0
        if relevant_bits is not None:
            mask = np.zeros(matrix.shape[1], dtype=bool)
            idx = np.asarray(sorted(relevant_bits), dtype=np.int64)
            idx = idx[idx < matrix.shape[1]]
            mask[idx] = True
            matrix = matrix[:, mask]
        wrong = matrix.any(axis=1)
        return float(wrong.mean())

    # -- Table 2 quantities --------------------------------------------------------

    def actual_error_rate(self, relevant_bits=None):
        """State-level error of the RWMA-combined prediction."""
        return self._state_error_rate(self._error_matrix(self._ensemble_errors),
                                      relevant_bits)

    def equal_weight_error_rate(self, relevant_bits=None):
        """State-level error when every expert votes with equal weight."""
        return self._state_error_rate(self._error_matrix(self._equal_errors),
                                      relevant_bits)

    def hindsight_error_rate(self, relevant_bits=None):
        """State-level error of the clairvoyant best-expert-per-bit mix."""
        if not self._expert_errors:
            return 0.0
        per_expert = [
            self._error_matrix([obs[e] for obs in self._expert_errors])
            for e in range(len(self.expert_names))]
        stacked = np.stack(per_expert)  # (experts, obs, bits)
        totals = stacked.sum(axis=1)  # (experts, bits)
        best = totals.argmin(axis=0)  # per-bit best expert
        chosen = stacked[best, :, np.arange(stacked.shape[2])].T
        return self._state_error_rate(chosen.astype(np.uint8), relevant_bits)

    def total_predictions(self):
        return self.observations

    def incorrect_predictions(self, relevant_bits=None):
        matrix = self._error_matrix(self._ensemble_errors)
        if matrix.size == 0:
            return 0
        if relevant_bits is not None:
            rate = self._state_error_rate(matrix, relevant_bits)
            return int(round(rate * matrix.shape[0]))
        return int(matrix.any(axis=1).sum())

    def per_expert_bit_error_totals(self):
        """(experts x bits) total mistakes — companion to Figure 3."""
        if not self._expert_errors:
            return np.zeros((len(self.expert_names), 0))
        per_expert = [
            self._error_matrix([obs[e] for obs in self._expert_errors])
            for e in range(len(self.expert_names))]
        return np.stack(per_expert).sum(axis=1)


class RunStats:
    """Counters accumulated by an engine run."""

    def __init__(self):
        self.supersteps = 0
        self.queries = 0
        self.hits = 0
        self.misses = 0
        self.misses_late = 0  # a worker had it, but wasn't done yet
        self.misses_nomatch = 0  # nothing in the cache matched
        self.instructions_executed = 0
        self.instructions_fast_forwarded = 0
        self.speculations_dispatched = 0
        self.speculations_executed = 0  # actual VM runs (not deduped)
        self.speculations_reused = 0  # served from the cross-run memo
        self.speculation_instructions = 0
        self.speculation_faults = 0
        self.query_bits_total = 0
        self.phase_transitions = 0
        # Wall seconds from run start to the first cache splice, or
        # None if the run never fast-forwarded. The daemon's warm-start
        # story is measured on this: a pre-populated shared cache should
        # splice almost immediately, a cold run only after its workers
        # have learned something.
        self.first_splice_seconds = None

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def miss_rate(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    @property
    def mean_query_bits(self):
        return self.query_bits_total / self.queries if self.queries else 0.0

    def as_dict(self):
        return dict(self.__dict__, hit_rate=self.hit_rate,
                    miss_rate=self.miss_rate)

    def __repr__(self):
        return ("RunStats(supersteps=%d, hits=%d, misses=%d, exec=%d, "
                "ff=%d)" % (self.supersteps, self.hits, self.misses,
                            self.instructions_executed,
                            self.instructions_fast_forwarded))
