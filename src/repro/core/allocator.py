"""The allocator: rolling predictions forward and scheduling speculation
(§4.5).

After every observed RIP state, the allocator maintains a *rollout
chain*: the ensemble's prediction for the next RIP state, the prediction
from that prediction, and so on k supersteps into the future (§4.5.2's
recursive generation). Each step carries Eq. 2's per-hop confidence;
cumulative products along the chain give each speculative target its
probability of use, and the allocator dispatches workers in decreasing
expected utility (jump length times probability of use).

When a new observation matches the chain's first element — the common
case, since predictions are usually right — the chain simply shifts and
extends by one, so steady-state rollout maintenance is O(1) ensemble
predictions per superstep. A misprediction invalidates the chain and it
is rebuilt from the corrected state, exactly the stall the real system
would suffer.
"""

import hashlib

import numpy as np


class RelevanceMask:
    """Which target-word bytes matter for chain reconciliation.

    Rollout chains must survive the observation that dead temporaries —
    bytes the next superstep overwrites before reading — never match
    predictions. The trajectory cache already ignores them (entries are
    keyed on read-dependencies only); this mask teaches the allocator the
    same leniency: two projected states are equivalent when they agree on
    every byte that any observed superstep has *read*.

    Soundness: treating distinct states as equivalent can only suppress a
    dispatch or keep a chain alive; every cache entry remains an exact
    fact about the transition function, so a wrong equivalence surfaces
    as a cache miss, never as wrong execution. The per-word/word-local
    structure of the predictors means relevant-bit predictions depend
    only on relevant words, so a chain tail stays valid under the mask.
    """

    def __init__(self, tracker):
        self.tracker = tracker
        self._positions = None  # indices into the target-word array
        self._known = set()
        self._version = 0
        self._word_pos = {}
        self._word_pos_version = -1

    @property
    def seeded(self):
        return self._positions is not None

    def _refresh_word_pos(self):
        if self._word_pos_version != self.tracker.version:
            self._word_pos = {int(w): i for i, w in
                              enumerate(self.tracker.target_words.tolist())}
            self._word_pos_version = self.tracker.version

    def update_from_entry(self, entry):
        """Fold a cache entry's read-dependency words into the mask.

        Word granularity: any read byte marks its whole word relevant,
        matching the word-local structure of every predictor (so a
        relevant word's prediction provably depends only on relevant
        words).
        """
        self._refresh_word_pos()
        added = False
        for idx in entry.start_indices.tolist():
            pos = self._word_pos.get(idx & ~3)
            if pos is not None and pos not in self._known:
                self._known.add(pos)
                added = True
        if added:
            self._positions = np.array(sorted(self._known), dtype=np.int64)
            self._version += 1

    def _select(self, word_values):
        data = np.asarray(word_values, dtype="<u4")
        positions = self._positions[self._positions < len(data)]
        return data[positions]

    def equivalent(self, words_a, words_b):
        """Do two projections agree on all relevant bytes?"""
        if self._positions is None:
            a = np.asarray(words_a, dtype="<u4")
            b = np.asarray(words_b, dtype="<u4")
            return bool(len(a) == len(b) and np.array_equal(a, b))
        return bool(np.array_equal(self._select(words_a),
                                   self._select(words_b)))

    def key(self, word_values):
        """Digest of the relevant bytes (dispatch dedup key)."""
        h = hashlib.blake2b(digest_size=12)
        if self._positions is None:
            h.update(np.asarray(word_values, dtype="<u4").tobytes())
        else:
            h.update(self._select(word_values).tobytes())
        h.update(bytes([self._version & 0xFF, self.tracker.version & 0xFF]))
        return h.digest()

    def key_for(self, step):
        """Per-step cached :meth:`key` (dispatch scans chains repeatedly)."""
        version = (self._version, self.tracker.version)
        cached = step.cover_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        key = self.key(step.word_values)
        step.cover_cache = (version, key)
        return key


class RolloutStep:
    """One predicted future RIP state."""

    __slots__ = ("word_values", "digest", "step_confidence", "cover_cache")

    def __init__(self, word_values, digest, step_confidence):
        self.word_values = word_values  # np.uint32 target-word values
        self.digest = digest
        self.step_confidence = step_confidence  # this hop's Eq. 2 confidence
        self.cover_cache = None  # (mask version, cover key)

    def __repr__(self):
        return "RolloutStep(conf=%.3f, digest=%s)" % (
            self.step_confidence, self.digest.hex()[:8])


def _confidence(probs):
    """Collapse per-bit probabilities into one per-step confidence.

    Eq. 2's literal product underflows to zero over thousands of bits;
    the geometric mean preserves the ordering the allocator needs while
    staying in a numerically meaningful range.
    """
    if len(probs) == 0:
        return 1.0
    return float(np.exp(np.mean(np.log(np.maximum(probs, 1e-9)))))


class Allocator:
    """Maintains the rollout chain for one recognized IP."""

    def __init__(self, ensemble, tracker, max_rollout, mask=None):
        self.ensemble = ensemble
        self.tracker = tracker
        self.max_rollout = max_rollout
        self.mask = mask or RelevanceMask(tracker)
        self.chain = []
        self.rebuilds = 0
        self.shifts = 0

    def advance(self, view):
        """Reconcile the chain with a newly observed RIP state.

        The comparison is up to dependency relevance: a prediction that
        got every byte the next superstep reads right keeps the chain
        alive even if dead temporaries came out differently.
        """
        if self.chain and len(self.chain[0].word_values) \
                != len(view.word_values):
            self._pad_chain(view)
        if self.chain and self.mask.equivalent(self.chain[0].word_values,
                                               view.word_values):
            self.chain.pop(0)
            self.shifts += 1
        elif self.chain:
            self.chain = []
            self.rebuilds += 1
        self._extend(view)

    def _pad_chain(self, view):
        """Extend chain steps to a grown target set.

        Newly adopted target words were, until now, implicitly predicted
        by copying the current state (the excitation tracker materializes
        non-target bytes that way), so padding each step with the
        current observed values preserves exactly the predictions the
        chain already embodied.
        """
        n_words = len(view.word_values)
        for step in self.chain:
            have = len(step.word_values)
            if have < n_words:
                step.word_values = np.concatenate(
                    [step.word_values, view.word_values[have:]])
                step.digest = self.tracker.words_digest(step.word_values)
                step.cover_cache = None

    def _extend(self, anchor_view):
        """Grow the chain to ``max_rollout`` predictions."""
        anchor_digest = anchor_view.digest()
        while len(self.chain) < self.max_rollout:
            if self.chain:
                source = self.tracker.view_from_words(
                    self.chain[-1].word_values)
            else:
                source = anchor_view
            bits, probs = self.ensemble.predict_from(source)
            predicted = self.tracker.view_from_bits(bits)
            digest = predicted.digest()
            # A fixed point (e.g. predicted halt) makes deeper rollout
            # useless; stop extending.
            if self.chain:
                if digest == self.chain[-1].digest:
                    break
            elif digest == anchor_digest:
                break
            self.chain.append(RolloutStep(predicted.word_values, digest,
                                          _confidence(probs)))

    def probabilities(self):
        """Cumulative probability of use for each chain step."""
        probs = []
        acc = 1.0
        for step in self.chain:
            acc *= step.step_confidence
            probs.append(acc)
        return probs

    def dispatch_order(self, mean_jump, min_probability):
        """Chain indices in decreasing expected utility.

        Expected utility of speculating from chain step k is the jump
        length it would save times the probability the main thread ever
        uses it (§4.5.2). With a constant expected jump, utility ordering
        reduces to probability ordering, which decreases along the chain
        — but the explicit computation keeps the policy honest if jumps
        ever differ.
        """
        scored = [(probability * mean_jump, i)
                  for i, probability in enumerate(self.probabilities())
                  if probability >= min_probability]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [i for __, i in scored]

    def reset(self):
        self.chain = []
