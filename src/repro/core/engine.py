"""The ASC engines: sequential reference, parallel-speculative, and
single-core memoizing execution.

:class:`ParallelEngine` implements the paper's Figure 1 loop on top of a
simulated-time cluster. One main thread executes the program on the
TBFS; at every superstep boundary (each ``stride``-th crossing of the
recognized IP) it sends its state to the learners, the allocator rolls
predictions out and dispatches idle workers to uncovered future states,
and the main thread queries the distributed trajectory cache —
fast-forwarding over any superstep a speculative worker has already
executed correctly.

Simulated time vs. real work: every speculative execution really runs on
the Python VM (producing real dependency vectors and cache entries), but
*when* its entry becomes visible is charged by the platform's cost model
(rollout time linear in rank, instruction time at the measured MIPS,
query/reduce/response latencies). Byte-identical speculations are
executed once and reused — an accounting identity, since the transition
function is deterministic — which keeps an N-core simulation's Python
cost near the sequential cost instead of N times it.
"""

import heapq

from repro.cluster.topology import Platform, laptop1
from repro.core.allocator import Allocator, RelevanceMask
from repro.core.config import EngineConfig
from repro.core.excitation import ExcitationTracker
from repro.core.oracle import OracleAllocator, TrajectoryRecord
from repro.core.predictors.ensemble import default_ensemble
from repro.core.recognizer import Recognizer
from repro.core.speculation import run_speculation
from repro.core.stats import PredictionStats, RunStats
from repro.core.trajectory_cache import CacheEntry, TrajectoryCache
from repro.errors import EngineError
from repro.machine.depvec import DepVector
from repro.machine.executor import STOP_BREAKPOINT
from repro.verify.auditor import SpliceAuditor
from repro.verify.config import resolve_verify

import numpy as np


class SequentialResult:
    """A plain uninstrumented run (the scaling baseline)."""

    __slots__ = ("instructions", "seconds", "halted")

    def __init__(self, instructions, seconds, halted):
        self.instructions = instructions
        self.seconds = seconds
        self.halted = halted

    def __repr__(self):
        return "SequentialResult(instructions=%d, seconds=%.4f)" % (
            self.instructions, self.seconds)


def run_sequential(program, cost_model=None, max_instructions=500_000_000):
    """Run the program to halt on one core, no tracking, no caching."""
    from repro.cluster.costmodel import CostModel
    cm = cost_model or CostModel()
    machine = program.make_machine()
    result = machine.run(max_instructions=max_instructions)
    if not machine.halted:
        raise EngineError("program did not halt within %d instructions"
                          % max_instructions)
    seconds = cm.exec_seconds(result.instructions, dep_tracking=False)
    return SequentialResult(result.instructions, seconds, True)


class ParallelResult:
    """Everything measured by one parallel engine run."""

    def __init__(self, program_name, n_cores, oracle, recognized,
                 sequential_seconds, makespan_seconds, total_instructions,
                 stats, prediction_stats, cache, allocator_shifts,
                 allocator_rebuilds):
        self.program_name = program_name
        self.n_cores = n_cores
        self.oracle = oracle
        self.recognized = recognized
        self.sequential_seconds = sequential_seconds
        self.makespan_seconds = makespan_seconds
        self.total_instructions = total_instructions
        self.stats = stats
        self.prediction_stats = prediction_stats
        self.cache = cache
        self.allocator_shifts = allocator_shifts
        self.allocator_rebuilds = allocator_rebuilds

    @property
    def scaling(self):
        """The paper's metric: sequential time over parallel time."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.sequential_seconds / self.makespan_seconds

    def __repr__(self):
        return ("ParallelResult(%s, cores=%d, scaling=%.2f, hits=%d, "
                "misses=%d)" % (self.program_name, self.n_cores,
                                self.scaling, self.stats.hits,
                                self.stats.misses))


class ParallelEngine:
    """One ASC run of a program on a simulated platform.

    ``recognized``, ``record``, and ``spec_memo`` may be shared across
    runs of the same program (e.g. a core-count sweep): recognition is
    deterministic, the record is ground truth, and the memo only caches
    deterministic speculative executions keyed by predicted-state digest.
    """

    def __init__(self, program, platform, config=None, oracle=False,
                 recognized=None, record=None, spec_memo=None,
                 collect_prediction_stats=None, initial_cache=None,
                 verify=None):
        if not isinstance(platform, Platform):
            raise EngineError("platform must be a Platform")
        self.program = program
        self.platform = platform
        self.config = config or EngineConfig()
        self.oracle = oracle
        self.recognized = recognized
        self.record = record
        self.spec_memo = spec_memo if spec_memo is not None else {}
        # Entries carried over from a previous invocation (§6's cache
        # reuse); preloaded with ready_time 0.
        self.initial_cache = initial_cache
        self.verify = resolve_verify(verify)
        if collect_prediction_stats is None:
            collect_prediction_stats = not oracle
        self.collect_prediction_stats = collect_prediction_stats

    # -- helpers -------------------------------------------------------------

    def _prepare(self):
        config = self.config
        if self.recognized is None:
            self.recognized = Recognizer(config).find(self.program)
        if self.record is None:
            self.record = TrajectoryRecord(self.program, self.recognized,
                                           config)
        if not self.record.halted:
            raise EngineError("reference run did not halt; cannot evaluate")

    def _query_bits(self, snapshot_arr, last_query_arr):
        """Size of the delta-compressed query message (§4.2).

        Modeled as a fixed header plus ~32 bits (offset varint + value)
        per changed byte since the previous query — the cost structure of
        the Myers-delta messages the paper measures in Table 1; the exact
        codec's sizes are computed offline by the Table 1 analysis.
        """
        if last_query_arr is None:
            return 8 * len(snapshot_arr)  # first query ships the full state
        changed = int(np.count_nonzero(snapshot_arr != last_query_arr))
        return 64 + 32 * changed

    # -- the run ------------------------------------------------------------------

    def run(self):
        self._prepare()
        program = self.program
        config = self.config
        platform = self.platform
        cm = platform.cost_model
        record = self.record

        n_workers = max(0, platform.n_cores - 1)
        max_rollout = config.max_rollout or max(1, n_workers)
        max_rollout = min(max_rollout, record.n_boundaries + 2)

        cache = TrajectoryCache(capacity_bytes=config.cache_capacity_bytes
                                or platform.cache_capacity_bytes)
        if self.initial_cache is not None:
            for entry in self.initial_cache.entries():
                cache.insert(entry.with_ready_time(0.0))
        stats = RunStats()
        pstats = None

        main = program.make_machine(fast_path=config.fast_path)
        context = main.context  # shared decode cache with speculation
        auditor = None
        if self.verify is not None and self.verify.enabled:
            auditor = SpliceAuditor(self.verify, cache, context=context)
        total = record.total_instructions
        sequential_seconds = cm.exec_seconds(total, dep_tracking=False)
        guard = total * 2 + 100_000

        worker_heap = [0.0] * n_workers
        heapq.heapify(worker_heap)
        last_query_arr = None
        T = 0.0

        # -- per-phase state (reset when a RIP dies, §4.4.1's reset) -----
        phases = record.phases
        phase_index = -1
        tracker = mask = ensemble = allocator = None
        rip = stride = spec_budget = None
        break_ips = frozenset()
        converge_t = 0.0
        covered = set()
        recognized_phase = None
        oracle_allocator = (OracleAllocator(record, max_rollout)
                            if self.oracle else None)

        def enter_phase(index, now):
            nonlocal tracker, mask, ensemble, allocator, rip, stride
            nonlocal spec_budget, break_ips, converge_t, covered, pstats
            nonlocal recognized_phase
            recognized_phase = phases[index]
            rip = recognized_phase.ip
            stride = recognized_phase.stride
            break_ips = frozenset((rip,))
            spec_budget = recognized_phase.speculation_budget(
                config.speculation_budget_factor)
            tracker = ExcitationTracker(program.layout, config)
            mask = RelevanceMask(tracker)
            covered = set()
            if self.oracle:
                ensemble = None
                allocator = oracle_allocator
            else:
                ensemble = default_ensemble(config)
                allocator = Allocator(ensemble, tracker, max_rollout,
                                      mask=mask)
                if recognized_phase.training_states:
                    # Warm start: the recognizer's search already observed
                    # these states and trained on them (its time is what
                    # the converge charge accounts for); the engine
                    # continues from that model instead of relearning.
                    for trained in recognized_phase.training_states:
                        view = tracker.observe(trained)
                        if view is not None:
                            ensemble.observe(view)
                    ensemble.flush_pending()
                    tracker.reset_continuity()
                if pstats is None and self.collect_prediction_stats:
                    pstats = PredictionStats(ensemble.expert_names)
            if config.converge_supersteps_charge is not None:
                converge = (config.converge_supersteps_charge
                            * recognized_phase.superstep_instructions)
            else:
                converge = recognized_phase.converge_instructions
            converge_t = now + cm.exec_seconds(converge,
                                               dep_tracking=True)

        enter_phase(0, 0.0)
        phase_index = 0

        while not main.halted:
            # Execute up to one superstep (stride RIP crossings); a
            # drought (no crossing within the limit) means this phase's
            # RIP died and the next recognized phase takes over.
            executed = 0
            drought = False
            for __ in range(stride):
                result = main.run(
                    max_instructions=recognized_phase.drought_limit(),
                    break_ips=break_ips)
                executed += result.instructions
                if result.reason != STOP_BREAKPOINT:
                    drought = not main.halted
                    break
            T += cm.exec_seconds(executed, dep_tracking=False)
            stats.instructions_executed += executed
            if main.halted:
                break
            if drought:
                phase_index += 1
                if phase_index < len(phases):
                    stats.phase_transitions += 1
                    enter_phase(phase_index, T)
                    continue
                # No further recognized structure: run plainly to halt.
                tail = main.run(max_instructions=guard)
                T += cm.exec_seconds(tail.instructions, dep_tracking=False)
                stats.instructions_executed += tail.instructions
                break
            progress = (stats.instructions_executed
                        + stats.instructions_fast_forwarded)
            if progress > guard:
                raise EngineError("engine exceeded instruction guard; "
                                  "likely divergence from reference run")

            # Boundary processing; fast-forwards chain within this loop.
            while True:
                stats.supersteps += 1
                buf = main.state.buf
                snapshot = bytes(buf)
                view = tracker.observe(snapshot)
                if view is not None:
                    if ensemble is not None:
                        outcome = ensemble.observe(view)
                        if pstats is not None:
                            pstats.record(outcome)
                    if not mask.seeded and not self.oracle:
                        # Probe one real superstep to learn which words
                        # the computation actually reads (the recognizer
                        # already measured this during validation; the
                        # probe is its engine-side counterpart).
                        probe = run_speculation(context, snapshot, rip,
                                                stride, spec_budget)
                        if probe.entry is not None:
                            mask.update_from_entry(probe.entry)
                    allocator.advance(view)
                    if T >= converge_t and n_workers > 0:
                        self._dispatch(
                            T, allocator, tracker, cache, stats, cm,
                            worker_heap, covered, mask, snapshot, context,
                            rip, stride, spec_budget, recognized_phase,
                            config)
                if T < converge_t:
                    break  # recognizer not converged: no cache use yet
                snapshot_arr = np.frombuffer(snapshot, dtype=np.uint8)
                qbits = self._query_bits(snapshot_arr, last_query_arr)
                last_query_arr = snapshot_arr
                stats.queries += 1
                stats.query_bits_total += qbits
                T += cm.query_seconds(platform.n_cores, qbits)
                entry, late = cache.lookup_classified(rip, buf, now=T)
                if entry is None:
                    stats.misses += 1
                    if late:
                        stats.misses_late += 1
                    else:
                        stats.misses_nomatch += 1
                    break
                stats.hits += 1
                T += cm.response_seconds(entry.end_bits) + cm.apply_seconds()
                entry.apply(buf)
                stats.instructions_fast_forwarded += entry.length
                if auditor is not None and auditor.verify_splice(
                        entry, buf, snapshot, stats):
                    # Refuted and rolled back: the group is quarantined,
                    # so the superstep now replays sequentially.
                    break
                progress = (stats.instructions_executed
                            + stats.instructions_fast_forwarded)
                if progress > guard:
                    raise EngineError("fast-forward exceeded instruction "
                                      "guard; cyclic cache entry?")
                if main.halted:
                    break

        makespan = T if T > 0 else 1e-12
        progress = (stats.instructions_executed
                    + stats.instructions_fast_forwarded)
        if main.halted and progress != total:
            raise EngineError(
                "executed+fast-forwarded=%d does not equal reference "
                "total=%d; cache entries are inconsistent"
                % (progress, total))
        result = ParallelResult(
            program.name, platform.n_cores, self.oracle, self.recognized,
            sequential_seconds, makespan, total, stats, pstats, cache,
            getattr(allocator, "shifts", 0),
            getattr(allocator, "rebuilds", 0))
        result.audit = auditor.report() if auditor is not None else None
        result.final_state = bytes(main.state.buf)
        return result

    def _dispatch(self, T, allocator, tracker, cache, stats, cm,
                  worker_heap, covered, mask, snapshot, context, rip,
                  stride, spec_budget, recognized, config):
        """Assign idle workers to uncovered rollout targets.

        ``covered`` is keyed up to dependency relevance (don't speculate
        twice on targets that differ only in dead bytes); the execution
        memo is keyed on the exact materialized projection, which fully
        determines the deterministic speculative execution.
        """
        mean_jump = recognized.mean_gap * stride
        order = allocator.dispatch_order(mean_jump,
                                         config.min_dispatch_probability)
        chain = allocator.chain
        # Workers accept one queued assignment while still busy (the
        # allocator hands out the next target as soon as a worker will
        # free up within roughly a superstep), so production never stalls
        # on the boundary schedule.
        queue_horizon = T + cm.exec_seconds(recognized.superstep_instructions,
                                            dep_tracking=True)
        for idx in order:
            if not worker_heap or worker_heap[0] > queue_horizon:
                break  # every worker busy beyond the queueing horizon
            step = chain[idx]
            cover_key = mask.key_for(step)
            if cover_key in covered:
                continue
            start = max(T, heapq.heappop(worker_heap))
            rank = idx + 1
            result = self.spec_memo.get(step.digest)
            if result is None:
                start_buf = tracker.materialize(snapshot, step.word_values)
                result = run_speculation(context, start_buf, rip, stride,
                                         spec_budget)
                self.spec_memo[step.digest] = result
                stats.speculations_executed += 1
                stats.speculation_instructions += result.instructions
                if result.fault is not None:
                    stats.speculation_faults += 1
            else:
                stats.speculations_reused += 1
            stats.speculations_dispatched += 1
            ready = (start + cm.rollout_seconds(rank, tracker.n_target_bits)
                     + cm.exec_seconds(result.instructions,
                                       dep_tracking=True))
            if result.entry is not None:
                cache.insert(result.entry.with_ready_time(ready))
                mask.update_from_entry(result.entry)
            covered.add(cover_key)
            heapq.heappush(worker_heap, ready)
        return T


class MemoTimelinePoint:
    """One sample of the memoization run's progress (Figure 6, right)."""

    __slots__ = ("instructions", "scaling")

    def __init__(self, instructions, scaling):
        self.instructions = instructions
        self.scaling = scaling

    def __repr__(self):
        return "MemoTimelinePoint(instructions=%d, scaling=%.3f)" % (
            self.instructions, self.scaling)


class MemoResult:
    """Outcome of a single-core generalized-memoization run."""

    def __init__(self, program_name, recognized, sequential_seconds,
                 makespan_seconds, total_instructions, stats, timeline,
                 cache):
        self.program_name = program_name
        self.recognized = recognized
        self.sequential_seconds = sequential_seconds
        self.makespan_seconds = makespan_seconds
        self.total_instructions = total_instructions
        self.stats = stats
        self.timeline = timeline
        self.cache = cache

    @property
    def scaling(self):
        return self.sequential_seconds / self.makespan_seconds

    def __repr__(self):
        return "MemoResult(%s, scaling=%.3f, hits=%d)" % (
            self.program_name, self.scaling, self.stats.hits)


class MemoizingEngine:
    """Single-core LASC: speed up execution with the program's own past.

    This is the paper's laptop experiment (Figure 6, right): no
    speculation, no prediction — the main thread tracks dependencies as
    it runs, closes a cache entry every ``memo_block`` supersteps, and
    probes the cache at each superstep boundary. Hits fast-forward over
    computation the program has effectively performed before —
    generalized memoization.
    """

    def __init__(self, program, platform=None, config=None, recognized=None,
                 initial_cache=None, verify=None):
        self.program = program
        self.platform = platform or laptop1()
        self.config = config or EngineConfig()
        self.recognized = recognized
        self.initial_cache = initial_cache
        self.verify = resolve_verify(verify)

    def run(self, timeline_samples=64, max_instructions=500_000_000):
        program = self.program
        config = self.config
        cm = self.platform.cost_model
        if self.recognized is None:
            self.recognized = Recognizer(config).find_for_memoization(program)
        recognized = self.recognized
        rip = recognized.ip
        stride = recognized.stride
        break_ips = frozenset((rip,))

        cache = TrajectoryCache(capacity_bytes=config.cache_capacity_bytes)
        if self.initial_cache is not None:
            for entry in self.initial_cache.entries():
                cache.insert(entry.with_ready_time(0.0))
        stats = RunStats()
        main = program.make_machine(fast_path=config.fast_path)
        auditor = None
        if self.verify is not None and self.verify.enabled:
            auditor = SpliceAuditor(self.verify, cache,
                                    context=main.context)
        dep = DepVector(program.layout.size)
        open_start = bytes(main.state.buf)
        open_span = 0
        open_occurrences = 0
        timeline = []
        T = 0.0
        executed_total = 0
        sample_every = None

        while not main.halted and executed_total < max_instructions:
            chunk = 0
            for __ in range(stride):
                result = main.run(max_instructions=max_instructions,
                                  break_ips=break_ips, dep=dep)
                chunk += result.instructions
                if result.reason != STOP_BREAKPOINT:
                    break
            executed_total += chunk
            open_span += chunk
            T += cm.exec_seconds(chunk, dep_tracking=True)
            stats.instructions_executed += chunk
            if main.halted:
                break
            stats.supersteps += 1
            open_occurrences += 1

            if open_occurrences >= config.memo_block:
                entry_buf = bytes(main.state.buf)
                entry = CacheEntry.from_execution(
                    rip, dep, open_start, entry_buf, open_span,
                    occurrences=open_occurrences)
                cache.insert(entry)
                open_start = entry_buf
                open_span = 0
                open_occurrences = 0
                dep.reset()

            # Probe the cache with the current state.
            stats.queries += 1
            probe_bits = 256
            stats.query_bits_total += probe_bits
            T += cm.memo_query_seconds(probe_bits)
            pre_splice = (bytes(main.state.buf) if auditor is not None
                          else None)
            entry = cache.lookup(rip, main.state.buf)
            if entry is not None:
                stats.hits += 1
                T += cm.apply_seconds()
                entry.apply(main.state.buf)
                stats.instructions_fast_forwarded += entry.length
                if auditor is not None and auditor.verify_splice(
                        entry, main.state.buf, pre_splice, stats):
                    # Refuted and rolled back (the auditor already did
                    # the miss accounting); the open segment's tracking
                    # is still coherent — keep accumulating it.
                    pass
                else:
                    # The open entry now spans a jump; restart it.
                    open_start = bytes(main.state.buf)
                    open_span = 0
                    open_occurrences = 0
                    dep.reset()
            else:
                stats.misses += 1

            progress = (stats.instructions_executed
                        + stats.instructions_fast_forwarded)
            if sample_every is None and stats.supersteps >= 8:
                sample_every = max(1, stats.supersteps)
            if sample_every is not None \
                    and stats.supersteps % sample_every == 0:
                baseline = cm.exec_seconds(progress, dep_tracking=False)
                timeline.append(MemoTimelinePoint(progress, baseline / T))

        progress = (stats.instructions_executed
                    + stats.instructions_fast_forwarded)
        sequential_seconds = cm.exec_seconds(progress, dep_tracking=False)
        makespan = T if T > 0 else 1e-12
        baseline = sequential_seconds
        timeline.append(MemoTimelinePoint(progress, baseline / makespan))
        if timeline_samples and len(timeline) > timeline_samples:
            step = len(timeline) / timeline_samples
            timeline = [timeline[int(i * step)]
                        for i in range(timeline_samples)] + [timeline[-1]]
        result = MemoResult(program.name, recognized, sequential_seconds,
                            makespan, progress, stats, timeline, cache)
        result.audit = auditor.report() if auditor is not None else None
        result.final_state = bytes(main.state.buf)
        return result
