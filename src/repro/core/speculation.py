"""Speculative execution workers (§3.2 E, §4.1).

A speculative thread starts from a *predicted* state, resets its
dependency vector to null, runs the transition function until it has
crossed the requested number of recognized-IP occurrences (one
superstep's worth), and packages the result as a trajectory-cache entry.

Two properties make this sound even under misprediction:

* the produced entry is a true fact about the transition function — "any
  state agreeing on these read bytes evolves to these written bytes in N
  instructions" — regardless of whether the predicted start state ever
  occurs; wrong predictions simply create entries nobody matches;
* a garbage predicted state may fault or wander; faults are caught and
  reported (no entry), and a budget bounds wandering.
"""

from repro.errors import MachineError
from repro.machine.depvec import DepVector
from repro.machine.layout import (
    EIP_OFF,
    STATUS_OFF,
    STATUS_HALTED,
    STOP_BREAKPOINT,
    STOP_HALTED,
    read_word,
)
from repro.core.trajectory_cache import CacheEntry


class SpeculationResult:
    """Outcome of one speculative execution."""

    __slots__ = ("entry", "instructions", "halted", "fault")

    def __init__(self, entry, instructions, halted, fault=None):
        self.entry = entry
        self.instructions = instructions
        self.halted = halted
        self.fault = fault

    @property
    def ok(self):
        return self.entry is not None

    def __repr__(self):
        return ("SpeculationResult(ok=%s, instructions=%d, halted=%s, "
                "fault=%r)" % (self.ok, self.instructions, self.halted,
                               self.fault))


def run_speculation(context, start_buf, rip, occurrences, max_instructions):
    """Execute speculatively from ``start_buf`` and build a cache entry.

    ``context`` is the program's :class:`TransitionContext`;
    ``start_buf`` the (predicted) full start state, which is not
    modified; ``rip`` the recognized IP; ``occurrences`` how many RIP
    crossings make up one superstep (the recognizer's stride);
    ``max_instructions`` the wandering budget.

    Returns a :class:`SpeculationResult`; ``entry`` is ``None`` when the
    run faulted or executed zero instructions (e.g. an already-halted
    predicted state).
    """
    work = bytearray(start_buf)
    dep = DepVector(len(work))
    g = dep.buf
    step = context.step
    executed = 0
    crossings = 0
    fault = None
    halted = bool(work[STATUS_OFF] & STATUS_HALTED)

    fast_path = context.fast_path
    if fast_path is not None:
        rip_set = frozenset((rip,))
        while not halted and crossings < occurrences \
                and executed < max_instructions:
            try:
                n, reason = fast_path.run(work, g,
                                          max_instructions - executed,
                                          rip_set)
            except MachineError as exc:
                executed += getattr(exc, "_fp_executed", 0)
                fault = str(exc)
                break
            executed += n
            if reason == STOP_HALTED:
                halted = True
            elif reason == STOP_BREAKPOINT:
                crossings += 1
            else:
                break  # budget exhausted inside the block cache
    else:
        while not halted and crossings < occurrences \
                and executed < max_instructions:
            try:
                step(work, g)
            except MachineError as exc:
                fault = str(exc)
                break
            executed += 1
            if work[STATUS_OFF] & STATUS_HALTED:
                halted = True
                break
            eip = read_word(work, EIP_OFF)
            if eip == rip:
                crossings += 1

    if fault is not None or executed == 0:
        return SpeculationResult(None, executed, halted, fault)
    if not halted and crossings < occurrences:
        # Budget exhausted before completing a superstep: unusable
        # (fast-forwarding to it would strand the main thread mid-step).
        return SpeculationResult(None, executed, halted, "budget exhausted")
    entry = CacheEntry.from_execution(rip, dep, start_buf, work, executed,
                                      occurrences=crossings, halted=halted)
    return SpeculationResult(entry, executed, halted)
