"""Trajectory-cache persistence (§6).

"We have only just begun exploring reusing the trajectory cache across
different invocations of the same program as well as slightly modified
versions of the program." This module makes cache entries durable: a
compact binary format (no pickling — entries are untrusted data, and the
format is a straightforward struct-of-arrays) plus helpers to save a
cache after one run and preload it into the next.

A preloaded entry is sound under the same guarantee as a live one: it is
an exact fact about the transition function, so it either matches a
future state on its dependency bytes (and fast-forwards correctly) or
sits idle. Against a *different* input or program version, entries whose
dependencies changed simply never match. That guarantee makes integrity
checking non-negotiable: a *bit-rotted* entry that still parsed would be
applied as a trusted fact and corrupt the resumed computation. Format
version 2 therefore carries a CRC32 per entry; on load, an entry whose
checksum fails is **quarantined** — skipped and counted
(``cache.n_quarantined``) — while structural damage that destroys the
framing (truncation, trailing garbage, a header whose declared array
lengths point past the end of the blob) still rejects the whole blob
with :class:`~repro.errors.EngineError`, because nothing after it can
be trusted.
"""

import os
import struct
import zlib

import numpy as np

from repro.core.trajectory_cache import CacheEntry, TrajectoryCache
from repro.errors import EngineError

_MAGIC = b"ASCC"
_VERSION = 2
#: Version 1 blobs (no per-entry CRC) are still readable.
_VERSION_NO_CRC = 1

_HEADER = struct.Struct("<4sHI")
_ENTRY = struct.Struct("<IQIBII")
_CRC = struct.Struct("<I")

#: Shared section framing: ``[4B tag | u64 length | payload | u32 CRC]``.
#: Checkpoints (:mod:`repro.core.checkpoint`) and the serve job journal
#: (:mod:`repro.serve.journal`) both persist through this one frame
#: shape, so every durable artifact in the repo rejects torn or
#: bit-rotted payloads the same way.
SECTION_HEADER = struct.Struct("<4sQ")
SECTION_CRC = _CRC


def encode_section(tag, payload):
    """One CRC'd section frame: tag + length + payload + CRC32."""
    if len(tag) != 4:
        raise EngineError("section tag must be exactly 4 bytes")
    return (SECTION_HEADER.pack(tag, len(payload)) + payload
            + SECTION_CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF))


def decode_section(data, pos=0, max_payload=None):
    """Decode one section at ``pos``; returns ``(tag, payload, end)``.

    Raises :class:`~repro.errors.EngineError` on any structural damage:
    a truncated header or payload, a declared length past the end of
    the buffer (or past ``max_payload``), or a CRC mismatch. Callers
    that append sections to a log treat the error position as the torn
    tail — everything before ``pos`` stays trustworthy.
    """
    if pos + SECTION_HEADER.size > len(data):
        raise EngineError("truncated section header")
    tag, length = SECTION_HEADER.unpack_from(data, pos)
    if max_payload is not None and length > max_payload:
        raise EngineError("section %r declares %d bytes (cap %d)"
                          % (tag, length, max_payload))
    pos += SECTION_HEADER.size
    if length > len(data) - pos - SECTION_CRC.size:
        raise EngineError("truncated section payload")
    payload = bytes(data[pos:pos + length])
    pos += length
    (crc,) = SECTION_CRC.unpack_from(data, pos)
    pos += SECTION_CRC.size
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise EngineError("section %r failed its CRC"
                          % tag.decode("ascii", "replace"))
    return tag, payload, pos


def _encode_entry(entry):
    out = bytearray()
    out += _ENTRY.pack(entry.rip, entry.length, entry.occurrences,
                       1 if entry.halted else 0,
                       len(entry.start_indices),
                       len(entry.end_indices))
    out += np.asarray(entry.start_indices, dtype="<i8").tobytes()
    out += np.asarray(entry.start_values, dtype=np.uint8).tobytes()
    out += np.asarray(entry.end_indices, dtype="<i8").tobytes()
    out += np.asarray(entry.end_values, dtype=np.uint8).tobytes()
    return out


def serialize_cache(cache):
    """Encode every entry of a :class:`TrajectoryCache` as bytes."""
    entries = list(cache.entries())
    out = bytearray()
    out += _HEADER.pack(_MAGIC, _VERSION, len(entries))
    for entry in entries:
        blob = _encode_entry(entry)
        out += blob
        out += _CRC.pack(zlib.crc32(bytes(blob)) & 0xFFFFFFFF)
    return bytes(out)


def deserialize_cache(data, capacity_bytes=None):
    """Rebuild a :class:`TrajectoryCache` from :func:`serialize_cache`
    output. All entries load with ``ready_time=0`` (they exist before
    the new run starts). Entries failing their CRC are quarantined:
    skipped and counted in ``cache.n_quarantined`` rather than failing
    the whole preload."""
    if len(data) < _HEADER.size:
        raise EngineError("cache blob too short for header")
    magic, version, count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise EngineError("not a trajectory-cache blob (bad magic)")
    if version not in (_VERSION, _VERSION_NO_CRC):
        raise EngineError("unsupported cache format version %d" % version)
    has_crc = version == _VERSION
    per_entry_overhead = _ENTRY.size + (_CRC.size if has_crc else 0)
    if count * per_entry_overhead > len(data) - _HEADER.size:
        raise EngineError("cache blob declares %d entries but is only "
                          "%d bytes" % (count, len(data)))
    cache = TrajectoryCache(capacity_bytes=capacity_bytes)
    pos = _HEADER.size
    for __ in range(count):
        if pos + _ENTRY.size > len(data):
            raise EngineError("truncated cache blob (entry header)")
        rip, length, occurrences, halted, n_start, n_end = \
            _ENTRY.unpack_from(data, pos)
        body_len = _ENTRY.size + 9 * n_start + 9 * n_end
        # Declared array lengths must fit in what actually remains —
        # a corrupt header must not walk the cursor past the end (or
        # into a giant allocation) and silently mis-parse what follows.
        if body_len > len(data) - pos - (_CRC.size if has_crc else 0):
            raise EngineError("truncated cache blob (entry arrays)")
        body_end = pos + body_len
        if has_crc:
            (crc,) = _CRC.unpack_from(data, body_end)
            if zlib.crc32(data[pos:body_end]) & 0xFFFFFFFF != crc:
                # Bit rot inside one entry: the framing survives, so
                # quarantine just this entry and keep loading.
                cache.n_quarantined += 1
                pos = body_end + _CRC.size
                continue
        pos += _ENTRY.size
        start_indices = np.frombuffer(data, dtype="<i8", count=n_start,
                                      offset=pos).astype(np.int64)
        pos += 8 * n_start
        start_values = np.frombuffer(data, dtype=np.uint8, count=n_start,
                                     offset=pos).copy()
        pos += n_start
        end_indices = np.frombuffer(data, dtype="<i8", count=n_end,
                                    offset=pos).astype(np.int64)
        pos += 8 * n_end
        end_values = np.frombuffer(data, dtype=np.uint8, count=n_end,
                                   offset=pos).copy()
        pos += n_end
        if has_crc:
            pos += _CRC.size
        cache.insert(CacheEntry(rip, start_indices, start_values,
                                end_indices, end_values, length,
                                occurrences=occurrences, ready_time=0.0,
                                halted=bool(halted)))
    if pos != len(data):
        raise EngineError("trailing bytes in cache blob")
    return cache


def write_atomic(path, blob, fsync=False):
    """Write ``blob`` to ``path`` via temp file + rename.

    A reader never sees a torn file: it finds either the old content or
    the new, because the rename is the only visible step. On *any*
    failure — including ``ENOSPC`` partway through the write — the temp
    file is removed before the exception propagates, so a disk-full
    event cannot leave ``.tmp`` litter for a restart (or a directory
    scan) to trip over, and the partial bytes stop holding space on an
    already-starved filesystem.
    """
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_cache(cache, path):
    """Persist a cache to ``path``."""
    with open(path, "wb") as handle:
        handle.write(serialize_cache(cache))


def load_cache(path, capacity_bytes=None):
    """Load a cache previously written by :func:`save_cache`."""
    with open(path, "rb") as handle:
        return deserialize_cache(handle.read(),
                                 capacity_bytes=capacity_bytes)
