"""Excitation tracking: which parts of the state change between RIP states.

The paper learns binary classifiers only for a program's *excitations* —
bits observed to change between consecutive states sharing the recognized
instruction pointer (§4.4). This module watches the sequence of RIP
states, discovers the excited region, and projects full states onto it.

The unit of tracking here is the 32-bit *word*: any 4-byte-aligned group
of state-vector bytes containing a changed byte becomes a target word.
Working in words keeps three consumers aligned on one representation —
bit-level predictors see the words' unpacked bits, the word-level linear
regressor sees their integer values, and prediction materialization
writes them back into a state copy. The bit-level excitation counts the
paper reports are tracked separately for statistics.
"""

import hashlib

import numpy as np

from repro.errors import EngineError

_WORD = 4


class ObservationView:
    """One RIP state projected onto the current target-word set."""

    __slots__ = ("word_values", "bits", "version", "index")

    def __init__(self, word_values, bits, version, index):
        self.word_values = word_values  # np.uint32, one per target word
        self.bits = bits  # np.uint8 in {0,1}, 32 per target word
        self.version = version  # target-set version this view belongs to
        self.index = index  # ordinal of the observation (-1: synthetic)

    @property
    def n_bits(self):
        return len(self.bits)

    def digest(self):
        """Stable identity of the projected state (for dedup/oracle keys)."""
        h = hashlib.blake2b(self.word_values.tobytes(), digest_size=12)
        h.update(bytes([self.version & 0xFF]))
        return h.digest()


def _words_to_bits(word_values):
    as_bytes = word_values.astype("<u4").view(np.uint8)
    return np.unpackbits(as_bytes, bitorder="little")


def _bits_to_words(bits):
    as_bytes = np.packbits(bits, bitorder="little")
    return as_bytes.view("<u4").copy()


class ExcitationTracker:
    """Discovers excited words and projects states onto them.

    Feed it the full state vector at each RIP occurrence via
    :meth:`observe`. During the warmup window it only accumulates change
    statistics; afterwards it returns :class:`ObservationView` projections
    (and, if ``grow_targets``, extends the target set when a byte outside
    it changes — bumping ``version`` so consumers can resize).
    """

    def __init__(self, layout, config):
        self.layout = layout
        self.config = config
        self.version = 0
        self.n_observed = 0
        self._prev = None  # np.uint8 snapshot of previous RIP state
        self._change_counts = {}  # byte index -> times seen changed
        self._bit_change_counts = {}  # bit index -> times seen changed
        self.target_words = np.zeros(0, dtype=np.int64)  # word start indices
        self._target_set = set()
        self._pending_words = set()  # discovered, not yet adopted
        self._frozen = False

    # -- properties ---------------------------------------------------------

    @property
    def frozen(self):
        """True once the warmup window has elapsed and targets exist."""
        return self._frozen

    @property
    def n_target_words(self):
        return len(self.target_words)

    @property
    def n_target_bits(self):
        return 32 * len(self.target_words)

    @property
    def excited_bit_count(self):
        """Number of individual bits ever seen to change (paper's metric)."""
        return len(self._bit_change_counts)

    @property
    def excited_byte_count(self):
        return len(self._change_counts)

    # -- observation --------------------------------------------------------

    def observe(self, buf):
        """Record one RIP state; return its view once warmed up.

        ``buf`` is the raw state vector (bytes/bytearray). Returns ``None``
        during warmup.
        """
        current = np.frombuffer(bytes(buf), dtype=np.uint8)
        if self._prev is not None:
            changed = np.nonzero(current != self._prev)[0]
            if len(changed):
                self._record_changes(changed, current, self._prev)
        self._prev = current
        self.n_observed += 1

        if not self._frozen:
            if self.n_observed > self.config.warmup_observations:
                self._freeze()
            else:
                return None
            if not self._frozen:
                return None
        elif self._pending_words and (
                self.n_observed % self.config.growth_batch_observations == 0):
            self._adopt_pending()
        return self._project(current)

    def _adopt_pending(self):
        """Adopt newly excited words in a batch.

        Batching keeps target growth (and therefore predictor resizing
        and dispatch-key versioning) amortized on workloads like 2mm that
        excite a fresh output word every superstep. A pending word is
        predicted perfectly in the meantime: bytes outside the target set
        are materialized from the current state, and a word that changed
        once and settled (a written output cell) is exactly that case.
        """
        added = sorted(self._pending_words)
        self._pending_words.clear()
        self._target_set.update(added)
        # Append so existing bit positions stay stable.
        self.target_words = np.concatenate(
            [self.target_words, np.array(added, dtype=np.int64)])
        self.version += 1

    def _record_changes(self, changed, current, prev):
        threshold = self.config.excitation_threshold
        for idx in changed.tolist():
            count = self._change_counts.get(idx, 0) + 1
            self._change_counts[idx] = count
            if self._frozen and self.config.grow_targets \
                    and count >= threshold:
                word = idx & ~(_WORD - 1)
                if word not in self._target_set \
                        and word not in self._pending_words:
                    self._pending_words.add(word)
        # Bit-level statistics (vs. the previous state).
        diff = current[changed] ^ prev[changed]
        for idx, d in zip(changed.tolist(), diff.tolist()):
            for bit in range(8):
                if d & (1 << bit):
                    key = idx * 8 + bit
                    self._bit_change_counts[key] = \
                        self._bit_change_counts.get(key, 0) + 1

    def _freeze(self):
        threshold = self.config.excitation_threshold
        words = {idx & ~(_WORD - 1)
                 for idx, count in self._change_counts.items()
                 if count >= threshold}
        if not words:
            return  # nothing ever changed; keep warming up
        self.target_words = np.array(sorted(words), dtype=np.int64)
        self._target_set = set(words)
        self._pending_words.clear()
        self.version += 1
        self._frozen = True

    def _project(self, current):
        gather = (self.target_words[:, None]
                  + np.arange(_WORD)[None, :]).reshape(-1)
        word_bytes = current[gather]
        word_values = word_bytes.view("<u4").copy()
        bits = np.unpackbits(word_bytes, bitorder="little")
        return ObservationView(word_values, bits, self.version,
                               self.n_observed - 1)

    def reset_continuity(self):
        """Treat the next observation as non-consecutive (no change diff)."""
        self._prev = None

    # -- synthetic views (rollout) ---------------------------------------------

    def view_from_words(self, word_values):
        """Build a view from predicted word values (rollout input)."""
        word_values = np.asarray(word_values, dtype=np.uint32)
        if len(word_values) != self.n_target_words:
            raise EngineError("word count %d does not match targets %d"
                              % (len(word_values), self.n_target_words))
        return ObservationView(word_values, _words_to_bits(word_values),
                               self.version, -1)

    def view_from_bits(self, bits):
        """Build a view from predicted bit values (ensemble output)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if len(bits) != self.n_target_bits:
            raise EngineError("bit count %d does not match targets %d"
                              % (len(bits), self.n_target_bits))
        return ObservationView(_bits_to_words(bits), bits, self.version, -1)

    # -- materialization ------------------------------------------------------

    def materialize(self, base_buf, word_values):
        """Full predicted state: ``base_buf`` with target words replaced.

        Bytes outside the target set are copied from ``base_buf`` — the
        implicit weatherman prediction for everything that has never been
        seen to change. ``word_values`` may carry *more* words than the
        current target set (a projection recorded after later target
        growth); the extras correspond to appended words and are ignored
        — their bytes come from ``base_buf``, which is exactly what they
        were before adoption.
        """
        out = bytearray(base_buf)
        values = np.asarray(word_values, dtype="<u4").view(np.uint8)
        targets = self.target_words.tolist()
        if len(values) < 4 * len(targets):
            raise EngineError(
                "materialize got %d word(s) for %d targets"
                % (len(values) // 4, len(targets)))
        for pos, start in enumerate(targets):
            out[start:start + _WORD] = values[4 * pos:4 * pos + 4].tobytes()
        return out

    def words_digest(self, word_values):
        """Digest for dedup keys, consistent with ``ObservationView.digest``."""
        h = hashlib.blake2b(
            np.asarray(word_values, dtype="<u4").tobytes(), digest_size=12)
        h.update(bytes([self.version & 0xFF]))
        return h.digest()
