"""Trend predictor: consensus on the *increment* sequence (extension).

The paper's linear regressor maps a word's current value to its next
value — perfect for fixed strides (``y = x + c``) and affine updates.
It cannot represent sequences whose increments themselves progress
arithmetically (triangular-number addresses, ``i*(i+1)/2`` offsets,
nested-loop flattened indices): there ``y - x`` grows linearly with
*time*, so no function of ``x`` alone is exact.

This predictor models the increment directly: it keeps the recent
increments ``d_t = v_t - v_{t-1}`` per word and, when their second
difference is constant by supermajority, extrapolates
``v' = v + d + dd``. It is an *extension* (off by default — the paper's
ensemble has exactly four algorithms); enable it with
``EngineConfig(enable_trend_predictor=True)`` and the RWMA routes bits
to it only where it earns them.
"""

import numpy as np

from repro.core.predictors.base import Predictor

_M32 = 1 << 32


def _wrap_signed(v):
    v %= _M32
    return v - _M32 if v >= (1 << 31) else v


class _WordTrend:
    """Recent-value window + second-difference consensus for one word."""

    __slots__ = ("values", "hits", "trials")

    WINDOW = 8

    def __init__(self):
        self.values = []
        self.hits = 0
        self.trials = 0

    def observe(self, value):
        if len(self.values) >= 3:
            self.trials += 1
            if self.predict_next() == value % _M32:
                self.hits += 1
        self.values.append(value)
        if len(self.values) > self.WINDOW:
            self.values.pop(0)

    def predict_next(self):
        values = self.values
        if not values:
            return 0
        if len(values) < 3:
            return values[-1] % _M32
        increments = [_wrap_signed(b - a)
                      for a, b in zip(values, values[1:])]
        seconds = [b - a for a, b in zip(increments, increments[1:])]
        need = (len(seconds) * 7 + 9) // 10
        top = max(set(seconds), key=seconds.count)
        if seconds.count(top) >= need:
            return (values[-1] + increments[-1] + top) % _M32
        # No arithmetic trend: persist (let other experts own this bit).
        return values[-1] % _M32

    def confidence(self):
        if self.trials == 0:
            return 0.5
        value = (self.hits + 0.5) / (self.trials + 1.0)
        return min(max(value, 0.5), 0.999)


class TrendPredictor(Predictor):
    name = "trend"

    def __init__(self):
        super().__init__()
        self._models = []

    def _grow(self, old_bits, new_bits):
        n_words = new_bits // 32
        while len(self._models) < n_words:
            self._models.append(_WordTrend())

    def update(self, prev_view, next_view):
        self.ensure_capacity(next_view.n_bits)
        # Trend state is time-indexed: feed only the *new* observation
        # (prev_view was already observed last round; the first call
        # seeds the window with it).
        if not any(m.values for m in self._models):
            for model, value in zip(self._models,
                                    prev_view.word_values.tolist()):
                model.observe(int(value))
        for model, value in zip(self._models,
                                next_view.word_values.tolist()):
            model.observe(int(value))

    def predict(self, view):
        self.ensure_capacity(view.n_bits)
        n_words = view.n_bits // 32
        predicted = np.empty(n_words, dtype=np.uint32)
        confidence_words = np.empty(n_words)
        current = view.word_values.tolist()
        for i, model in enumerate(self._models[:n_words]):
            # Pure in the view: when asked about the live trajectory
            # head, extrapolate the learned trend from the *given* value
            # (supports rollout chaining by re-anchoring each step).
            values = model.values
            if len(values) >= 3 and values[-1] % _M32 == current[i] % _M32:
                predicted[i] = model.predict_next()
            elif len(values) >= 3:
                # Rollout step (view is a prediction, not the live head):
                # re-anchor at the given value with the last learned
                # increment step. Exact one step out; deeper rollouts
                # under-extrapolate the growing increment — a documented
                # limitation the RWMA weights around.
                increments = [_wrap_signed(b - a)
                              for a, b in zip(values, values[1:])]
                seconds = [b - a
                           for a, b in zip(increments, increments[1:])]
                need = (len(seconds) * 7 + 9) // 10
                top = max(set(seconds), key=seconds.count)
                if seconds.count(top) >= need:
                    predicted[i] = (current[i] + increments[-1]
                                    + top) % _M32
                else:
                    predicted[i] = current[i] % _M32
            else:
                predicted[i] = current[i] % _M32
            confidence_words[i] = model.confidence()
        bits = np.unpackbits(predicted.view(np.uint8), bitorder="little")
        confidence = np.repeat(confidence_words, 32)
        return bits, confidence

    def reset(self):
        super().reset()
        self._models = []
