"""The weatherman predictor: tomorrow will be like today (§4.4.2).

"The weatherman predictor predicts that the next value of each bit will
be its current value." This is the workhorse for slowly-changing state —
best-so-far registers, rarely-updated globals — and, combined with the
excitation machinery (unobserved bytes are copied from the current
state), generalizes the same idea to the entire state vector.
"""

import numpy as np

from repro.core.predictors.base import Predictor


class WeathermanPredictor(Predictor):
    name = "weatherman"

    #: Fixed self-reported confidence; the RWMA weights carry the real
    #: per-bit information about how often persistence is right.
    CONFIDENCE = 0.9

    def update(self, prev_view, next_view):
        self.ensure_capacity(next_view.n_bits)

    def predict(self, view):
        self.ensure_capacity(view.n_bits)
        bits = view.bits.astype(np.uint8, copy=True)
        confidence = np.full(view.n_bits, self.CONFIDENCE)
        return bits, confidence
