"""Online predictors and their regret-minimizing combination (§4.4-4.5.1).

Four learning algorithms, as in the paper: two trivial (``mean`` and
``weatherman``) and two interesting (logistic regression on bits, linear
regression on 32-bit words), combined per-bit by the (Randomized)
Weighted Majority Algorithm.
"""

from repro.core.predictors.base import Predictor
from repro.core.predictors.mean import MeanPredictor
from repro.core.predictors.weatherman import WeathermanPredictor
from repro.core.predictors.logistic import LogisticPredictor
from repro.core.predictors.linreg import LinearRegressionPredictor
from repro.core.predictors.trend import TrendPredictor
from repro.core.predictors.ensemble import PredictorEnsemble, default_ensemble

__all__ = [
    "Predictor",
    "MeanPredictor",
    "WeathermanPredictor",
    "LogisticPredictor",
    "LinearRegressionPredictor",
    "TrendPredictor",
    "PredictorEnsemble",
    "default_ensemble",
]
