"""The mean predictor: per-bit majority value (§4.4.2).

"The mean predictor simply learns the mean value of each bit and issues
predictions by rounding." Its predictions ignore the input state
entirely, which makes it exactly right for bits that are constant or
near-constant between RIP states and useless for everything else — the
RWMA weights sort that out per bit.
"""

import numpy as np

from repro.core.predictors.base import Predictor, extend_array


class MeanPredictor(Predictor):
    name = "mean"

    def __init__(self):
        super().__init__()
        self._ones = np.zeros(0, dtype=np.int64)
        self._total = np.zeros(0, dtype=np.int64)

    def _grow(self, old_bits, new_bits):
        self._ones = extend_array(self._ones, new_bits, 0)
        self._total = extend_array(self._total, new_bits, 0)

    def update(self, prev_view, next_view):
        self.ensure_capacity(next_view.n_bits)
        self._ones[:next_view.n_bits] += next_view.bits
        self._total[:next_view.n_bits] += 1

    def predict(self, view):
        self.ensure_capacity(view.n_bits)
        n = view.n_bits
        ones = self._ones[:n]
        total = self._total[:n]
        # Laplace-smoothed mean; ties round to the current bit value.
        p1 = (ones + 1.0) / (total + 2.0)
        bits = (p1 > 0.5).astype(np.uint8)
        ties = p1 == 0.5
        if ties.any():
            bits[ties] = view.bits[ties]
        confidence = np.maximum(p1, 1.0 - p1)
        return bits, confidence

    def reset(self):
        super().reset()
        self._ones = np.zeros(0, dtype=np.int64)
        self._total = np.zeros(0, dtype=np.int64)
