"""Online logistic regression over state bits (§4.4.2).

One binary classifier per target bit, trained by one stochastic-gradient
step per observation, exactly as the paper describes. The feature vector
for bit ``j`` is the 32 bits of the word containing ``j`` plus a bias
term. (The paper's classifiers condition on the full state vector; with
states of 1e7 bits that is only feasible with their massively-parallel
bit-sliced implementation. Word-local features keep the quadratic
weight storage bounded while capturing the structure logistic regression
actually wins on here — carry chains, flags derived from a word's value,
low-order counter bits. The feature window is configurable.)
"""

import numpy as np

from repro.core.predictors.base import Predictor

_BITS_PER_WORD = 32


def _sigmoid(z):
    # Clipped for numerical robustness with large weights.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class LogisticPredictor(Predictor):
    name = "logistic"

    def __init__(self, learning_rate=0.5):
        super().__init__()
        self.learning_rate = learning_rate
        # Weights: (n_words, 32 target bits, 33 features) — features are
        # the word's own 32 current bits plus a bias column.
        self._weights = np.zeros((0, _BITS_PER_WORD, _BITS_PER_WORD + 1))

    @property
    def instance_name(self):
        return "%s(lr=%g)" % (self.name, self.learning_rate)

    def _grow(self, old_bits, new_bits):
        old_words = old_bits // _BITS_PER_WORD
        new_words = new_bits // _BITS_PER_WORD
        grown = np.zeros((new_words, _BITS_PER_WORD, _BITS_PER_WORD + 1))
        grown[:old_words] = self._weights
        self._weights = grown

    @staticmethod
    def _features(view):
        """Per-word feature matrix: (n_words, 33) of {0,1} plus bias."""
        bits = view.bits.reshape(-1, _BITS_PER_WORD).astype(np.float64)
        ones = np.ones((bits.shape[0], 1))
        return np.concatenate([bits, ones], axis=1)

    def _probabilities(self, view):
        x = self._features(view)  # (W, 33)
        w = self._weights[:x.shape[0]]  # (W, 32, 33)
        z = np.einsum("wbf,wf->wb", w, x)
        return _sigmoid(z), x

    def update(self, prev_view, next_view):
        self.ensure_capacity(next_view.n_bits)
        p, x = self._probabilities(prev_view)  # predict from previous state
        y = next_view.bits.reshape(-1, _BITS_PER_WORD).astype(np.float64)
        n_words = min(p.shape[0], y.shape[0])
        residual = y[:n_words] - p[:n_words]  # (W, 32)
        self._weights[:n_words] += self.learning_rate * np.einsum(
            "wb,wf->wbf", residual, x[:n_words])

    def predict(self, view):
        self.ensure_capacity(view.n_bits)
        p, __ = self._probabilities(view)
        p = p.reshape(-1)
        bits = (p > 0.5).astype(np.uint8)
        confidence = np.maximum(p, 1.0 - p)
        return bits, confidence

    def reset(self):
        super().reset()
        self._weights = np.zeros((0, _BITS_PER_WORD, _BITS_PER_WORD + 1))
