"""Prediction from expert advice: the (Randomized) Weighted Majority
Algorithm over per-bit experts (§4.5.1).

Each predictor is an expert for every target bit. The ensemble keeps a
weight per (expert, bit); an expert's weight on a bit is multiplied by
``beta`` every time it mispredicts that bit. Predictions are weighted
majority votes per bit (or, in randomized mode, per-bit sampling of an
expert proportional to weight — the RWMA of Littlestone & Warmuth).

The combined output also carries Eq. 2's per-bit Bernoulli parameters:
the confidence-weighted vote share for each predicted bit, which the
allocator multiplies into state probabilities for expected-utility
scheduling.
"""

import numpy as np

from repro.core.predictors.linreg import LinearRegressionPredictor
from repro.core.predictors.logistic import LogisticPredictor
from repro.core.predictors.mean import MeanPredictor
from repro.core.predictors.trend import TrendPredictor
from repro.core.predictors.weatherman import WeathermanPredictor


def default_ensemble(config=None):
    """The paper's four algorithms; logistic at multiple learning rates."""
    rates = config.logistic_learning_rates if config is not None else (0.5, 0.05)
    predictors = [MeanPredictor(), WeathermanPredictor()]
    for rate in rates:
        predictors.append(LogisticPredictor(learning_rate=rate))
    predictors.append(LinearRegressionPredictor())
    if config is not None and getattr(config, "enable_trend_predictor",
                                      False):
        predictors.append(TrendPredictor())
    beta = config.rwma_beta if config is not None else 0.5
    randomized = config.rwma_randomized if config is not None else False
    seed = config.seed if config is not None else 0
    return PredictorEnsemble(predictors, beta=beta, randomized=randomized,
                             seed=seed)


class ObserveOutcome:
    """What happened when a new RIP state arrived (for statistics)."""

    __slots__ = ("scored", "expert_errors", "ensemble_bits",
                 "equal_weight_bits", "actual_bits")

    def __init__(self, scored, expert_errors, ensemble_bits,
                 equal_weight_bits, actual_bits):
        self.scored = scored
        self.expert_errors = expert_errors  # list of bool arrays per expert
        self.ensemble_bits = ensemble_bits  # what we had predicted
        self.equal_weight_bits = equal_weight_bits
        self.actual_bits = actual_bits


class PredictorEnsemble:
    def __init__(self, predictors, beta=0.5, randomized=False, seed=0,
                 weight_floor=1e-12):
        if not predictors:
            raise ValueError("ensemble needs at least one predictor")
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1), got %r" % (beta,))
        self.predictors = list(predictors)
        self.beta = beta
        self.randomized = randomized
        self.weight_floor = weight_floor
        self._rng = np.random.default_rng(seed)
        self.weights = np.ones((len(self.predictors), 0))
        self._last_view = None
        self._last_predictions = None  # list of (bits, conf) per expert
        self._last_combined = None  # (bits, probs) predicted for the next state

    @property
    def n_experts(self):
        return len(self.predictors)

    @property
    def expert_names(self):
        return [getattr(p, "instance_name", p.name) for p in self.predictors]

    def _ensure_bits(self, n_bits):
        if self.weights.shape[1] < n_bits:
            grown = np.ones((self.n_experts, n_bits))
            grown[:, :self.weights.shape[1]] = self.weights
            self.weights = grown
        for predictor in self.predictors:
            predictor.ensure_capacity(n_bits)

    # -- learning loop -----------------------------------------------------

    def observe(self, view):
        """Ingest the newly-arrived RIP state.

        Scores the predictions made at the previous state, applies the
        multiplicative weight updates, trains every expert on the new
        transition, and finally computes fresh predictions for the *next*
        state. Returns an :class:`ObserveOutcome` for statistics.
        """
        self._ensure_bits(view.n_bits)
        scored = False
        expert_errors = None
        ensemble_bits = None
        equal_bits = None
        actual = view.bits

        if self._last_view is not None and self._last_predictions is not None:
            # Bits added to the target set since the last prediction have
            # no prediction to score; they join the game next round.
            n_scorable = self._last_predictions[0][0].shape[0]
            actual = view.bits[:n_scorable]
            expert_errors = []
            for e, (bits, __) in enumerate(self._last_predictions):
                errors = bits != actual
                expert_errors.append(errors)
                w = self.weights[e, :n_scorable]
                w[errors] *= self.beta
                np.maximum(w, self.weight_floor, out=w)
            ensemble_bits = self._last_combined[0]
            equal_bits = self._equal_weight_vote(self._last_predictions)
            scored = True
            for predictor in self.predictors:
                predictor.update(self._last_view, view)

        outcome = ObserveOutcome(scored, expert_errors, ensemble_bits,
                                 equal_bits, actual)
        self._last_view = view
        self._last_predictions = [p.predict(view) for p in self.predictors]
        self._last_combined = self._combine(self._last_predictions,
                                            view.n_bits)
        return outcome

    # -- combination ----------------------------------------------------------

    def _combine(self, predictions, n_bits):
        w = self.weights[:, :n_bits]
        total = w.sum(axis=0)
        vote_one = np.zeros(n_bits)
        prob_one = np.zeros(n_bits)
        for e, (bits, conf) in enumerate(predictions):
            vote_one += w[e] * bits
            # Eq. 2's Bernoulli parameter: confidence-weighted belief.
            prob_one += w[e] * np.where(bits == 1, conf, 1.0 - conf)
        share_one = vote_one / total
        prob_one = prob_one / total
        if self.randomized:
            bits = (self._rng.random(n_bits) < share_one).astype(np.uint8)
        else:
            bits = (share_one >= 0.5).astype(np.uint8)
        probs = np.where(bits == 1, prob_one, 1.0 - prob_one)
        return bits, probs

    def _equal_weight_vote(self, predictions):
        n_bits = predictions[0][0].shape[0]
        votes = np.zeros(n_bits)
        for bits, __ in predictions:
            votes += bits
        return (votes * 2 >= len(predictions)).astype(np.uint8)

    # -- pure prediction (rollout) ----------------------------------------------

    def predict_from(self, view):
        """Combined prediction for the state after ``view``.

        Pure in ``view``: no weights or models are updated, so the
        allocator can chain calls to roll out k supersteps (§4.5.2).
        Returns ``(bits, per_bit_probabilities)``.
        """
        self._ensure_bits(view.n_bits)
        predictions = [p.predict(view) for p in self.predictors]
        return self._combine(predictions, view.n_bits)

    def current_prediction(self):
        """The prediction computed at the last observed state."""
        return self._last_combined

    def flush_pending(self):
        """Forget the in-flight prediction, keeping weights and models.

        Used when the observation stream jumps discontinuously (e.g.
        switching from recognizer-search states to live execution): the
        next observation should train, not be scored against a prediction
        made for a different point on the trajectory.
        """
        self._last_view = None
        self._last_predictions = None
        self._last_combined = None

    # -- introspection ---------------------------------------------------------

    def weight_matrix(self, normalized=True):
        """Final weights (experts x bits) — the paper's Figure 3."""
        w = self.weights.copy()
        if normalized and w.size:
            totals = w.sum(axis=0)
            totals[totals == 0] = 1.0
            w /= totals
        return w

    def reset(self):
        for predictor in self.predictors:
            predictor.reset()
        self.weights = np.ones((self.n_experts, 0))
        self._last_view = None
        self._last_predictions = None
        self._last_combined = None
