"""Predictor interface.

The paper specifies three per-bit entry points — ``update(x, j)``,
``predict(x, j)``, ``reset()`` (§4.4.1). Python per-bit calls would
dominate runtime, so the native interface here is vectorized over all
target bits at once; the paper's per-bit signatures are provided as thin
adapters on top and exercised by the test suite.

A predictor sees the trajectory only as a sequence of
:class:`repro.core.excitation.ObservationView` projections. ``update``
receives consecutive (previous, next) view pairs; ``predict`` must be a
*pure function* of its input view — the allocator calls it on predicted
views to roll predictions out multiple supersteps (§4.5.2).
"""

import numpy as np


class Predictor:
    """Base class: bookkeeping for target-set growth."""

    name = "base"

    def __init__(self):
        self._n_bits = 0

    # -- capacity --------------------------------------------------------------

    def ensure_capacity(self, n_bits):
        """Grow internal per-bit state; new bits appended at the end."""
        if n_bits > self._n_bits:
            self._grow(self._n_bits, n_bits)
            self._n_bits = n_bits

    def _grow(self, old_bits, new_bits):
        """Subclass hook: allocate state for bits [old_bits, new_bits)."""

    # -- vectorized interface -------------------------------------------------

    def update(self, prev_view, next_view):
        """Learn from one observed transition between RIP states."""
        raise NotImplementedError

    def predict(self, view):
        """Predict the next RIP state's bits given the current view.

        Returns ``(bits, confidence)``: a uint8 0/1 array and a float
        array in [0.5, 1] giving the predictor's own probability that
        each predicted bit is correct.
        """
        raise NotImplementedError

    def reset(self):
        """Discard the model (recognizer retarget, §4.4.1)."""
        self._n_bits = 0

    # -- the paper's per-bit adapters ---------------------------------------------

    def update_bit(self, prev_view, next_view, j):
        """Per-bit ``update(x, j)`` adapter (test/compatibility surface)."""
        self.update(prev_view, next_view)

    def predict_bit(self, view, j):
        """Per-bit ``predict(x, j)`` adapter: the predicted j-th bit."""
        bits, __ = self.predict(view)
        return int(bits[j])

    def __repr__(self):
        return "<%s n_bits=%d>" % (type(self).__name__, self._n_bits)


def extend_array(arr, new_len, fill, dtype=None):
    """Return ``arr`` grown to ``new_len`` with ``fill`` in the new slots."""
    if dtype is None:
        dtype = arr.dtype
    out = np.full(new_len, fill, dtype=dtype)
    out[:len(arr)] = arr
    return out
