"""Online linear regression over 32-bit words (§4.4.2).

"Linear regression is most useful when our system needs to predict
integer-valued features such as loop induction variables." Each target
word gets its own model of the next word value as an affine function of
the current one, fitted online by least squares.

The implementation keeps the normal-equation sums as exact Python
integers (relative to the first observed pair, to keep magnitudes small)
and computes predictions with integer rational arithmetic. This is the
closed-form solution the paper's per-observation gradient descent
converges to, without float round-off — which matters because a
prediction that is off by one ulp is a cache miss, not a small error.
All arithmetic is modulo 2^32, matching the machine's words.
"""

import numpy as np

from repro.core.predictors.base import Predictor

_M32 = 1 << 32


def _round_div(a, b):
    """Round-half-up integer division; ``b`` must be positive."""
    return (2 * a + b) // (2 * b)


def _wrap_signed(v):
    """Wrap an integer difference into signed 32-bit range."""
    v %= _M32
    return v - _M32 if v >= (1 << 31) else v


class _WordModel:
    """Robust exact online regression for one target word.

    Two estimators layered by reliability:

    1. *Consensus affine*: integer (slope, intercept) hypotheses derived
       from recent observation pairs, accepted when a supermajority of
       the recent window agrees exactly. This nails induction variables
       and strided pointers, and — crucially — keeps nailing them when
       the sequence has occasional discontinuities (a wrapped loop index,
       a best-so-far update) that would drag a least-squares fit off the
       integer lattice.
    2. *Exact least squares* over the full history (integer normal
       equations, rational prediction rounded once) as the fallback when
       no consensus exists.
    """

    __slots__ = ("n", "sx", "sy", "sxx", "sxy", "ref_x", "ref_y",
                 "hits", "trials", "recent")

    WINDOW = 8

    def __init__(self):
        self.n = 0
        self.sx = 0
        self.sy = 0
        self.sxx = 0
        self.sxy = 0
        self.ref_x = 0
        self.ref_y = 0
        self.hits = 0
        self.trials = 0
        self.recent = []  # last WINDOW (x, y) pairs

    def observe(self, x, y):
        if self.n == 0:
            self.ref_x = x
            self.ref_y = y
        # Self-evaluation before updating: did we already know this?
        if self.n >= 2:
            self.trials += 1
            if self.predict(x) == y % _M32:
                self.hits += 1
        dx = x - self.ref_x
        dy = y - self.ref_y
        self.n += 1
        self.sx += dx
        self.sy += dy
        self.sxx += dx * dx
        self.sxy += dx * dy
        self.recent.append((x, y))
        if len(self.recent) > self.WINDOW:
            self.recent.pop(0)

    def _consensus(self, x):
        """Supermajority-verified integer affine prediction, or None.

        Hypotheses are affine maps modulo 2^32 — deltas are wrapped to
        signed before forming a slope, and agreement is checked mod 2^32,
        so negative slopes and values that straddle the wrap point work.
        """
        pairs = self.recent
        if len(pairs) < 3:
            return None
        need = (len(pairs) * 7 + 9) // 10  # ceil(0.7 * len)
        tried = set()
        # Hypotheses from the most recent pairs backwards.
        for i in range(len(pairs) - 1, 0, -1):
            x2, y2 = pairs[i]
            x1, y1 = pairs[i - 1]
            dx = _wrap_signed(x2 - x1)
            dy = _wrap_signed(y2 - y1)
            if dx == 0 or dy % dx:
                continue
            slope = dy // dx
            intercept = y1 - slope * x1
            if (slope, intercept) in tried:
                continue
            tried.add((slope, intercept))
            agree = sum(1 for px, py in pairs
                        if (slope * px + intercept - py) % _M32 == 0)
            if agree >= need:
                return (slope * x + intercept) % _M32
            if len(tried) >= 3:
                break
        # Constant-output consensus (x may vary or repeat).
        values = [py for __, py in pairs]
        top = max(set(values), key=values.count)
        if values.count(top) >= need:
            return top % _M32
        return None

    def predict(self, x):
        if self.n < 2:
            return x % _M32  # fall back to persistence until fitted
        consensus = self._consensus(x)
        if consensus is not None:
            return consensus
        dx = x - self.ref_x
        num = self.n * self.sxy - self.sx * self.sy
        den = self.n * self.sxx - self.sx * self.sx
        if den == 0:
            # Constant input: predict the mean output.
            return (self.ref_y + _round_div(self.sy, self.n)) % _M32
        # y = ref_y + (sy - w1*sx)/n + w1*dx with w1 = num/den, evaluated
        # as one exact rational rounded at the end.
        numerator = self.sy * den - num * self.sx + self.n * num * dx
        return (self.ref_y + _round_div(numerator, self.n * den)) % _M32

    def confidence(self):
        if self.trials == 0:
            return 0.5
        value = (self.hits + 0.5) / (self.trials + 1.0)
        return min(max(value, 0.5), 0.999)


class LinearRegressionPredictor(Predictor):
    name = "linreg"

    def __init__(self):
        super().__init__()
        self._models = []

    def _grow(self, old_bits, new_bits):
        n_words = new_bits // 32
        while len(self._models) < n_words:
            self._models.append(_WordModel())

    def update(self, prev_view, next_view):
        self.ensure_capacity(next_view.n_bits)
        prev = prev_view.word_values.tolist()
        nxt = next_view.word_values.tolist()
        for model, x, y in zip(self._models, prev, nxt):
            model.observe(int(x), int(y))

    def predict(self, view):
        self.ensure_capacity(view.n_bits)
        values = view.word_values.tolist()
        predicted = np.empty(len(values), dtype=np.uint32)
        confidence_words = np.empty(len(values))
        for i, (model, x) in enumerate(zip(self._models, values)):
            predicted[i] = model.predict(int(x))
            confidence_words[i] = model.confidence()
        word_bytes = predicted.astype("<u4").view(np.uint8)
        bits = np.unpackbits(word_bytes, bitorder="little")
        confidence = np.repeat(confidence_words, 32)
        return bits, confidence

    def reset(self):
        super().reset()
        self._models = []
